#include "sim/simulator.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "metrics/collector.h"
#include "net/admission.h"
#include "update/cost_estimate.h"

namespace nu::sim {
namespace {

constexpr double kTimeEpsilon = 1e-9;

/// Timeline occurrences.
///   kDeparture:           an event flow's transmission finished — release
///                         its bandwidth.
///   kBackgroundDeparture: a background flow ended (churn) — release and
///                         spawn a replacement draw.
///   kInstallDone:         a batch of an event's flow installations
///                         finished — progress the event toward completion.
struct Occurrence {
  enum class Kind : std::uint8_t {
    kDeparture,
    kBackgroundDeparture,
    kInstallDone,
  };
  Kind kind = Kind::kDeparture;
  FlowId flow;            // departures
  EventId event;          // event-flow departures and installs
  std::size_t count = 0;  // kInstallDone: installs in the batch
};

/// An update event currently executing (installing flows, possibly waiting
/// for capacity for its deferred flows).
struct ActiveEvent {
  const update::UpdateEvent* event = nullptr;
  /// Flows whose installation has finished.
  std::size_t installed = 0;
  /// Installation batches in flight (scheduled kInstallDone occurrences).
  std::size_t batches_in_flight = 0;
  /// Indices of flows waiting for capacity, in event order.
  std::deque<std::size_t> deferred;
  /// Consecutive cheap-retry failures; full migration planning runs only
  /// every kMigrationRetryPeriod-th failure to keep churn retries cheap.
  std::size_t retry_failures = 0;

  [[nodiscard]] bool Complete() const {
    return installed == event->flow_count();
  }
};

/// How often a deferred-flow retry escalates from a cheap admission check to
/// full migration planning.
constexpr std::size_t kMigrationRetryPeriod = 20;

/// SchedulingContext implementation for one round. Charges probe costs and
/// memoizes the scratch network used by incremental co-feasibility checks.
class RoundContext final : public sched::SchedulingContext {
 public:
  RoundContext(const net::Network& network, const update::EventPlanner& planner,
               const CostModel& cost_model,
               std::span<const sched::QueuedEvent> queue, Rng& rng,
               Mbps co_migration_allowance, bool quick_cost_probes)
      : network_(network),
        planner_(planner),
        cost_model_(cost_model),
        queue_(queue),
        rng_(rng),
        co_migration_allowance_(co_migration_allowance),
        quick_cost_probes_(quick_cost_probes) {}

  [[nodiscard]] std::span<const sched::QueuedEvent> Queue() const override {
    return queue_;
  }

  Mbps ProbeCost(std::size_t index) override {
    NU_EXPECTS(index < queue_.size());
    const update::UpdateEvent& event = *queue_[index].event;
    ++cost_probes_;

    if (quick_cost_probes_) {
      // Estimate-based probe: much cheaper, and the winner is NOT marked
      // probed — execution still pays for (and computes) the full plan.
      plan_time_ += cost_model_.quick_probe_factor *
                    cost_model_.ProbeTime(event.flow_count());
      return update::QuickCostScore(network_, planner_.paths(), event);
    }

    plan_time_ += cost_model_.ProbeTime(event.flow_count());
    probed_.push_back(index);

    const update::EventPlan plan = planner_.Plan(network_, event);
    Mbps cost = plan.migrated_traffic;
    if (!plan.fully_feasible) {
      // Deprioritize events that cannot fully run now: a blocked flow would
      // stall the whole round, so charge each unplaceable flow as if its
      // whole demand had to migrate, scaled up.
      for (const update::FlowAction& action : plan.actions) {
        if (!action.placeable) {
          cost += 10.0 * event.flows()[action.flow_index].demand;
        }
      }
    }
    return cost;
  }

  bool ProbeCoFeasible(std::span<const std::size_t> selected,
                       std::size_t index) override {
    NU_EXPECTS(index < queue_.size());
    const update::UpdateEvent& event = *queue_[index].event;
    plan_time_ += cost_model_.CoFeasibilityTime(event.flow_count());
    ++cofeasibility_probes_;
    probed_.push_back(index);

    EnsureScratch(selected);
    const update::EventPlan plan = planner_.Plan(*scratch_, event);
    if (!plan.fully_feasible) return false;
    // Near-free wins only: co-scheduling should not buy parallelism with
    // migration cost that waiting (and churn) might avoid.
    if (plan.migrated_traffic > co_migration_allowance_) return false;
    // "Together" means without disturbing the events selected this round:
    // the plan may shuffle background flows and still-transmitting flows of
    // past rounds, but must not migrate flows the current round is placing.
    for (const update::FlowAction& action : plan.actions) {
      for (const update::MigrationMove& move : action.migration.moves) {
        // Ids absent from the scratch network were placed by the probed
        // event itself inside the plan's private copy — migrating one's own
        // earlier flows is fine.
        if (!scratch_->HasFlow(move.flow)) continue;
        const EventId owner = scratch_->FlowOf(move.flow).event;
        if (!owner.valid()) continue;  // background
        for (std::size_t s : selected) {
          if (queue_[s].event->id() == owner) return false;
        }
      }
    }
    return true;
  }

  Rng& rng() override { return rng_; }

  [[nodiscard]] Seconds plan_time() const { return plan_time_; }
  [[nodiscard]] std::size_t cost_probes() const { return cost_probes_; }
  [[nodiscard]] std::size_t cofeasibility_probes() const {
    return cofeasibility_probes_;
  }
  [[nodiscard]] bool WasProbed(std::size_t index) const {
    return std::find(probed_.begin(), probed_.end(), index) != probed_.end();
  }

 private:
  /// Lazily maintains a scratch network with `selected` events applied.
  /// P-LMTF grows `selected` by appending, so the applied prefix usually
  /// stays valid; any other shape triggers a rebuild.
  void EnsureScratch(std::span<const std::size_t> selected) {
    const bool prefix_ok =
        scratch_.has_value() && applied_.size() <= selected.size() &&
        std::equal(applied_.begin(), applied_.end(), selected.begin());
    if (!prefix_ok) {
      scratch_ = network_;
      applied_.clear();
    }
    if (!scratch_.has_value()) scratch_ = network_;
    for (std::size_t i = applied_.size(); i < selected.size(); ++i) {
      planner_.Execute(*scratch_, *queue_[selected[i]].event);
      applied_.push_back(selected[i]);
    }
  }

  const net::Network& network_;
  const update::EventPlanner& planner_;
  const CostModel& cost_model_;
  std::span<const sched::QueuedEvent> queue_;
  Rng& rng_;

  Seconds plan_time_ = 0.0;
  std::size_t cost_probes_ = 0;
  std::size_t cofeasibility_probes_ = 0;
  std::vector<std::size_t> probed_;
  std::optional<net::Network> scratch_;
  std::vector<std::size_t> applied_;
  Mbps co_migration_allowance_ = 100.0;
  bool quick_cost_probes_ = false;
};

/// Events sorted by arrival time (stable on ties).
std::vector<const update::UpdateEvent*> SortedByArrival(
    std::span<const update::UpdateEvent> events) {
  std::vector<const update::UpdateEvent*> sorted;
  sorted.reserve(events.size());
  for (const update::UpdateEvent& e : events) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const update::UpdateEvent* a,
                      const update::UpdateEvent* b) {
                     return a->arrival_time() < b->arrival_time();
                   });
  return sorted;
}

}  // namespace

Simulator::Simulator(const net::Network& initial,
                     const topo::PathProvider& paths, SimConfig config)
    : initial_(initial), paths_(paths), config_(config) {}

SimResult Simulator::Run(sched::Scheduler& scheduler,
                         std::span<const update::UpdateEvent> events) {
  net::Network network = initial_;
  const update::EventPlanner planner(paths_, config_.migration_options,
                                     config_.path_selection);
  const CostModel& costs = config_.cost_model;
  metrics::Collector collector;
  Rng rng(config_.seed);
  SimResult result;

  const auto pending = SortedByArrival(events);
  std::size_t next_arrival = 0;

  std::vector<const update::UpdateEvent*> queue;
  std::unordered_map<EventId::rep_type, ActiveEvent> active;
  std::vector<EventId> active_order;
  TimelineQueue<Occurrence> timeline;
  Seconds now = 0.0;
  Seconds total_plan_time = 0.0;

  // Background churn: existing background flows end after a residual
  // lifetime (stationarity: uniform fraction of the full duration) and are
  // replaced with fresh draws at departure time.
  std::unique_ptr<trace::TrafficGenerator> churn_gen;
  Rng churn_rng(config_.seed ^ 0xC0FFEEULL);
  if (config_.churn.enabled) {
    NU_CHECK(churn_factory_ != nullptr);
    churn_gen = churn_factory_(config_.seed ^ 0xBEEFULL);
    for (FlowId fid : network.PlacedFlows()) {
      const flow::Flow& f = network.FlowOf(fid);
      if (f.origin != flow::FlowOrigin::kBackground) continue;
      timeline.Push(churn_rng.Uniform01() * f.duration,
                    Occurrence{Occurrence::Kind::kBackgroundDeparture, fid,
                               EventId::invalid(), 0});
    }
  }

  auto spawn_background_replacement = [&] {
    for (std::size_t attempt = 0;
         attempt < config_.churn.replacement_attempts; ++attempt) {
      const trace::FlowSpec spec = churn_gen->Next();
      const auto path = trace::FindRandomPathWithHeadroom(
          network, paths_, spec.src, spec.dst, spec.demand,
          config_.churn.placement, churn_rng);
      if (!path.has_value()) continue;
      flow::Flow f;
      f.src = spec.src;
      f.dst = spec.dst;
      f.demand = spec.demand;
      f.duration = spec.duration;
      f.origin = flow::FlowOrigin::kBackground;
      const FlowId placed = network.Place(std::move(f), *path);
      timeline.Push(now + spec.duration,
                    Occurrence{Occurrence::Kind::kBackgroundDeparture, placed,
                               EventId::invalid(), 0});
      return;
    }
  };

  auto ingest_arrivals = [&] {
    while (next_arrival < pending.size() &&
           pending[next_arrival]->arrival_time() <= now + kTimeEpsilon) {
      const update::UpdateEvent* e = pending[next_arrival];
      queue.push_back(e);
      collector.OnArrival(e->id(), e->arrival_time(), e->flow_count());
      ++next_arrival;
    }
  };

  /// Schedules an install batch: flows become installed at `install_end`;
  /// each starts transmitting then and departs after its duration.
  auto schedule_batch = [&](ActiveEvent& ae, EventId id,
                            std::span<const FlowId> flows,
                            Seconds install_end) {
    timeline.Push(install_end, Occurrence{Occurrence::Kind::kInstallDone,
                                          FlowId::invalid(), id,
                                          flows.size()});
    ++ae.batches_in_flight;
    for (FlowId fid : flows) {
      timeline.Push(install_end + network.FlowOf(fid).duration,
                    Occurrence{Occurrence::Kind::kDeparture, fid, id, 0});
    }
  };

  // Retries deferred flows of active events (activation order) against the
  // freed capacity. A retry is a cheap admission check; full migration
  // planning runs only every kMigrationRetryPeriod-th failure, so frequent
  // churn departures stay inexpensive. Stops at the first still-unplaceable
  // flow per event (head-of-line within the event).
  auto retry_deferred = [&] {
    for (EventId id : active_order) {
      ActiveEvent& ae = active.at(id.value());
      while (!ae.deferred.empty()) {
        const flow::Flow& f = ae.event->flows()[ae.deferred.front()];
        Mbps migrated = 0.0;
        std::optional<FlowId> placed;
        if (auto direct = net::FindFeasiblePath(network, paths_, f.src, f.dst,
                                                f.demand,
                                                config_.path_selection)) {
          placed = network.Place(f, *direct);
          total_plan_time += costs.plan_time_per_flow;
        } else if (++ae.retry_failures % kMigrationRetryPeriod == 0) {
          placed = planner.PlaceFlow(network, f, &migrated);
          total_plan_time += costs.plan_time_per_flow;
        }
        if (!placed.has_value()) break;
        ae.retry_failures = 0;
        collector.OnCost(id, migrated);
        const Seconds install_end =
            now + costs.MigrationTime(migrated) + costs.InstallTime(1);
        const FlowId placed_ids[] = {*placed};
        schedule_batch(ae, id, placed_ids, install_end);
        ae.deferred.pop_front();
      }
    }
  };

  std::size_t guard = 0;
  for (;;) {
    NU_CHECK(++guard < 100'000'000);
    ingest_arrivals();

    // Drained: every event arrived and completed. (Churn would keep the
    // timeline busy forever, so do not wait for it to empty.)
    if (active.empty() && queue.empty() && next_arrival >= pending.size()) {
      break;
    }

    if (active.empty() && !queue.empty()) {
      // --- Scheduling round ---
      std::vector<sched::QueuedEvent> view;
      view.reserve(queue.size());
      for (const update::UpdateEvent* e : queue) {
        view.push_back(sched::QueuedEvent{e});
      }
      RoundContext context(network, planner, costs, view, rng,
                           config_.plmtf_co_migration_allowance,
                           config_.quick_cost_probes);
      const sched::Decision decision = scheduler.Decide(context);
      NU_CHECK(sched::IsValidDecision(decision, queue.size()));

      total_plan_time += context.plan_time();
      result.cost_probes += context.cost_probes();
      result.cofeasibility_probes += context.cofeasibility_probes();
      now += context.plan_time();

      RoundLogEntry log;
      log.decision_time = now;
      log.plan_time = context.plan_time();

      for (std::size_t index : decision.selected) {
        const update::UpdateEvent* event = queue[index];
        if (!context.WasProbed(index)) {
          // FIFO-style execution without a prior probe still pays for
          // computing the event's update plan.
          const Seconds t = costs.ProbeTime(event->flow_count());
          total_plan_time += t;
          now += t;
        }
        collector.OnExecutionStart(event->id(), now);
        const update::ExecutionResult exec = planner.Execute(network, *event);
        collector.OnCost(event->id(), exec.plan.migrated_traffic);

        ActiveEvent ae;
        ae.event = event;
        active_order.push_back(event->id());
        const auto [it, inserted] =
            active.emplace(event->id().value(), std::move(ae));
        NU_CHECK(inserted);
        if (!exec.placed_flows.empty()) {
          const Seconds install_end =
              now + costs.MigrationTime(exec.plan.migrated_traffic) +
              costs.InstallTime(exec.placed_flows.size());
          schedule_batch(it->second, event->id(), exec.placed_flows,
                         install_end);
        }
        for (std::size_t deferred_index : exec.deferred_flows) {
          it->second.deferred.push_back(deferred_index);
          collector.OnDeferredFlow(event->id());
        }
        log.executed.push_back(event->id());
      }

      // Remove executed events from the queue (descending index).
      std::vector<std::size_t> sorted_selected = decision.selected;
      std::sort(sorted_selected.rbegin(), sorted_selected.rend());
      for (std::size_t index : sorted_selected) {
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
      }

      ++result.rounds;
      if (config_.keep_round_log) result.round_log.push_back(std::move(log));
      continue;
    }

    // --- Advance virtual time ---
    const bool have_arrival = next_arrival < pending.size();
    const bool have_occurrence = !timeline.empty();
    if (!have_arrival && !have_occurrence) {
      // Deferred flows with nothing left to free capacity: break the
      // deadlock by force-placing them (reported, not hidden).
      bool any_deferred = false;
      for (EventId id : active_order) {
        ActiveEvent& ae = active.at(id.value());
        while (!ae.deferred.empty()) {
          any_deferred = true;
          const flow::Flow& f = ae.event->flows()[ae.deferred.front()];
          const topo::Path& path = net::LeastCongestedPath(
              network, paths_, f.src, f.dst, f.demand);
          const FlowId placed = network.ForcePlace(f, path);
          const FlowId placed_ids[] = {placed};
          schedule_batch(ae, id, placed_ids, now + costs.InstallTime(1));
          ae.deferred.pop_front();
          ++result.forced_placements;
        }
      }
      NU_CHECK(any_deferred);  // otherwise the loop cannot make progress
      continue;
    }

    Seconds next_time = std::numeric_limits<double>::infinity();
    if (have_arrival) {
      next_time = std::min(next_time, pending[next_arrival]->arrival_time());
    }
    if (have_occurrence) next_time = std::min(next_time, timeline.NextTime());
    now = std::max(now, next_time);

    bool departed = false;
    while (!timeline.empty() && timeline.NextTime() <= now + kTimeEpsilon) {
      const auto entry = timeline.Pop();
      const Occurrence& occ = entry.payload;
      if (occ.kind == Occurrence::Kind::kDeparture) {
        network.Remove(occ.flow);
        departed = true;
        continue;
      }
      if (occ.kind == Occurrence::Kind::kBackgroundDeparture) {
        network.Remove(occ.flow);
        spawn_background_replacement();
        departed = true;
        continue;
      }
      // kInstallDone: the event's batch finished installing.
      const auto it = active.find(occ.event.value());
      NU_CHECK(it != active.end());
      ActiveEvent& ae = it->second;
      ae.installed += occ.count;
      NU_CHECK(ae.batches_in_flight > 0);
      --ae.batches_in_flight;
      if (ae.Complete()) {
        collector.OnCompletion(occ.event, entry.time);
        active.erase(it);
        active_order.erase(std::find(active_order.begin(),
                                     active_order.end(), occ.event));
      }
    }
    if (departed) retry_deferred();
    if (config_.validate_invariants) {
      NU_CHECK(network.CheckInvariants() || result.forced_placements > 0);
    }
  }

  NU_CHECK(collector.AllComplete());
  NU_CHECK(!config_.validate_invariants || network.CheckInvariants() ||
           result.forced_placements > 0);
  result.records = collector.records();
  result.report = metrics::BuildReport(collector, total_plan_time,
                                       config_.tail_percentile);
  return result;
}

SimResult Simulator::RunFlowLevel(
    std::span<const update::UpdateEvent> events) {
  net::Network network = initial_;
  const update::EventPlanner planner(paths_, config_.migration_options,
                                     config_.path_selection);
  const CostModel& costs = config_.cost_model;
  metrics::Collector collector;
  SimResult result;

  const auto pending = SortedByArrival(events);
  std::size_t next_arrival = 0;

  // Per-event dispatch state, in arrival order.
  struct EvState {
    const update::UpdateEvent* event = nullptr;
    std::size_t dispatched = 0;
    Seconds last_install_end = 0.0;
    bool started = false;
    std::size_t retry_failures = 0;
  };
  std::vector<EvState> arrived;

  struct FlowEnd {
    FlowId flow;
    bool background = false;
  };
  TimelineQueue<FlowEnd> departures;
  Seconds now = 0.0;
  Seconds total_plan_time = 0.0;
  std::size_t cursor = 0;  // round-robin over arrived events

  // Background churn (see Run for the model).
  std::unique_ptr<trace::TrafficGenerator> churn_gen;
  Rng churn_rng(config_.seed ^ 0xC0FFEEULL);
  if (config_.churn.enabled) {
    NU_CHECK(churn_factory_ != nullptr);
    churn_gen = churn_factory_(config_.seed ^ 0xBEEFULL);
    for (FlowId fid : network.PlacedFlows()) {
      const flow::Flow& f = network.FlowOf(fid);
      if (f.origin != flow::FlowOrigin::kBackground) continue;
      departures.Push(churn_rng.Uniform01() * f.duration, FlowEnd{fid, true});
    }
  }

  auto spawn_background_replacement = [&] {
    for (std::size_t attempt = 0;
         attempt < config_.churn.replacement_attempts; ++attempt) {
      const trace::FlowSpec spec = churn_gen->Next();
      const auto path = trace::FindRandomPathWithHeadroom(
          network, paths_, spec.src, spec.dst, spec.demand,
          config_.churn.placement, churn_rng);
      if (!path.has_value()) continue;
      flow::Flow f;
      f.src = spec.src;
      f.dst = spec.dst;
      f.demand = spec.demand;
      f.duration = spec.duration;
      f.origin = flow::FlowOrigin::kBackground;
      const FlowId placed = network.Place(std::move(f), *path);
      departures.Push(now + spec.duration, FlowEnd{placed, true});
      return;
    }
  };

  auto ingest_arrivals = [&] {
    while (next_arrival < pending.size() &&
           pending[next_arrival]->arrival_time() <= now + kTimeEpsilon) {
      const update::UpdateEvent* e = pending[next_arrival];
      arrived.push_back(EvState{e});
      collector.OnArrival(e->id(), e->arrival_time(), e->flow_count());
      ++next_arrival;
    }
  };

  // Next event with an undispatched flow under round-robin interleaving, or
  // nullptr when everything arrived so far is fully dispatched.
  auto next_item = [&]() -> EvState* {
    for (std::size_t step = 0; step < arrived.size(); ++step) {
      EvState& state = arrived[(cursor + step) % arrived.size()];
      if (state.dispatched < state.event->flow_count()) {
        cursor = (cursor + step) % arrived.size();
        return &state;
      }
    }
    return nullptr;
  };

  auto process_departures_until = [&](Seconds t) {
    while (!departures.empty() && departures.NextTime() <= t + kTimeEpsilon) {
      const FlowEnd end = departures.Pop().payload;
      network.Remove(end.flow);
      if (end.background) spawn_background_replacement();
    }
  };

  // Installs one flow of `state` at the current time. Migration and rule
  // installation occupy the update pipeline serially (advancing `now`), so
  // one flow's update finishes before the next is dispatched. Records
  // completion when it was the event's last flow.
  auto install = [&](EvState& state, FlowId placed, Mbps migrated) {
    if (!state.started) {
      state.started = true;
      collector.OnExecutionStart(state.event->id(), now);
    }
    collector.OnCost(state.event->id(), migrated);
    now += costs.MigrationTime(migrated) + costs.InstallTime(1);
    state.last_install_end = std::max(state.last_install_end, now);
    departures.Push(now + network.FlowOf(placed).duration,
                    FlowEnd{placed, false});
    ++state.dispatched;
    if (state.dispatched == state.event->flow_count()) {
      collector.OnCompletion(state.event->id(), state.last_install_end);
    }
    cursor = (cursor + 1) % arrived.size();
  };

  std::size_t guard = 0;
  for (;;) {
    NU_CHECK(++guard < 100'000'000);
    ingest_arrivals();

    EvState* item = next_item();
    if (item == nullptr) {
      if (next_arrival >= pending.size()) break;  // all flows dispatched
      now = std::max(now, pending[next_arrival]->arrival_time());
      process_departures_until(now);
      continue;
    }

    // Dispatch one flow: planning this flow costs plan time. Migration and
    // installation then occupy the update pipeline serially (inside
    // `install`), exactly as they do within an event-level round — the
    // flow-level baseline differs only in its event-blind ordering.
    // Blocked retries use the cheap admission check; full migration planning
    // runs every kMigrationRetryPeriod-th failure (as in the event-level
    // retry path).
    const flow::Flow& f = item->event->flows()[item->dispatched];
    now += costs.plan_time_per_flow;
    total_plan_time += costs.plan_time_per_flow;
    process_departures_until(now);

    Mbps migrated = 0.0;
    std::optional<FlowId> placed;
    if (item->retry_failures == 0 ||
        item->retry_failures % kMigrationRetryPeriod == 0) {
      placed = planner.PlaceFlow(network, f, &migrated);
    } else if (auto direct = net::FindFeasiblePath(
                   network, paths_, f.src, f.dst, f.demand,
                   config_.path_selection)) {
      placed = network.Place(f, *direct);
    }
    if (placed.has_value()) {
      item->retry_failures = 0;
      install(*item, *placed, migrated);
      continue;
    }
    ++item->retry_failures;

    // Head-of-line blocking: the flow fits nowhere even with migration.
    // Wait for the next departure (or arrival) and retry the same flow.
    if (!departures.empty()) {
      now = std::max(now, departures.NextTime());
      process_departures_until(now);
      continue;
    }
    if (next_arrival < pending.size()) {
      now = std::max(now, pending[next_arrival]->arrival_time());
      continue;
    }
    // Nothing will ever free capacity: force-place (reported).
    const topo::Path& path =
        net::LeastCongestedPath(network, paths_, f.src, f.dst, f.demand);
    const FlowId forced = network.ForcePlace(f, path);
    ++result.forced_placements;
    install(*item, forced, 0.0);
  }

  NU_CHECK(collector.AllComplete());
  result.records = collector.records();
  result.report = metrics::BuildReport(collector, total_plan_time,
                                       config_.tail_percentile);
  return result;
}

}  // namespace nu::sim
