#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "fault/injector.h"
#include "metrics/collector.h"
#include "net/admission.h"
#include "net/overlay.h"
#include "topo/path_provider.h"
#include "update/cost_estimate.h"

namespace nu::sim {
namespace {

constexpr double kTimeEpsilon = 1e-9;

/// Probe fast-path wiring shared by the rounds of one Run: configuration,
/// the optional worker pool, and the run-wide counters.
struct ProbeRuntime {
  /// Probes run on overlays (true) or deep copies (legacy baseline, false).
  bool fast_path = true;
  /// Epoch-keyed cost/plan caching (requires fast_path).
  bool cache_enabled = true;
  /// Non-null when parallel candidate probing is on.
  ThreadPool* pool = nullptr;
  metrics::ProbeStats stats;
};

/// One event's cached probe result, valid while the network's state epoch
/// is unchanged since the probe.
struct ProbeCacheEntry {
  std::uint64_t epoch = 0;
  Mbps cost = 0.0;
  /// Full probes cache the plan for execute-time replay; quick probes cache
  /// the cost only.
  bool has_plan = false;
  update::EventPlan plan;
};

using ProbeCache = std::unordered_map<EventId::rep_type, ProbeCacheEntry>;

using ProbeClock = std::chrono::steady_clock;

double SecondsSince(ProbeClock::time_point start) {
  return std::chrono::duration<double>(ProbeClock::now() - start).count();
}

/// Timeline occurrences.
///   kDeparture:           an event flow's transmission finished — release
///                         its bandwidth.
///   kBackgroundDeparture: a background flow ended (churn) — release and
///                         spawn a replacement draw.
///   kInstallDone:         a batch of an event's flow installations
///                         finished — progress the event toward completion.
///   kInstallAborted:      a batch exhausted its install retries — roll its
///                         placements back and re-defer the flows.
///   kFault:               a scheduled FaultSpec fires — flip topology state
///                         and strand the flows crossing the dead element.
///   kWatchdog:            an execution attempt's soft deadline expired —
///                         abort + roll back the attempt if it is still the
///                         live one (guard subsystem).
///   kRequeue:             a watchdog-aborted event's backoff elapsed — it
///                         re-enters the queue through admission control.
struct Occurrence {
  enum class Kind : std::uint8_t {
    kDeparture,
    kBackgroundDeparture,
    kInstallDone,
    kInstallAborted,
    kFault,
    kWatchdog,
    kRequeue,
  };
  Kind kind = Kind::kDeparture;
  FlowId flow;                 // departures
  EventId event;               // install batches / watchdog / requeue
  std::size_t fault_index = 0;  // kFault: index into the fault plan's specs
  /// kInstallDone / kInstallAborted: the batch's placed flow ids. Entries no
  /// longer in the network were killed by a fault mid-install and are
  /// skipped (flow ids are never reused).
  std::vector<FlowId> flows;
  /// kInstallDone / kInstallAborted / kWatchdog: the activation generation
  /// the occurrence was scheduled for. A watchdog abort + requeue restarts
  /// the event under a fresh generation; occurrences of dead generations
  /// are stale and skipped.
  std::uint64_t generation = 0;
};

/// An update event currently executing (installing flows, possibly waiting
/// for capacity for its deferred flows).
struct ActiveEvent {
  const update::UpdateEvent* event = nullptr;
  /// Flows whose installation has finished.
  std::size_t installed = 0;
  /// Installation batches in flight (scheduled kInstallDone occurrences).
  std::size_t batches_in_flight = 0;
  /// Indices of flows waiting for capacity, in event order.
  std::deque<std::size_t> deferred;
  /// Consecutive cheap-retry failures; full migration planning runs only
  /// every kMigrationRetryPeriod-th failure to keep churn retries cheap.
  std::size_t retry_failures = 0;
  /// Which activation of the event this is (1-based; > 1 only after
  /// watchdog abort + requeue). Guards against stale timeline occurrences
  /// from aborted activations.
  std::uint64_t generation = 1;

  // --- Fault bookkeeping (maintained when faults or the watchdog are on) --
  /// Placed flow id -> index into event->flows(). Lets fault handlers map a
  /// stranded placement back to the event flow that must be replanned.
  std::unordered_map<FlowId::rep_type, std::size_t> flow_index;
  /// Placed ids whose installation completed (subset of flow_index keys).
  /// Killing one of these un-installs it (decrements `installed`).
  std::unordered_set<FlowId::rep_type> installed_ids;
  /// Event flow index -> time of its FIRST disruption (fault kill or install
  /// abort). Cleared — and a recovery latency recorded — when a replacement
  /// placement finishes installing.
  std::unordered_map<std::size_t, Seconds> pending_recovery;

  [[nodiscard]] bool Complete() const {
    return installed == event->flow_count();
  }
};

/// How often a deferred-flow retry escalates from a cheap admission check to
/// full migration planning.
constexpr std::size_t kMigrationRetryPeriod = 20;

/// SchedulingContext implementation for one round. Charges probe costs and
/// memoizes the scratch state used by incremental co-feasibility checks.
///
/// Fast path (ProbeRuntime::fast_path): every what-if plan runs on a
/// copy-on-write overlay over the frozen round network; the legacy baseline
/// deep-copies instead. Cache hits skip only the planning work — modeled
/// plan time, probe counters, and probed-marking are identical either way,
/// so decisions and golden metrics cannot drift.
class RoundContext final : public sched::SchedulingContext {
 public:
  RoundContext(const net::Network& network, const update::EventPlanner& planner,
               const CostModel& cost_model,
               std::span<const sched::QueuedEvent> queue, Rng& rng,
               Mbps co_migration_allowance, bool quick_cost_probes,
               sched::QueuePressure pressure, ProbeRuntime& probe_rt,
               ProbeCache& probe_cache)
      : network_(network),
        planner_(planner),
        cost_model_(cost_model),
        queue_(queue),
        rng_(rng),
        probed_bits_(queue.size(), 0),
        co_migration_allowance_(co_migration_allowance),
        quick_cost_probes_(quick_cost_probes),
        pressure_(pressure),
        probe_rt_(probe_rt),
        probe_cache_(probe_cache) {}

  [[nodiscard]] std::span<const sched::QueuedEvent> Queue() const override {
    return queue_;
  }

  [[nodiscard]] sched::QueuePressure Pressure() const override {
    return pressure_;
  }

  Mbps ProbeCost(std::size_t index) override {
    NU_EXPECTS(index < queue_.size());
    const update::UpdateEvent& event = *queue_[index].event;
    ++cost_probes_;

    if (quick_cost_probes_) {
      // Estimate-based probe: much cheaper, and the winner is NOT marked
      // probed — execution still pays for (and computes) the full plan.
      plan_time_ += cost_model_.quick_probe_factor *
                    cost_model_.ProbeTime(event.flow_count());
      if (const ProbeCacheEntry* entry = CacheLookup(event.id())) {
        ++probe_rt_.stats.probe_cache_hits;
        return entry->cost;
      }
      const auto start = ProbeClock::now();
      const Mbps score =
          update::QuickCostScore(network_, planner_.paths(), event);
      probe_rt_.stats.probe_wall_seconds += SecondsSince(start);
      CacheStore(event.id(), score, nullptr);
      return score;
    }

    plan_time_ += cost_model_.ProbeTime(event.flow_count());
    probed_bits_[index] = 1;

    if (const ProbeCacheEntry* entry = CacheLookup(event.id())) {
      ++probe_rt_.stats.probe_cache_hits;
      return entry->cost;
    }
    const auto start = ProbeClock::now();
    update::EventPlan plan = FullProbePlan(event);
    probe_rt_.stats.probe_wall_seconds += SecondsSince(start);
    const Mbps cost = ProbedCost(plan, event);
    CacheStore(event.id(), cost, &plan);
    return cost;
  }

  void ProbeCosts(std::span<const std::size_t> indices,
                  std::span<Mbps> out) override {
    // Parallel evaluation pays off only for full overlay probes; quick
    // probes are too cheap and the legacy baseline stays sequential (it
    // models the original code path).
    if (probe_rt_.pool == nullptr || !probe_rt_.fast_path ||
        quick_cost_probes_ || indices.size() < 2) {
      sched::SchedulingContext::ProbeCosts(indices, out);
      return;
    }
    NU_EXPECTS(out.size() >= indices.size());

    // Phase 1 (reads only): resolve cache hits BY VALUE (a later store may
    // rehash the map) and dispatch every miss to the pool. Workers run pure
    // what-if plans against the frozen round network; nothing else is
    // shared mutable state.
    const auto start = ProbeClock::now();
    std::vector<char> is_hit(indices.size(), 0);
    std::vector<Mbps> hit_cost(indices.size(), 0.0);
    std::vector<std::future<update::EventPlan>> pending(indices.size());
    bool dispatched = false;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const update::UpdateEvent& event = *queue_[indices[i]].event;
      if (const ProbeCacheEntry* entry = CacheLookup(event.id())) {
        is_hit[i] = 1;
        hit_cost[i] = entry->cost;
        continue;
      }
      pending[i] = probe_rt_.pool->Submit(
          [this, &event] { return planner_.Plan(network_, event); });
      dispatched = true;
    }
    if (dispatched) ++probe_rt_.stats.parallel_probe_batches;

    // Phase 2 (simulation thread, candidate order): identical bookkeeping
    // to sequential ProbeCost calls — same accumulation order for the
    // modeled plan time, same counters, same cache stores — so the batch is
    // bit-identical to probing one by one.
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const update::UpdateEvent& event = *queue_[indices[i]].event;
      ++cost_probes_;
      plan_time_ += cost_model_.ProbeTime(event.flow_count());
      probed_bits_[indices[i]] = 1;
      if (is_hit[i] != 0) {
        ++probe_rt_.stats.probe_cache_hits;
        out[i] = hit_cost[i];
        continue;
      }
      update::EventPlan plan = pending[i].get();
      ++probe_rt_.stats.overlay_probes;
      probe_rt_.stats.overlay_bytes_saved +=
          static_cast<double>(StateBytes());
      const Mbps cost = ProbedCost(plan, event);
      CacheStore(event.id(), cost, &plan);
      out[i] = cost;
    }
    probe_rt_.stats.probe_wall_seconds += SecondsSince(start);
  }

  bool ProbeCoFeasible(std::span<const std::size_t> selected,
                       std::size_t index) override {
    NU_EXPECTS(index < queue_.size());
    const update::UpdateEvent& event = *queue_[index].event;
    plan_time_ += cost_model_.CoFeasibilityTime(event.flow_count());
    ++cofeasibility_probes_;
    probed_bits_[index] = 1;

    const auto start = ProbeClock::now();
    net::MutableNetwork& scratch = EnsureScratch(selected);
    const update::EventPlan plan = probe_rt_.fast_path
                                       ? ProbeOnOverlay(scratch, event)
                                       : ProbeOnCopy(event);
    probe_rt_.stats.probe_wall_seconds += SecondsSince(start);
    if (!plan.fully_feasible) return false;
    // Near-free wins only: co-scheduling should not buy parallelism with
    // migration cost that waiting (and churn) might avoid.
    if (plan.migrated_traffic > co_migration_allowance_) return false;
    // "Together" means without disturbing the events selected this round:
    // the plan may shuffle background flows and still-transmitting flows of
    // past rounds, but must not migrate flows the current round is placing.
    for (const update::FlowAction& action : plan.actions) {
      for (const update::MigrationMove& move : action.migration.moves) {
        // Ids absent from the scratch state were placed by the probed
        // event itself inside the plan's private view — migrating one's own
        // earlier flows is fine.
        if (!scratch.HasFlow(move.flow)) continue;
        const EventId owner = scratch.FlowOf(move.flow).event;
        if (!owner.valid()) continue;  // background
        for (std::size_t s : selected) {
          if (queue_[s].event->id() == owner) return false;
        }
      }
    }
    return true;
  }

  Rng& rng() override { return rng_; }

  [[nodiscard]] Seconds plan_time() const { return plan_time_; }
  [[nodiscard]] std::size_t cost_probes() const { return cost_probes_; }
  [[nodiscard]] std::size_t cofeasibility_probes() const {
    return cofeasibility_probes_;
  }
  [[nodiscard]] bool WasProbed(std::size_t index) const {
    return probed_bits_[index] != 0;
  }

 private:
  /// One full cost-probe plan with fast-path/legacy dispatch + stats.
  update::EventPlan FullProbePlan(const update::UpdateEvent& event) {
    if (probe_rt_.fast_path) {
      ++probe_rt_.stats.overlay_probes;
      probe_rt_.stats.overlay_bytes_saved +=
          static_cast<double>(StateBytes());
      return planner_.Plan(network_, event);
    }
    ++probe_rt_.stats.legacy_probe_copies;
    return planner_.PlanLegacyCopy(network_, event);
  }

  update::EventPlan ProbeOnOverlay(const net::NetworkView& scratch,
                                   const update::UpdateEvent& event) {
    ++probe_rt_.stats.overlay_probes;
    probe_rt_.stats.overlay_bytes_saved += static_cast<double>(StateBytes());
    return planner_.Plan(scratch, event);
  }

  update::EventPlan ProbeOnCopy(const update::UpdateEvent& event) {
    ++probe_rt_.stats.legacy_probe_copies;
    return planner_.PlanLegacyCopy(*scratch_copy_, event);
  }

  /// The probe cost the schedulers compare: migrated traffic, plus a 10x
  /// demand penalty per unplaceable flow — a blocked flow would stall the
  /// whole round, so such events are deprioritized.
  static Mbps ProbedCost(const update::EventPlan& plan,
                         const update::UpdateEvent& event) {
    Mbps cost = plan.migrated_traffic;
    if (!plan.fully_feasible) {
      for (const update::FlowAction& action : plan.actions) {
        if (!action.placeable) {
          cost += 10.0 * event.flows()[action.flow_index].demand;
        }
      }
    }
    return cost;
  }

  [[nodiscard]] ProbeCacheEntry* CacheLookup(EventId id) {
    if (!probe_rt_.cache_enabled) return nullptr;
    const auto it = probe_cache_.find(id.value());
    if (it == probe_cache_.end() ||
        it->second.epoch != network_.state_epoch()) {
      return nullptr;
    }
    return &it->second;
  }

  /// Stores a probe result (counted as a miss). `plan` is consumed when
  /// non-null; quick probes pass nullptr (cost-only entries never replay).
  void CacheStore(EventId id, Mbps cost, update::EventPlan* plan) {
    if (!probe_rt_.cache_enabled) return;
    ++probe_rt_.stats.probe_cache_misses;
    ProbeCacheEntry& entry = probe_cache_[id.value()];
    entry.epoch = network_.state_epoch();
    entry.cost = cost;
    entry.has_plan = plan != nullptr;
    entry.plan = plan != nullptr ? std::move(*plan) : update::EventPlan{};
  }

  /// Deep-copy footprint of the round network, memoized (the network is
  /// frozen while the round's probes run).
  [[nodiscard]] std::size_t StateBytes() {
    if (!state_bytes_.has_value()) state_bytes_ = network_.ApproxStateBytes();
    return *state_bytes_;
  }

  /// Lazily maintains a scratch state with `selected` events applied — an
  /// overlay on the fast path, a deep copy on the legacy baseline. P-LMTF
  /// grows `selected` by appending, so the applied prefix usually stays
  /// valid; any other shape triggers a rebuild.
  net::MutableNetwork& EnsureScratch(std::span<const std::size_t> selected) {
    const bool have_scratch =
        probe_rt_.fast_path ? scratch_overlay_.has_value()
                            : scratch_copy_.has_value();
    const bool prefix_ok =
        have_scratch && applied_.size() <= selected.size() &&
        std::equal(applied_.begin(), applied_.end(), selected.begin());
    if (!prefix_ok) {
      if (probe_rt_.fast_path) {
        scratch_overlay_.emplace(network_);
      } else {
        scratch_copy_ = network_;
      }
      applied_.clear();
    }
    net::MutableNetwork& scratch =
        probe_rt_.fast_path
            ? static_cast<net::MutableNetwork&>(*scratch_overlay_)
            : static_cast<net::MutableNetwork&>(*scratch_copy_);
    for (std::size_t i = applied_.size(); i < selected.size(); ++i) {
      planner_.Execute(scratch, *queue_[selected[i]].event,
                       /*legacy_migration=*/!probe_rt_.fast_path);
      applied_.push_back(selected[i]);
    }
    return scratch;
  }

  const net::Network& network_;
  const update::EventPlanner& planner_;
  const CostModel& cost_model_;
  std::span<const sched::QueuedEvent> queue_;
  Rng& rng_;

  Seconds plan_time_ = 0.0;
  std::size_t cost_probes_ = 0;
  std::size_t cofeasibility_probes_ = 0;
  /// Per-round probed flags, indexed by queue position (replaces the
  /// O(probes) linear scan the WasProbed lookup used to do).
  std::vector<char> probed_bits_;
  std::optional<net::NetworkOverlay> scratch_overlay_;
  std::optional<net::Network> scratch_copy_;
  std::vector<std::size_t> applied_;
  std::optional<std::size_t> state_bytes_;
  Mbps co_migration_allowance_ = 100.0;
  bool quick_cost_probes_ = false;
  sched::QueuePressure pressure_;
  ProbeRuntime& probe_rt_;
  ProbeCache& probe_cache_;
};

/// Events sorted by arrival time (stable on ties).
std::vector<const update::UpdateEvent*> SortedByArrival(
    std::span<const update::UpdateEvent> events) {
  std::vector<const update::UpdateEvent*> sorted;
  sorted.reserve(events.size());
  for (const update::UpdateEvent& e : events) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const update::UpdateEvent* a,
                      const update::UpdateEvent* b) {
                     return a->arrival_time() < b->arrival_time();
                   });
  return sorted;
}

}  // namespace

Simulator::Simulator(const net::Network& initial,
                     const topo::PathProvider& paths, SimConfig config)
    : initial_(initial), paths_(paths), config_(config) {}

SimResult Simulator::Run(sched::Scheduler& scheduler,
                         std::span<const update::UpdateEvent> events) {
  net::Network network = initial_;

  // Fault wiring. When faults are off the planner sees the raw provider and
  // the injector draws nothing, so a fixed-seed run is bit-identical with
  // and without this machinery. When on, planning/placement go through an
  // alive-paths view that re-filters whenever the topology epoch changes.
  const bool faults_on = config_.faults.enabled();
  const topo::PredicatePathProvider alive_paths(
      paths_, [&network](const topo::Path& p) { return network.PathAlive(p); },
      [&network] { return network.topology_epoch(); });
  const topo::PathProvider& provider =
      faults_on ? static_cast<const topo::PathProvider&>(alive_paths) : paths_;
  fault::FaultInjector injector(config_.faults, config_.seed ^ 0xFA11ULL);

  const update::EventPlanner planner(provider, config_.migration_options,
                                     config_.path_selection);
  const CostModel& costs = config_.cost_model;
  metrics::Collector collector;
  Rng rng(config_.seed);
  SimResult result;

  // Probe fast-path wiring (docs/model.md §9). The cache persists across
  // rounds but is keyed by the network's state epoch, so any mutation
  // invalidates it wholesale; the pool exists only when parallelism is both
  // requested and applicable (full probes on the overlay fast path).
  ProbeRuntime probe_rt;
  probe_rt.fast_path = config_.probe_fast_path;
  probe_rt.cache_enabled = config_.probe_cost_cache && config_.probe_fast_path;
  std::unique_ptr<ThreadPool> probe_pool;
  if (config_.probe_parallelism > 1 && config_.probe_fast_path &&
      !config_.quick_cost_probes) {
    probe_pool = std::make_unique<ThreadPool>(config_.probe_parallelism);
    probe_rt.pool = probe_pool.get();
  }
  ProbeCache probe_cache;

  // Guard wiring. Like the fault machinery, a disabled guard draws nothing
  // and changes nothing: fixed-seed runs are bit-identical with and without
  // it. `lossy` marks the regimes where placed flows can disappear out from
  // under scheduled occurrences (fault kills, watchdog rollbacks), which
  // turns on the per-flow bookkeeping and stale-occurrence tolerance.
  const guard::GuardConfig& gcfg = config_.guard;
  const bool overload_on = gcfg.overload.enabled();
  const bool watchdog_on = gcfg.deadline.enabled();
  const bool audit_on = gcfg.auditor.enabled;
  const bool lossy = faults_on || watchdog_on;
  guard::Watchdog watchdog(gcfg.deadline);
  guard::Auditor auditor(gcfg.auditor);

  const auto pending = SortedByArrival(events);
  std::size_t next_arrival = 0;

  std::vector<const update::UpdateEvent*> queue;
  std::unordered_map<EventId::rep_type, ActiveEvent> active;
  std::vector<EventId> active_order;
  // Requeue lookups (kRequeue carries only the EventId) and activation
  // generations for stale-occurrence detection.
  std::unordered_map<EventId::rep_type, const update::UpdateEvent*>
      event_by_id;
  for (const update::UpdateEvent* e : pending) {
    event_by_id.emplace(e->id().value(), e);
  }
  std::unordered_map<EventId::rep_type, std::uint64_t> activation_count;
  // Event-conservation buckets the auditor cross-checks: every arrived
  // event is queued, active, parked, completed, shed, or quarantined.
  std::size_t parked_count = 0;
  std::size_t completed_count = 0;
  std::size_t shed_count = 0;
  std::size_t quarantined_count = 0;
  TimelineQueue<Occurrence> timeline;
  Seconds now = 0.0;
  Seconds total_plan_time = 0.0;

  // Every scheduled incident enters the timeline up front; the plan is
  // already time-sorted, but the queue orders them anyway.
  if (faults_on) {
    const std::vector<fault::FaultSpec>& specs = config_.faults.plan.specs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      timeline.Push(specs[i].time,
                    Occurrence{Occurrence::Kind::kFault, FlowId::invalid(),
                               EventId::invalid(), i, {}});
    }
  }

  // Background churn: existing background flows end after a residual
  // lifetime (stationarity: uniform fraction of the full duration) and are
  // replaced with fresh draws at departure time.
  std::unique_ptr<trace::TrafficGenerator> churn_gen;
  Rng churn_rng(config_.seed ^ 0xC0FFEEULL);
  if (config_.churn.enabled) {
    NU_CHECK(churn_factory_ != nullptr);
    churn_gen = churn_factory_(config_.seed ^ 0xBEEFULL);
    for (FlowId fid : network.PlacedFlows()) {
      const flow::Flow& f = network.FlowOf(fid);
      if (f.origin != flow::FlowOrigin::kBackground) continue;
      timeline.Push(churn_rng.Uniform01() * f.duration,
                    Occurrence{Occurrence::Kind::kBackgroundDeparture, fid,
                               EventId::invalid(), 0, {}});
    }
  }

  auto spawn_background_replacement = [&] {
    for (std::size_t attempt = 0;
         attempt < config_.churn.replacement_attempts; ++attempt) {
      const trace::FlowSpec spec = churn_gen->Next();
      const auto path = trace::FindRandomPathWithHeadroom(
          network, provider, spec.src, spec.dst, spec.demand,
          config_.churn.placement, churn_rng);
      if (!path.has_value()) continue;
      flow::Flow f;
      f.src = spec.src;
      f.dst = spec.dst;
      f.demand = spec.demand;
      f.duration = spec.duration;
      f.origin = flow::FlowOrigin::kBackground;
      const FlowId placed = network.Place(std::move(f), *path);
      timeline.Push(now + spec.duration,
                    Occurrence{Occurrence::Kind::kBackgroundDeparture, placed,
                               EventId::invalid(), 0, {}});
      return;
    }
  };

  /// Terminally sheds `e` (admission drop or requeue drop). The collector
  /// distinguishes kShed from kAborted by whether the event ever executed.
  /// `now` can sit kTimeEpsilon below the arrival being ingested, so clamp.
  auto shed = [&](const update::UpdateEvent& e) {
    collector.OnShed(e.id(), std::max(now, e.arrival_time()));
    ++shed_count;
  };

  /// Admission control: pushes `e` unless the bounded queue is full, in
  /// which case the configured policy picks a victim — possibly `e` itself
  /// (returns false). A disabled guard admits unconditionally.
  auto admit = [&](const update::UpdateEvent* e) -> bool {
    if (overload_on && queue.size() >= gcfg.overload.max_queue_length) {
      const std::optional<std::size_t> victim = guard::ChooseShedVictim(
          gcfg.overload, queue, *e, network, provider);
      if (!victim.has_value()) {
        shed(*e);
        return false;
      }
      shed(*queue[*victim]);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(*victim));
    }
    queue.push_back(e);
    collector.OnQueueDepth(queue.size());
    return true;
  };

  auto ingest_arrivals = [&] {
    while (next_arrival < pending.size() &&
           pending[next_arrival]->arrival_time() <= now + kTimeEpsilon) {
      const update::UpdateEvent* e = pending[next_arrival];
      collector.OnArrival(e->id(), e->arrival_time(), e->flow_count());
      admit(e);
      ++next_arrival;
    }
  };

  /// Schedules an install batch starting at `start` with nominal rule-push
  /// latency `nominal_install`. With a healthy pipeline the flows become
  /// installed at start + nominal_install; each starts transmitting then and
  /// departs after its duration. Under the flaky model the batch is run
  /// through the injector: success stretches the latency (jitter + backoff
  /// waits), exhaustion schedules an abort instead — its placements roll
  /// back when the abort fires.
  auto schedule_batch = [&](ActiveEvent& ae, EventId id,
                            std::span<const FlowId> flows, Seconds start,
                            Seconds nominal_install) {
    ++ae.batches_in_flight;
    std::vector<FlowId> batch(flows.begin(), flows.end());
    Seconds install_end = start + nominal_install;
    if (faults_on) {
      const fault::InstallTrial trial = injector.SampleInstall(nominal_install);
      collector.OnInstallBatch(trial.attempts, !trial.success);
      if (!trial.success) {
        timeline.Push(start + trial.wasted_delay,
                      Occurrence{Occurrence::Kind::kInstallAborted,
                                 FlowId::invalid(), id, 0, std::move(batch),
                                 ae.generation});
        return;
      }
      install_end =
          start + trial.wasted_delay + trial.latency_factor * nominal_install;
    }
    // Push order (kInstallDone first, then departures) is part of the
    // deterministic tie-break for same-time occurrences — keep it stable.
    timeline.Push(install_end,
                  Occurrence{Occurrence::Kind::kInstallDone, FlowId::invalid(),
                             id, 0, std::move(batch), ae.generation});
    for (FlowId fid : flows) {
      timeline.Push(install_end + network.FlowOf(fid).duration,
                    Occurrence{Occurrence::Kind::kDeparture, fid, id, 0, {}});
    }
  };

  // Retries deferred flows of active events (activation order) against the
  // freed capacity. A retry is a cheap admission check; full migration
  // planning runs only every kMigrationRetryPeriod-th failure, so frequent
  // churn departures stay inexpensive. Stops at the first still-unplaceable
  // flow per event (head-of-line within the event).
  auto retry_deferred = [&] {
    for (EventId id : active_order) {
      ActiveEvent& ae = active.at(id.value());
      while (!ae.deferred.empty()) {
        const std::size_t flow_idx = ae.deferred.front();
        const flow::Flow& f = ae.event->flows()[flow_idx];
        Mbps migrated = 0.0;
        std::optional<FlowId> placed;
        if (auto direct = net::FindFeasiblePath(network, provider, f.src,
                                                f.dst, f.demand,
                                                config_.path_selection)) {
          placed = network.Place(f, *direct);
          total_plan_time += costs.plan_time_per_flow;
        } else if (++ae.retry_failures % kMigrationRetryPeriod == 0) {
          placed = planner.PlaceFlow(network, f, &migrated);
          total_plan_time += costs.plan_time_per_flow;
        }
        if (!placed.has_value()) break;
        ae.retry_failures = 0;
        if (lossy) ae.flow_index.emplace(placed->value(), flow_idx);
        collector.OnCost(id, migrated);
        const FlowId placed_ids[] = {*placed};
        schedule_batch(ae, id, placed_ids, now + costs.MigrationTime(migrated),
                       costs.InstallTime(1));
        ae.deferred.pop_front();
      }
    }
  };

  /// One full audit pass over the live run state. The event-conservation
  /// buckets come straight from the loop's own counters; everything else
  /// the auditor recomputes from the network itself.
  auto run_audit = [&] {
    guard::QueueAccounting acct;
    acct.arrived = collector.records().size();
    acct.queued = queue.size();
    acct.active = active.size();
    acct.parked = parked_count;
    acct.completed = completed_count;
    acct.shed = shed_count;
    acct.quarantined = quarantined_count;
    acct.queue_capacity = gcfg.overload.max_queue_length;
    collector.OnAudit(auditor.Audit(network, acct, result.forced_placements));
  };
  std::size_t occurrences_since_audit = 0;
  bool audit_due = false;

  std::size_t loop_guard = 0;
  for (;;) {
    NU_CHECK(++loop_guard < 100'000'000);
    ingest_arrivals();

    // Drained: every event arrived and reached a terminal state. Parked
    // events still owe a requeue attempt. (Churn would keep the timeline
    // busy forever, so do not wait for it to empty.)
    if (active.empty() && queue.empty() && parked_count == 0 &&
        next_arrival >= pending.size()) {
      break;
    }

    if (active.empty() && !queue.empty()) {
      // --- Scheduling round ---
      std::vector<sched::QueuedEvent> view;
      view.reserve(queue.size());
      for (const update::UpdateEvent* e : queue) {
        view.push_back(sched::QueuedEvent{e});
      }
      RoundContext context(
          network, planner, costs, view, rng,
          config_.plmtf_co_migration_allowance, config_.quick_cost_probes,
          sched::QueuePressure{gcfg.overload.max_queue_length, queue.size(),
                               shed_count},
          probe_rt, probe_cache);
      const sched::Decision decision = scheduler.Decide(context);
      NU_CHECK(sched::IsValidDecision(decision, queue.size()));

      total_plan_time += context.plan_time();
      result.cost_probes += context.cost_probes();
      result.cofeasibility_probes += context.cofeasibility_probes();
      now += context.plan_time();

      RoundLogEntry log;
      log.decision_time = now;
      log.plan_time = context.plan_time();

      for (std::size_t index : decision.selected) {
        const update::UpdateEvent* event = queue[index];
        if (!context.WasProbed(index)) {
          // FIFO-style execution without a prior probe still pays for
          // computing the event's update plan.
          const Seconds t = costs.ProbeTime(event->flow_count());
          total_plan_time += t;
          now += t;
        }
        collector.OnExecutionStart(event->id(), now);
        // A winner probed this round has a cached plan built against the
        // exact current state — replay it instead of re-planning. Place and
        // Reroute re-validate everything, so a stale plan would abort loudly
        // rather than corrupt state.
        update::ExecutionResult exec;
        ProbeCacheEntry* cached = nullptr;
        if (probe_rt.cache_enabled) {
          const auto it = probe_cache.find(event->id().value());
          if (it != probe_cache.end() &&
              it->second.epoch == network.state_epoch() &&
              it->second.has_plan) {
            cached = &it->second;
          }
        }
        if (cached != nullptr) {
          exec = planner.ExecuteWithPlan(network, *event,
                                         std::move(cached->plan));
          cached->has_plan = false;
          ++probe_rt.stats.exec_plan_reuses;
        } else {
          exec = planner.Execute(network, *event,
                                 /*legacy_migration=*/!probe_rt.fast_path);
        }
        collector.OnCost(event->id(), exec.plan.migrated_traffic);

        ActiveEvent ae;
        ae.event = event;
        active_order.push_back(event->id());
        const auto [it, inserted] =
            active.emplace(event->id().value(), std::move(ae));
        NU_CHECK(inserted);
        if (lossy) {
          // placed_flows is parallel to the placeable actions, in order.
          std::size_t placed_i = 0;
          for (const update::FlowAction& action : exec.plan.actions) {
            if (!action.placeable) continue;
            it->second.flow_index.emplace(
                exec.placed_flows[placed_i].value(), action.flow_index);
            ++placed_i;
          }
        }
        if (watchdog_on) {
          // Each execution attempt runs under a fresh generation so the
          // watchdog (and any install occurrences it strands) can tell a
          // re-execution from the attempt it aborted.
          it->second.generation = ++activation_count[event->id().value()];
          timeline.Push(
              now + gcfg.deadline.DeadlineFor(event->flow_count()),
              Occurrence{Occurrence::Kind::kWatchdog, FlowId::invalid(),
                         event->id(), 0, {}, it->second.generation});
        }
        if (!exec.placed_flows.empty()) {
          schedule_batch(it->second, event->id(), exec.placed_flows,
                         now + costs.MigrationTime(exec.plan.migrated_traffic),
                         costs.InstallTime(exec.placed_flows.size()));
        }
        for (std::size_t deferred_index : exec.deferred_flows) {
          it->second.deferred.push_back(deferred_index);
          collector.OnDeferredFlow(event->id());
        }
        log.executed.push_back(event->id());
      }

      // Remove executed events from the queue (descending index).
      std::vector<std::size_t> sorted_selected = decision.selected;
      std::sort(sorted_selected.rbegin(), sorted_selected.rend());
      for (std::size_t index : sorted_selected) {
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
      }

      ++result.rounds;
      if (config_.keep_round_log) result.round_log.push_back(std::move(log));
      continue;
    }

    // --- Advance virtual time ---
    const bool have_arrival = next_arrival < pending.size();
    const bool have_occurrence = !timeline.empty();
    if (!have_arrival && !have_occurrence) {
      // Deferred flows with nothing left to free capacity: break the
      // deadlock by force-placing them (reported, not hidden).
      bool any_deferred = false;
      for (EventId id : active_order) {
        ActiveEvent& ae = active.at(id.value());
        while (!ae.deferred.empty()) {
          any_deferred = true;
          const std::size_t flow_idx = ae.deferred.front();
          const flow::Flow& f = ae.event->flows()[flow_idx];
          // Prefer a surviving path; only when the fault state severed the
          // pair entirely does the forced placement fall back to the raw
          // provider (and get reported via forced_placements).
          const bool pair_alive = !provider.Paths(f.src, f.dst).empty();
          const topo::Path& path = net::LeastCongestedPath(
              network, pair_alive ? provider : paths_, f.src, f.dst, f.demand);
          const FlowId placed = network.ForcePlace(f, path);
          if (lossy) ae.flow_index.emplace(placed.value(), flow_idx);
          const FlowId placed_ids[] = {placed};
          schedule_batch(ae, id, placed_ids, now, costs.InstallTime(1));
          ae.deferred.pop_front();
          ++result.forced_placements;
        }
      }
      NU_CHECK(any_deferred);  // otherwise the loop cannot make progress
      continue;
    }

    Seconds next_time = std::numeric_limits<double>::infinity();
    if (have_arrival) {
      next_time = std::min(next_time, pending[next_arrival]->arrival_time());
    }
    if (have_occurrence) next_time = std::min(next_time, timeline.NextTime());
    now = std::max(now, next_time);

    bool departed = false;
    while (!timeline.empty() && timeline.NextTime() <= now + kTimeEpsilon) {
      const auto entry = timeline.Pop();
      const Occurrence& occ = entry.payload;
      ++occurrences_since_audit;
      if (occ.kind == Occurrence::Kind::kDeparture) {
        // A flow killed by a fault (or rolled back by the watchdog) has no
        // bandwidth left to release; its stale departure is a no-op (flow
        // ids are never reused).
        if (lossy && !network.HasFlow(occ.flow)) continue;
        network.Remove(occ.flow);
        departed = true;
        continue;
      }
      if (occ.kind == Occurrence::Kind::kBackgroundDeparture) {
        // Killed background flows are not replaced: the churn process only
        // replaces flows that ended naturally.
        if (faults_on && !network.HasFlow(occ.flow)) continue;
        network.Remove(occ.flow);
        spawn_background_replacement();
        departed = true;
        continue;
      }
      if (occ.kind == Occurrence::Kind::kWatchdog) {
        // Fires once per execution attempt. Stale when the watched
        // activation already completed, was aborted, or was superseded.
        const auto it = active.find(occ.event.value());
        if (it == active.end() || it->second.generation != occ.generation) {
          continue;
        }
        ActiveEvent& ae = it->second;
        collector.OnDeadlineMiss(occ.event);
        // Abort + roll back the whole attempt: every placement of this
        // activation is removed, returning its bandwidth. In-flight install
        // occurrences and departures become stale (generation mismatch /
        // missing flows) and are skipped when they fire.
        for (const auto& [fid_rep, flow_idx] : ae.flow_index) {
          const FlowId fid{fid_rep};
          if (network.HasFlow(fid)) network.Remove(fid);
        }
        active.erase(it);
        active_order.erase(std::find(active_order.begin(),
                                     active_order.end(), occ.event));
        if (watchdog.RecordMiss(occ.event)) {
          // Poison: out of failure budget — quarantine instead of another
          // round of livelock.
          collector.OnQuarantined(occ.event, entry.time);
          ++quarantined_count;
        } else {
          timeline.Push(entry.time + watchdog.RequeueDelay(occ.event),
                        Occurrence{Occurrence::Kind::kRequeue,
                                   FlowId::invalid(), occ.event, 0, {}});
          ++parked_count;
        }
        departed = true;  // the rollback freed capacity
        continue;
      }
      if (occ.kind == Occurrence::Kind::kRequeue) {
        // Backoff elapsed: the aborted event re-enters through admission
        // control (a full queue may shed it — then it terminates kAborted).
        --parked_count;
        if (admit(event_by_id.at(occ.event.value()))) {
          collector.OnRequeued(occ.event);
        }
        continue;
      }
      if (occ.kind == Occurrence::Kind::kFault) {
        const fault::FaultSpec& spec =
            config_.faults.plan.specs()[occ.fault_index];
        const std::vector<FlowId> victims =
            fault::AffectedFlows(network, spec);
        fault::ApplyFaultState(network, spec);
        if (spec.IsDown()) collector.OnFault(spec.IsLinkFault());
        std::unordered_set<EventId::rep_type> replanned;
        for (FlowId victim : victims) {
          const EventId owner = network.FlowOf(victim).event;
          network.Remove(victim);
          collector.OnFlowKilled();
          if (!owner.valid()) continue;  // background: killed outright
          const auto owner_it = active.find(owner.value());
          if (owner_it == active.end()) continue;  // event already complete
          // In-flight event flow: roll it back to deferred so the planner
          // re-places it on surviving paths.
          ActiveEvent& ae = owner_it->second;
          const auto idx_it = ae.flow_index.find(victim.value());
          NU_CHECK(idx_it != ae.flow_index.end());
          const std::size_t flow_idx = idx_it->second;
          ae.flow_index.erase(idx_it);
          if (ae.installed_ids.erase(victim.value()) > 0) {
            NU_CHECK(ae.installed > 0);
            --ae.installed;  // un-install: completion now needs the redo
          }
          ae.pending_recovery.emplace(flow_idx, entry.time);
          ae.deferred.push_back(flow_idx);
          if (replanned.insert(owner.value()).second) {
            collector.OnEventReplanned(owner);
          }
        }
        // Up-events restore capacity; down-events free the victims' shares
        // elsewhere on their old paths. Either way deferred flows may fit
        // now, so treat the fault like a departure.
        departed = true;
        audit_due = true;  // faults always trigger an audit pass
        continue;
      }
      if (occ.kind == Occurrence::Kind::kInstallAborted) {
        // Retries exhausted: roll the batch back (remove its placements)
        // and re-defer the flows for replanning.
        const auto it = active.find(occ.event.value());
        // A fault can kill every flow of an in-flight batch; replacements
        // may then complete the event before this occurrence fires. Such a
        // stale batch holds only dead flows — nothing to roll back. The
        // watchdog strands batches the same way (abort or quarantine).
        if (it == active.end()) {
          NU_CHECK(lossy);
          continue;
        }
        ActiveEvent& ae = it->second;
        if (ae.generation != occ.generation) {
          // Batch of a watchdog-aborted activation; its placements were
          // rolled back with the abort.
          NU_CHECK(watchdog_on);
          continue;
        }
        NU_CHECK(ae.batches_in_flight > 0);
        --ae.batches_in_flight;
        collector.OnInstallAborted(occ.event);
        for (FlowId fid : occ.flows) {
          if (!network.HasFlow(fid)) continue;  // a fault beat us to it
          const auto idx_it = ae.flow_index.find(fid.value());
          NU_CHECK(idx_it != ae.flow_index.end());
          const std::size_t flow_idx = idx_it->second;
          network.Remove(fid);
          ae.flow_index.erase(idx_it);
          ae.pending_recovery.emplace(flow_idx, entry.time);
          ae.deferred.push_back(flow_idx);
        }
        departed = true;  // freed capacity: worth retrying deferred flows
        continue;
      }
      // kInstallDone: the event's batch finished installing.
      const auto it = active.find(occ.event.value());
      // Stale batch of an already-terminated event (see kInstallAborted).
      if (it == active.end()) {
        NU_CHECK(lossy);
        continue;
      }
      ActiveEvent& ae = it->second;
      if (ae.generation != occ.generation) {
        NU_CHECK(watchdog_on);  // batch of a watchdog-aborted activation
        continue;
      }
      NU_CHECK(ae.batches_in_flight > 0);
      --ae.batches_in_flight;
      if (lossy) {
        for (FlowId fid : occ.flows) {
          if (!network.HasFlow(fid)) continue;  // killed mid-install
          ++ae.installed;
          ae.installed_ids.insert(fid.value());
          const auto idx_it = ae.flow_index.find(fid.value());
          NU_CHECK(idx_it != ae.flow_index.end());
          const auto rec = ae.pending_recovery.find(idx_it->second);
          if (rec != ae.pending_recovery.end()) {
            collector.OnRecovery(entry.time - rec->second);
            ae.pending_recovery.erase(rec);
          }
        }
      } else {
        ae.installed += occ.flows.size();
      }
      if (ae.Complete()) {
        collector.OnCompletion(occ.event, entry.time);
        ++completed_count;
        active.erase(it);
        active_order.erase(std::find(active_order.begin(),
                                     active_order.end(), occ.event));
      }
    }
    if (departed) retry_deferred();
    if (config_.validate_invariants) {
      NU_CHECK(network.CheckInvariants() || result.forced_placements > 0);
    }
    if (audit_on &&
        (audit_due || occurrences_since_audit >= gcfg.auditor.cadence)) {
      run_audit();
      occurrences_since_audit = 0;
      audit_due = false;
    }
  }

  // Final audit: acceptance is "zero violations at end of run", so the last
  // pass always runs regardless of where the cadence counter stands.
  if (audit_on) run_audit();

  NU_CHECK(collector.AllTerminal());
  NU_CHECK(!config_.validate_invariants || network.CheckInvariants() ||
           result.forced_placements > 0);
  result.records = collector.records();
  result.fault_stats = collector.fault_stats();
  result.guard_stats = collector.guard_stats();
  collector.OnProbeStats(probe_rt.stats);
  result.probe_stats = collector.probe_stats();
  result.report = metrics::BuildReport(collector, total_plan_time,
                                       config_.tail_percentile);
  return result;
}

SimResult Simulator::RunFlowLevel(
    std::span<const update::UpdateEvent> events) {
  net::Network network = initial_;
  const update::EventPlanner planner(paths_, config_.migration_options,
                                     config_.path_selection);
  const CostModel& costs = config_.cost_model;
  metrics::Collector collector;
  SimResult result;

  const auto pending = SortedByArrival(events);
  std::size_t next_arrival = 0;

  // Per-event dispatch state, in arrival order.
  struct EvState {
    const update::UpdateEvent* event = nullptr;
    std::size_t dispatched = 0;
    Seconds last_install_end = 0.0;
    bool started = false;
    std::size_t retry_failures = 0;
  };
  std::vector<EvState> arrived;

  struct FlowEnd {
    FlowId flow;
    bool background = false;
  };
  TimelineQueue<FlowEnd> departures;
  Seconds now = 0.0;
  Seconds total_plan_time = 0.0;
  std::size_t cursor = 0;  // round-robin over arrived events

  // Background churn (see Run for the model).
  std::unique_ptr<trace::TrafficGenerator> churn_gen;
  Rng churn_rng(config_.seed ^ 0xC0FFEEULL);
  if (config_.churn.enabled) {
    NU_CHECK(churn_factory_ != nullptr);
    churn_gen = churn_factory_(config_.seed ^ 0xBEEFULL);
    for (FlowId fid : network.PlacedFlows()) {
      const flow::Flow& f = network.FlowOf(fid);
      if (f.origin != flow::FlowOrigin::kBackground) continue;
      departures.Push(churn_rng.Uniform01() * f.duration, FlowEnd{fid, true});
    }
  }

  auto spawn_background_replacement = [&] {
    for (std::size_t attempt = 0;
         attempt < config_.churn.replacement_attempts; ++attempt) {
      const trace::FlowSpec spec = churn_gen->Next();
      const auto path = trace::FindRandomPathWithHeadroom(
          network, paths_, spec.src, spec.dst, spec.demand,
          config_.churn.placement, churn_rng);
      if (!path.has_value()) continue;
      flow::Flow f;
      f.src = spec.src;
      f.dst = spec.dst;
      f.demand = spec.demand;
      f.duration = spec.duration;
      f.origin = flow::FlowOrigin::kBackground;
      const FlowId placed = network.Place(std::move(f), *path);
      departures.Push(now + spec.duration, FlowEnd{placed, true});
      return;
    }
  };

  auto ingest_arrivals = [&] {
    while (next_arrival < pending.size() &&
           pending[next_arrival]->arrival_time() <= now + kTimeEpsilon) {
      const update::UpdateEvent* e = pending[next_arrival];
      arrived.push_back(EvState{e});
      collector.OnArrival(e->id(), e->arrival_time(), e->flow_count());
      ++next_arrival;
    }
  };

  // Next event with an undispatched flow under round-robin interleaving, or
  // nullptr when everything arrived so far is fully dispatched.
  auto next_item = [&]() -> EvState* {
    for (std::size_t step = 0; step < arrived.size(); ++step) {
      EvState& state = arrived[(cursor + step) % arrived.size()];
      if (state.dispatched < state.event->flow_count()) {
        cursor = (cursor + step) % arrived.size();
        return &state;
      }
    }
    return nullptr;
  };

  auto process_departures_until = [&](Seconds t) {
    while (!departures.empty() && departures.NextTime() <= t + kTimeEpsilon) {
      const FlowEnd end = departures.Pop().payload;
      network.Remove(end.flow);
      if (end.background) spawn_background_replacement();
    }
  };

  // Installs one flow of `state` at the current time. Migration and rule
  // installation occupy the update pipeline serially (advancing `now`), so
  // one flow's update finishes before the next is dispatched. Records
  // completion when it was the event's last flow.
  auto install = [&](EvState& state, FlowId placed, Mbps migrated) {
    if (!state.started) {
      state.started = true;
      collector.OnExecutionStart(state.event->id(), now);
    }
    collector.OnCost(state.event->id(), migrated);
    now += costs.MigrationTime(migrated) + costs.InstallTime(1);
    state.last_install_end = std::max(state.last_install_end, now);
    departures.Push(now + network.FlowOf(placed).duration,
                    FlowEnd{placed, false});
    ++state.dispatched;
    if (state.dispatched == state.event->flow_count()) {
      collector.OnCompletion(state.event->id(), state.last_install_end);
    }
    cursor = (cursor + 1) % arrived.size();
  };

  std::size_t guard = 0;
  for (;;) {
    NU_CHECK(++guard < 100'000'000);
    ingest_arrivals();

    EvState* item = next_item();
    if (item == nullptr) {
      if (next_arrival >= pending.size()) break;  // all flows dispatched
      now = std::max(now, pending[next_arrival]->arrival_time());
      process_departures_until(now);
      continue;
    }

    // Dispatch one flow: planning this flow costs plan time. Migration and
    // installation then occupy the update pipeline serially (inside
    // `install`), exactly as they do within an event-level round — the
    // flow-level baseline differs only in its event-blind ordering.
    // Blocked retries use the cheap admission check; full migration planning
    // runs every kMigrationRetryPeriod-th failure (as in the event-level
    // retry path).
    const flow::Flow& f = item->event->flows()[item->dispatched];
    now += costs.plan_time_per_flow;
    total_plan_time += costs.plan_time_per_flow;
    process_departures_until(now);

    Mbps migrated = 0.0;
    std::optional<FlowId> placed;
    if (item->retry_failures == 0 ||
        item->retry_failures % kMigrationRetryPeriod == 0) {
      placed = planner.PlaceFlow(network, f, &migrated);
    } else if (auto direct = net::FindFeasiblePath(
                   network, paths_, f.src, f.dst, f.demand,
                   config_.path_selection)) {
      placed = network.Place(f, *direct);
    }
    if (placed.has_value()) {
      item->retry_failures = 0;
      install(*item, *placed, migrated);
      continue;
    }
    ++item->retry_failures;

    // Head-of-line blocking: the flow fits nowhere even with migration.
    // Wait for the next departure (or arrival) and retry the same flow.
    if (!departures.empty()) {
      now = std::max(now, departures.NextTime());
      process_departures_until(now);
      continue;
    }
    if (next_arrival < pending.size()) {
      now = std::max(now, pending[next_arrival]->arrival_time());
      continue;
    }
    // Nothing will ever free capacity: force-place (reported).
    const topo::Path& path =
        net::LeastCongestedPath(network, paths_, f.src, f.dst, f.demand);
    const FlowId forced = network.ForcePlace(f, path);
    ++result.forced_placements;
    install(*item, forced, 0.0);
  }

  NU_CHECK(collector.AllComplete());
  result.records = collector.records();
  result.report = metrics::BuildReport(collector, total_plan_time,
                                       config_.tail_percentile);
  return result;
}

}  // namespace nu::sim
