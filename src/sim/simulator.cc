#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <future>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "ckpt/journal.h"
#include "ckpt/snapshot.h"
#include "common/arena.h"
#include "common/binio.h"
#include "common/logging.h"
#include "common/rng_streams.h"
#include "common/thread_pool.h"
#include "fault/cascade.h"
#include "fault/injector.h"
#include "guard/shard_pressure.h"
#include "metrics/collector.h"
#include "net/admission.h"
#include "net/overlay.h"
#include "sched/select.h"
#include "sim/shard_runtime.h"
#include "topo/path_provider.h"
#include "update/cost_estimate.h"

namespace nu::sim {
namespace {

constexpr double kTimeEpsilon = 1e-9;

/// Probe fast-path wiring shared by the rounds of one Run: configuration,
/// the optional worker pool, and the run-wide counters.
struct ProbeRuntime {
  /// Probes run on overlays (true) or deep copies (legacy baseline, false).
  bool fast_path = true;
  /// Epoch-keyed cost/plan caching (requires fast_path).
  bool cache_enabled = true;
  /// Non-null when parallel candidate probing is on.
  ThreadPool* pool = nullptr;
  /// Run-wide scratch for quick-probe scoring. Quick probes only ever run
  /// on the simulation thread (the parallel and sharded batch paths handle
  /// full probes exclusively), so one arena serves the whole run and the
  /// steady-state scoring loop stays allocation-free once warmed.
  Arena score_arena;
  metrics::ProbeStats stats;
};

/// One event's cached probe result, valid while the network's state epoch
/// is unchanged since the probe.
struct ProbeCacheEntry {
  std::uint64_t epoch = 0;
  Mbps cost = 0.0;
  /// Full probes cache the plan for execute-time replay; quick probes cache
  /// the cost only.
  bool has_plan = false;
  update::EventPlan plan;
};

using ProbeCache = std::unordered_map<EventId::rep_type, ProbeCacheEntry>;

using ProbeClock = std::chrono::steady_clock;

double SecondsSince(ProbeClock::time_point start) {
  return std::chrono::duration<double>(ProbeClock::now() - start).count();
}

void SaveRngState(BinWriter& w, const Rng::State& s) {
  for (std::uint64_t word : s.words) w.U64(word);
  w.F64(s.spare_normal);
  w.Bool(s.has_spare_normal);
}

Rng::State LoadRngState(BinReader& r) {
  Rng::State s;
  for (std::uint64_t& word : s.words) word = r.U64();
  s.spare_normal = r.F64();
  s.has_spare_normal = r.Bool();
  // The all-zero word vector is the one invalid xoshiro state; a snapshot
  // can only contain it if its bytes are garbage.
  if (s.words[0] == 0 && s.words[1] == 0 && s.words[2] == 0 &&
      s.words[3] == 0) {
    throw CorruptInput("all-zero rng state");
  }
  return s;
}

/// Timeline occurrences.
///   kDeparture:           an event flow's transmission finished — release
///                         its bandwidth.
///   kBackgroundDeparture: a background flow ended (churn) — release and
///                         spawn a replacement draw.
///   kInstallDone:         a batch of an event's flow installations
///                         finished — progress the event toward completion.
///   kInstallAborted:      a batch exhausted its install retries — roll its
///                         placements back and re-defer the flows.
///   kFault:               a scheduled FaultSpec fires — flip topology state
///                         and strand the flows crossing the dead element.
///   kWatchdog:            an execution attempt's soft deadline expired —
///                         abort + roll back the attempt if it is still the
///                         live one (guard subsystem).
///   kRequeue:             a watchdog-aborted event's backoff elapsed — it
///                         re-enters the queue through admission control.
///   kCascadeFault:        a secondary failure decided by the cascade engine
///                         (sustained overload) fires — same victim handling
///                         as kFault, but the spec lives in the run's
///                         dynamic-fault list, not the plan.
///   kGreyApply:           a straggling (or repair-re-issued) dataplane rule
///                         finally lands on its switch — the divergence it
///                         covered resolves (recon subsystem).
///   kRuleLoss:            a switch silently evicts a rule it had applied —
///                         new divergence appears without any controller
///                         action.
///   kReconcile:           the periodic anti-entropy read-back pass runs
///                         (recon::Reconciler): detect drift, repair it,
///                         feed switch health. At most one is armed at a
///                         time; passes re-arm themselves while work
///                         remains.
struct Occurrence {
  enum class Kind : std::uint8_t {
    kDeparture,
    kBackgroundDeparture,
    kInstallDone,
    kInstallAborted,
    kFault,
    kWatchdog,
    kRequeue,
    kCascadeFault,  // appended: snapshot payloads store the numeric value
    kGreyApply,     // appended (snapshot v6)
    kRuleLoss,      // appended (snapshot v6)
    kReconcile,     // appended (snapshot v6)
  };
  Kind kind = Kind::kDeparture;
  FlowId flow;                 // departures
  EventId event;               // install batches / watchdog / requeue
  /// kFault: index into the fault plan's specs; kCascadeFault: index into
  /// the run's dynamic (cascade-generated) fault list; kGreyApply /
  /// kRuleLoss: the target switch's node id.
  std::size_t fault_index = 0;
  /// kInstallDone / kInstallAborted: the batch's placed flow ids. Entries no
  /// longer in the network were killed by a fault mid-install and are
  /// skipped (flow ids are never reused).
  std::vector<FlowId> flows;
  /// kInstallDone / kInstallAborted / kWatchdog: the activation generation
  /// the occurrence was scheduled for. A watchdog abort + requeue restarts
  /// the event under a fresh generation; occurrences of dead generations
  /// are stale and skipped.
  std::uint64_t generation = 0;
};

/// An update event currently executing (installing flows, possibly waiting
/// for capacity for its deferred flows).
struct ActiveEvent {
  const update::UpdateEvent* event = nullptr;
  /// Flows whose installation has finished.
  std::size_t installed = 0;
  /// Installation batches in flight (scheduled kInstallDone occurrences).
  std::size_t batches_in_flight = 0;
  /// Indices of flows waiting for capacity, in event order.
  std::deque<std::size_t> deferred;
  /// Consecutive cheap-retry failures; full migration planning runs only
  /// every kMigrationRetryPeriod-th failure to keep churn retries cheap.
  std::size_t retry_failures = 0;
  /// Which activation of the event this is (1-based; > 1 only after
  /// watchdog abort + requeue). Guards against stale timeline occurrences
  /// from aborted activations.
  std::uint64_t generation = 1;

  // --- Fault bookkeeping (maintained when faults or the watchdog are on) --
  /// Placed flow id -> index into event->flows(). Lets fault handlers map a
  /// stranded placement back to the event flow that must be replanned.
  std::unordered_map<FlowId::rep_type, std::size_t> flow_index;
  /// Placed ids whose installation completed (subset of flow_index keys).
  /// Killing one of these un-installs it (decrements `installed`).
  std::unordered_set<FlowId::rep_type> installed_ids;
  /// One disrupted-flow recovery in progress: when the disruption happened
  /// and whether a correlated (SRLG) incident caused it — group-caused
  /// recoveries also feed the per-SRLG recovery-latency columns.
  struct PendingRecovery {
    Seconds time = 0.0;
    bool srlg = false;
  };
  /// Event flow index -> its FIRST disruption (fault kill or install
  /// abort). Cleared — and a recovery latency recorded — when a replacement
  /// placement finishes installing.
  std::unordered_map<std::size_t, PendingRecovery> pending_recovery;

  [[nodiscard]] bool Complete() const {
    return installed == event->flow_count();
  }
};

/// How often a deferred-flow retry escalates from a cheap admission check to
/// full migration planning.
constexpr std::size_t kMigrationRetryPeriod = 20;

/// SchedulingContext implementation for one round. Charges probe costs and
/// memoizes the scratch state used by incremental co-feasibility checks.
///
/// Fast path (ProbeRuntime::fast_path): every what-if plan runs on a
/// copy-on-write overlay over the frozen round network; the legacy baseline
/// deep-copies instead. Cache hits skip only the planning work — modeled
/// plan time, probe counters, and probed-marking are identical either way,
/// so decisions and golden metrics cannot drift.
class RoundContext final : public sched::SchedulingContext {
 public:
  RoundContext(const net::Network& network, const update::EventPlanner& planner,
               const CostModel& cost_model,
               std::span<const sched::QueuedEvent> queue, Rng& rng,
               Mbps co_migration_allowance, bool quick_cost_probes,
               sched::QueuePressure pressure, ProbeRuntime& probe_rt,
               ProbeCache& probe_cache, int degradation_level,
               ShardRuntime* shard_rt)
      : network_(network),
        planner_(planner),
        cost_model_(cost_model),
        queue_(queue),
        rng_(rng),
        probed_bits_(queue.size(), 0),
        co_migration_allowance_(co_migration_allowance),
        quick_cost_probes_(quick_cost_probes),
        pressure_(pressure),
        probe_rt_(probe_rt),
        probe_cache_(probe_cache),
        degradation_level_(degradation_level),
        shard_rt_(shard_rt) {}

  [[nodiscard]] std::span<const sched::QueuedEvent> Queue() const override {
    return queue_;
  }

  [[nodiscard]] sched::QueuePressure Pressure() const override {
    return pressure_;
  }

  [[nodiscard]] int DegradationLevel() const override {
    return degradation_level_;
  }

  Mbps ProbeCost(std::size_t index) override {
    NU_EXPECTS(index < queue_.size());
    const update::UpdateEvent& event = *queue_[index].event;
    ++cost_probes_;

    if (quick_cost_probes_) {
      // Estimate-based probe: much cheaper, and the winner is NOT marked
      // probed — execution still pays for (and computes) the full plan.
      plan_time_ += cost_model_.quick_probe_factor *
                    cost_model_.ProbeTime(event.flow_count());
      if (const ProbeCacheEntry* entry = CacheLookup(event.id())) {
        ++probe_rt_.stats.probe_cache_hits;
        return entry->cost;
      }
      const auto start = ProbeClock::now();
      const Mbps score = update::QuickCostScore(network_, planner_.paths(),
                                                event, probe_rt_.score_arena);
      probe_rt_.stats.probe_wall_seconds += SecondsSince(start);
      CacheStore(event.id(), score, nullptr);
      return score;
    }

    plan_time_ += cost_model_.ProbeTime(event.flow_count());
    probed_bits_[index] = 1;

    if (const ProbeCacheEntry* entry = CacheLookup(event.id())) {
      ++probe_rt_.stats.probe_cache_hits;
      return entry->cost;
    }
    const auto start = ProbeClock::now();
    update::EventPlan plan = FullProbePlan(event);
    probe_rt_.stats.probe_wall_seconds += SecondsSince(start);
    const Mbps cost = ProbedCost(plan, event);
    CacheStore(event.id(), cost, &plan);
    return cost;
  }

  void ProbeCosts(std::span<const std::size_t> indices,
                  std::span<Mbps> out) override {
    // The sharded engine routes the batch through the per-shard mailbox;
    // like the flat-parallel path, it only pays off for full overlay
    // probes on a real batch.
    if (shard_rt_ != nullptr && probe_rt_.fast_path && !quick_cost_probes_ &&
        indices.size() >= 2) {
      ShardedProbeCosts(indices, out);
      return;
    }
    // Parallel evaluation pays off only for full overlay probes; quick
    // probes are too cheap and the legacy baseline stays sequential (it
    // models the original code path).
    if (probe_rt_.pool == nullptr || !probe_rt_.fast_path ||
        quick_cost_probes_ || indices.size() < 2) {
      sched::SchedulingContext::ProbeCosts(indices, out);
      return;
    }
    NU_EXPECTS(out.size() >= indices.size());

    // Phase 1 (reads only): resolve cache hits BY VALUE (a later store may
    // rehash the map) and dispatch every miss to the pool. Workers run pure
    // what-if plans against the frozen round network; nothing else is
    // shared mutable state.
    const auto start = ProbeClock::now();
    std::vector<char> is_hit(indices.size(), 0);
    std::vector<Mbps> hit_cost(indices.size(), 0.0);
    std::vector<std::future<update::EventPlan>> pending(indices.size());
    bool dispatched = false;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const update::UpdateEvent& event = *queue_[indices[i]].event;
      if (const ProbeCacheEntry* entry = CacheLookup(event.id())) {
        is_hit[i] = 1;
        hit_cost[i] = entry->cost;
        continue;
      }
      pending[i] = probe_rt_.pool->Submit(
          [this, &event] { return planner_.Plan(network_, event); });
      dispatched = true;
    }
    if (dispatched) ++probe_rt_.stats.parallel_probe_batches;

    // Phase 2 (simulation thread, candidate order): identical bookkeeping
    // to sequential ProbeCost calls — same accumulation order for the
    // modeled plan time, same counters, same cache stores — so the batch is
    // bit-identical to probing one by one.
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const update::UpdateEvent& event = *queue_[indices[i]].event;
      ++cost_probes_;
      plan_time_ += cost_model_.ProbeTime(event.flow_count());
      probed_bits_[indices[i]] = 1;
      if (is_hit[i] != 0) {
        ++probe_rt_.stats.probe_cache_hits;
        out[i] = hit_cost[i];
        continue;
      }
      update::EventPlan plan = pending[i].get();
      ++probe_rt_.stats.overlay_probes;
      probe_rt_.stats.overlay_bytes_saved +=
          static_cast<double>(StateBytes());
      const Mbps cost = ProbedCost(plan, event);
      CacheStore(event.id(), cost, &plan);
      out[i] = cost;
    }
    probe_rt_.stats.probe_wall_seconds += SecondsSince(start);
  }

  bool ProbeCoFeasible(std::span<const std::size_t> selected,
                       std::size_t index) override {
    NU_EXPECTS(index < queue_.size());
    const update::UpdateEvent& event = *queue_[index].event;
    plan_time_ += cost_model_.CoFeasibilityTime(event.flow_count());
    ++cofeasibility_probes_;
    probed_bits_[index] = 1;

    const auto start = ProbeClock::now();
    net::MutableNetwork& scratch = EnsureScratch(selected);
    const update::EventPlan plan = probe_rt_.fast_path
                                       ? ProbeOnOverlay(scratch, event)
                                       : ProbeOnCopy(event);
    probe_rt_.stats.probe_wall_seconds += SecondsSince(start);
    if (!plan.fully_feasible) return false;
    // Near-free wins only: co-scheduling should not buy parallelism with
    // migration cost that waiting (and churn) might avoid.
    if (plan.migrated_traffic > co_migration_allowance_) return false;
    // "Together" means without disturbing the events selected this round:
    // the plan may shuffle background flows and still-transmitting flows of
    // past rounds, but must not migrate flows the current round is placing.
    for (const update::FlowAction& action : plan.actions) {
      for (const update::MigrationMove& move : action.migration.moves) {
        // Ids absent from the scratch state were placed by the probed
        // event itself inside the plan's private view — migrating one's own
        // earlier flows is fine.
        if (!scratch.HasFlow(move.flow)) continue;
        const EventId owner = scratch.FlowOf(move.flow).event;
        if (!owner.valid()) continue;  // background
        for (std::size_t s : selected) {
          if (queue_[s].event->id() == owner) return false;
        }
      }
    }
    return true;
  }

  Rng& rng() override { return rng_; }

  [[nodiscard]] Seconds plan_time() const { return plan_time_; }
  [[nodiscard]] std::size_t cost_probes() const { return cost_probes_; }
  [[nodiscard]] std::size_t cofeasibility_probes() const {
    return cofeasibility_probes_;
  }
  [[nodiscard]] bool WasProbed(std::size_t index) const {
    return probed_bits_[index] != 0;
  }

 private:
  /// Sharded batch probe (docs/model.md §15). Phase 1 resolves cache hits
  /// by value, groups the misses by home shard, and runs one planning task
  /// per non-empty shard; each task posts its results to the inter-shard
  /// mailbox tagged (shard, seq). The coordinator drains the round in the
  /// canonical (shard, seq) order, restores candidate order via the slot
  /// index, and then runs phase 2 — bookkeeping identical to sequential
  /// ProbeCost calls, so the batch is bit-identical to the unsharded paths.
  /// Fan-out bookkeeping lands in ShardStats only; the report-visible probe
  /// counters (cache hits/misses, overlay probes) advance exactly as the
  /// unsharded run's do, and parallel_probe_batches stays untouched.
  void ShardedProbeCosts(std::span<const std::size_t> indices,
                         std::span<Mbps> out) {
    NU_EXPECTS(out.size() >= indices.size());
    const auto start = ProbeClock::now();
    const std::size_t shards = shard_rt_->shard_count();
    metrics::ShardStats& sstats = shard_rt_->stats();
    // Prime the memoized state-bytes sample BEFORE any plan runs: the
    // network's ApproxStateBytes includes the shared path registry, which
    // planning grows, and the sequential path samples it at the round's
    // first miss — before that miss's plan.
    (void)StateBytes();

    std::vector<char> is_hit(indices.size(), 0);
    std::vector<Mbps> hit_cost(indices.size(), 0.0);
    // Miss slots grouped by home shard; within a shard, slots ascend, so a
    // task's seq numbers follow candidate order.
    std::vector<std::vector<std::size_t>> shard_slots(shards);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const update::UpdateEvent& event = *queue_[indices[i]].event;
      if (const ProbeCacheEntry* entry = CacheLookup(event.id())) {
        is_hit[i] = 1;
        hit_cost[i] = entry->cost;
        continue;
      }
      shard_slots[shard_rt_->HomeShard(event)].push_back(i);
    }

    std::vector<update::EventPlan> plans(indices.size());
    std::vector<char> have_plan(indices.size(), 0);
    const std::uint64_t round = shard_rt_->NextMailboxRound();
    shard_rt_->mailbox().BeginRound(round);
    std::vector<double> busy(shards, 0.0);
    std::vector<std::future<void>> tasks;
    for (std::size_t s = 0; s < shards; ++s) {
      if (shard_slots[s].empty()) continue;
      ++sstats.probe_tasks;
      tasks.push_back(shard_rt_->pool().Submit([this, s, &shard_slots,
                                                &indices, &busy] {
        const auto task_start = ProbeClock::now();
        std::uint64_t seq = 0;
        for (std::size_t slot : shard_slots[s]) {
          ShardProbeResult res;
          res.slot = slot;
          res.plan = planner_.Plan(network_, *queue_[indices[slot]].event);
          res.cost = ProbedCost(res.plan, *queue_[indices[slot]].event);
          shard_rt_->mailbox().Post(s, seq++, std::move(res));
        }
        busy[s] = SecondsSince(task_start);
      }));
    }
    if (!tasks.empty()) ++sstats.probe_fanouts;
    for (std::future<void>& t : tasks) t.get();

    // Canonical drain: messages arrive sorted by (shard, seq) regardless of
    // worker interleaving; the slot index maps each back to its candidate.
    // The per-shard minima merged here feed the distributed-argmin
    // cross-check below.
    sched::ShardMinimum merged;
    auto drained = shard_rt_->mailbox().DrainRound(round);
    sstats.mailbox_messages += drained.size();
    for (auto& msg : drained) {
      sched::MergeShardMinimum(merged, indices[msg.payload.slot],
                               msg.payload.cost);
      plans[msg.payload.slot] = std::move(msg.payload.plan);
      have_plan[msg.payload.slot] = 1;
    }
    sstats.OnFanout(busy, SecondsSince(start));

    // Phase 2 (simulation thread, candidate order): identical bookkeeping
    // to sequential ProbeCost calls.
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const update::UpdateEvent& event = *queue_[indices[i]].event;
      ++cost_probes_;
      plan_time_ += cost_model_.ProbeTime(event.flow_count());
      probed_bits_[indices[i]] = 1;
      if (is_hit[i] != 0) {
        ++probe_rt_.stats.probe_cache_hits;
        out[i] = hit_cost[i];
        continue;
      }
      NU_CHECK(have_plan[i] != 0);
      ++probe_rt_.stats.overlay_probes;
      probe_rt_.stats.overlay_bytes_saved +=
          static_cast<double>(StateBytes());
      const Mbps cost = ProbedCost(plans[i], event);
      CacheStore(event.id(), cost, &plans[i]);
      out[i] = cost;
    }
    probe_rt_.stats.probe_wall_seconds += SecondsSince(start);

    // Distributed-argmin cross-check: folding the cache hits into the
    // mailbox-merged per-shard minimum must reproduce the scheduler's
    // global first-listed-wins strict-< scan. Candidate lists ascend (the
    // schedulers sort their samples), making the two tie-breaks coincide.
    if (std::is_sorted(indices.begin(), indices.end())) {
      for (std::size_t i = 0; i < indices.size(); ++i) {
        if (is_hit[i] != 0) {
          sched::MergeShardMinimum(merged, indices[i], out[i]);
        }
      }
      if (merged.valid) {
        // CheapestCandidate returns the winning candidate VALUE (a queue
        // position), directly comparable to the merged minimum's candidate.
        const std::size_t cheapest = sched::CheapestCandidate(
            indices, std::span<const Mbps>(out.data(), indices.size()));
        NU_CHECK(cheapest == merged.candidate);
        ++sstats.argmin_merges;
      }
    }
  }

  /// One full cost-probe plan with fast-path/legacy dispatch + stats.
  update::EventPlan FullProbePlan(const update::UpdateEvent& event) {
    if (probe_rt_.fast_path) {
      ++probe_rt_.stats.overlay_probes;
      probe_rt_.stats.overlay_bytes_saved +=
          static_cast<double>(StateBytes());
      return planner_.Plan(network_, event);
    }
    ++probe_rt_.stats.legacy_probe_copies;
    return planner_.PlanLegacyCopy(network_, event);
  }

  update::EventPlan ProbeOnOverlay(const net::NetworkView& scratch,
                                   const update::UpdateEvent& event) {
    ++probe_rt_.stats.overlay_probes;
    probe_rt_.stats.overlay_bytes_saved += static_cast<double>(StateBytes());
    return planner_.Plan(scratch, event);
  }

  update::EventPlan ProbeOnCopy(const update::UpdateEvent& event) {
    ++probe_rt_.stats.legacy_probe_copies;
    return planner_.PlanLegacyCopy(*scratch_copy_, event);
  }

  /// The probe cost the schedulers compare: migrated traffic, plus a 10x
  /// demand penalty per unplaceable flow — a blocked flow would stall the
  /// whole round, so such events are deprioritized.
  static Mbps ProbedCost(const update::EventPlan& plan,
                         const update::UpdateEvent& event) {
    Mbps cost = plan.migrated_traffic;
    if (!plan.fully_feasible) {
      for (const update::FlowAction& action : plan.actions) {
        if (!action.placeable) {
          cost += 10.0 * event.flows()[action.flow_index].demand;
        }
      }
    }
    return cost;
  }

  [[nodiscard]] ProbeCacheEntry* CacheLookup(EventId id) {
    if (!probe_rt_.cache_enabled) return nullptr;
    const auto it = probe_cache_.find(id.value());
    if (it == probe_cache_.end() ||
        it->second.epoch != network_.state_epoch()) {
      return nullptr;
    }
    return &it->second;
  }

  /// Stores a probe result (counted as a miss). `plan` is consumed when
  /// non-null; quick probes pass nullptr (cost-only entries never replay).
  void CacheStore(EventId id, Mbps cost, update::EventPlan* plan) {
    if (!probe_rt_.cache_enabled) return;
    ++probe_rt_.stats.probe_cache_misses;
    ProbeCacheEntry& entry = probe_cache_[id.value()];
    entry.epoch = network_.state_epoch();
    entry.cost = cost;
    entry.has_plan = plan != nullptr;
    entry.plan = plan != nullptr ? std::move(*plan) : update::EventPlan{};
  }

  /// Deep-copy footprint of the round network, memoized (the network is
  /// frozen while the round's probes run).
  [[nodiscard]] std::size_t StateBytes() {
    if (!state_bytes_.has_value()) state_bytes_ = network_.ApproxStateBytes();
    return *state_bytes_;
  }

  /// Lazily maintains a scratch state with `selected` events applied — an
  /// overlay on the fast path, a deep copy on the legacy baseline. P-LMTF
  /// grows `selected` by appending, so the applied prefix usually stays
  /// valid; any other shape triggers a rebuild.
  net::MutableNetwork& EnsureScratch(std::span<const std::size_t> selected) {
    const bool have_scratch =
        probe_rt_.fast_path ? scratch_overlay_.has_value()
                            : scratch_copy_.has_value();
    const bool prefix_ok =
        have_scratch && applied_.size() <= selected.size() &&
        std::equal(applied_.begin(), applied_.end(), selected.begin());
    if (!prefix_ok) {
      if (probe_rt_.fast_path) {
        scratch_overlay_.emplace(network_);
      } else {
        scratch_copy_ = network_;
      }
      applied_.clear();
    }
    net::MutableNetwork& scratch =
        probe_rt_.fast_path
            ? static_cast<net::MutableNetwork&>(*scratch_overlay_)
            : static_cast<net::MutableNetwork&>(*scratch_copy_);
    for (std::size_t i = applied_.size(); i < selected.size(); ++i) {
      planner_.Execute(scratch, *queue_[selected[i]].event,
                       /*legacy_migration=*/!probe_rt_.fast_path);
      applied_.push_back(selected[i]);
    }
    return scratch;
  }

  const net::Network& network_;
  const update::EventPlanner& planner_;
  const CostModel& cost_model_;
  std::span<const sched::QueuedEvent> queue_;
  Rng& rng_;

  Seconds plan_time_ = 0.0;
  std::size_t cost_probes_ = 0;
  std::size_t cofeasibility_probes_ = 0;
  /// Per-round probed flags, indexed by queue position (replaces the
  /// O(probes) linear scan the WasProbed lookup used to do).
  std::vector<char> probed_bits_;
  std::optional<net::NetworkOverlay> scratch_overlay_;
  std::optional<net::Network> scratch_copy_;
  std::vector<std::size_t> applied_;
  std::optional<std::size_t> state_bytes_;
  Mbps co_migration_allowance_ = 100.0;
  bool quick_cost_probes_ = false;
  sched::QueuePressure pressure_;
  ProbeRuntime& probe_rt_;
  ProbeCache& probe_cache_;
  /// Brownout ladder level the serve runtime pinned for this round (0 when
  /// serve mode is off).
  int degradation_level_ = 0;
  /// Non-null when the pod-sharded engine drives this round's batch probes.
  ShardRuntime* shard_rt_ = nullptr;
};

/// Events sorted by arrival time (stable on ties).
std::vector<const update::UpdateEvent*> SortedByArrival(
    std::span<const update::UpdateEvent> events) {
  std::vector<const update::UpdateEvent*> sorted;
  sorted.reserve(events.size());
  for (const update::UpdateEvent& e : events) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const update::UpdateEvent* a,
                      const update::UpdateEvent* b) {
                     return a->arrival_time() < b->arrival_time();
                   });
  return sorted;
}

}  // namespace

Simulator::Simulator(const net::Network& initial,
                     const topo::PathProvider& paths, SimConfig config)
    : initial_(initial), paths_(paths), config_(config) {}

SimResult Simulator::Run(sched::Scheduler& scheduler,
                         std::span<const update::UpdateEvent> events) {
  return RunEventLoop(scheduler, events, /*resume=*/false);
}

SimResult Simulator::Resume(sched::Scheduler& scheduler,
                            std::span<const update::UpdateEvent> events) {
  return RunEventLoop(scheduler, events, /*resume=*/true);
}

SimResult Simulator::RunEventLoop(sched::Scheduler& scheduler,
                                  std::span<const update::UpdateEvent> events,
                                  const bool resume) {
  net::Network network = initial_;

  // Fault wiring. When faults are off the planner sees the raw provider and
  // the injector draws nothing, so a fixed-seed run is bit-identical with
  // and without this machinery. When on, planning/placement go through an
  // alive-paths view that re-filters whenever the topology epoch changes.
  const bool faults_on = config_.faults.enabled();
  // Backstop validation: a plan referencing nonexistent ids fails here with
  // a FaultPlanError naming the offending spec, never by misfiring mid-run.
  if (faults_on) config_.faults.plan.Validate(network.graph());

  // Grey-failure / reconciliation wiring (docs/model.md §16). The grey
  // model makes installed rules lie (acked-but-absent), straggle, or get
  // silently evicted; the reconciler is the periodic read-back pass that
  // detects and repairs the resulting intended-vs-applied drift. Both off
  // by default: a disabled dataplane model holds no divergence, draws
  // nothing, and adds no snapshot section, so fixed-seed runs are
  // bit-identical to a build without the subsystem. One RNG stream covers
  // injection AND repair, so reconciliation is a single deterministic draw
  // sequence.
  const bool grey_on = config_.faults.grey.enabled();
  if (grey_on) config_.faults.grey.Validate();
  const bool recon_on = config_.recon.enabled;
  const bool dataplane_on = grey_on || recon_on;
  net::DataplaneState dataplane;
  recon::Reconciler reconciler(config_.recon);
  Rng grey_rng(StreamSeed(config_.seed, RngStream::kGreyFailures));
  // kGreyApply/kRuleLoss entries currently in the timeline, and whether a
  // kReconcile tick is armed. Not serialized: both are recounted from the
  // restored timeline.
  std::size_t pending_grey = 0;
  bool reconcile_armed = false;

  const topo::PredicatePathProvider alive_paths(
      paths_,
      [&network, &reconciler, recon_on](const topo::Path& p) {
        if (!network.PathAlive(p)) return false;
        // Health deprioritization: paths through Degraded (or Quarantined)
        // switches leave candidate selection. Quarantined switches are
        // also down, but degradation alone must already steer planning.
        if (recon_on && reconciler.health().any_unusable()) {
          for (const NodeId node : p.nodes) {
            if (!reconciler.health().IsUsable(node)) return false;
          }
        }
        return true;
      },
      [&network, &reconciler] {
        return network.topology_epoch() + reconciler.health().epoch();
      });
  const topo::PathProvider& provider =
      faults_on || recon_on
          ? static_cast<const topo::PathProvider&>(alive_paths)
          : paths_;
  fault::FaultInjector injector(
      config_.faults, StreamSeed(config_.seed, RngStream::kFaultInjection));
  // Overload→cascade feedback: a LinkStressMonitor (guard/) watches link
  // utilization; the engine converts sustained overload into secondary
  // kCascadeFault occurrences, recorded in `dynamic_faults` (the run's
  // cascade-generated specs, parallel to the plan's static ones).
  fault::CascadeEngine cascade(config_.faults.cascade);
  std::vector<fault::FaultSpec> dynamic_faults;
  const std::size_t plan_spec_count = config_.faults.plan.specs().size();
  const std::span<const fault::SharedRiskGroup> srlg_groups{
      config_.faults.plan.groups()};

  const update::EventPlanner planner(provider, config_.migration_options,
                                     config_.path_selection);
  const CostModel& costs = config_.cost_model;
  metrics::Collector collector;
  Rng rng(config_.seed);
  SimResult result;

  // Probe fast-path wiring (docs/model.md §9). The cache persists across
  // rounds but is keyed by the network's state epoch, so any mutation
  // invalidates it wholesale; the pool exists only when parallelism is both
  // requested and applicable (full probes on the overlay fast path).
  ProbeRuntime probe_rt;
  probe_rt.fast_path = config_.probe_fast_path;
  probe_rt.cache_enabled = config_.probe_cost_cache && config_.probe_fast_path;
  std::unique_ptr<ThreadPool> probe_pool;
  if (config_.probe_parallelism > 1 && config_.probe_fast_path &&
      !config_.quick_cost_probes) {
    probe_pool = std::make_unique<ThreadPool>(config_.probe_parallelism);
    probe_rt.pool = probe_pool.get();
  }
  ProbeCache probe_cache;

  // Pod-sharded engine wiring (docs/model.md §15). The shard map partitions
  // the fabric per pod, the runtime owns the worker pool and the
  // inter-shard mailbox, and the coordinator stays the only thread that
  // mutates simulation state — so the sharded run is bit-identical to the
  // unsharded one at any thread count. Takes precedence over the flat
  // probe_parallelism pool when both are configured.
  std::optional<ShardRuntime> shard_rt;
  if (config_.shards >= 2) {
    const std::size_t threads =
        config_.shard_threads != 0
            ? config_.shard_threads
            : std::min<std::size_t>(config_.shards, 8);
    shard_rt.emplace(network.graph(), config_.shards, threads);
  }

  // Guard wiring. Like the fault machinery, a disabled guard draws nothing
  // and changes nothing: fixed-seed runs are bit-identical with and without
  // it. `lossy` marks the regimes where placed flows can disappear out from
  // under scheduled occurrences (fault kills, watchdog rollbacks), which
  // turns on the per-flow bookkeeping and stale-occurrence tolerance.
  const guard::GuardConfig& gcfg = config_.guard;
  const bool overload_on = gcfg.overload.enabled();
  const bool watchdog_on = gcfg.deadline.enabled();
  const bool audit_on = gcfg.auditor.enabled;
  const bool lossy = faults_on || watchdog_on;
  guard::Watchdog watchdog(gcfg.deadline);
  guard::Auditor auditor(gcfg.auditor);

  // Serve wiring. Like faults and the guard, a disabled serve layer keeps
  // no state and draws nothing, so fixed-seed runs are unchanged. Enabled,
  // the runtime gates admission, tracks health (brownout), and records the
  // SLO timeseries; `serve_rt.has_value()` IS the enabled check everywhere.
  std::optional<serve::ServeRuntime> serve_rt;
  if (config_.serve.enabled) serve_rt.emplace(config_.serve);

  const auto pending = SortedByArrival(events);
  std::size_t next_arrival = 0;

  std::vector<const update::UpdateEvent*> queue;
  std::unordered_map<EventId::rep_type, ActiveEvent> active;
  std::vector<EventId> active_order;
  // Requeue lookups (kRequeue carries only the EventId) and activation
  // generations for stale-occurrence detection.
  std::unordered_map<EventId::rep_type, const update::UpdateEvent*>
      event_by_id;
  for (const update::UpdateEvent* e : pending) {
    event_by_id.emplace(e->id().value(), e);
  }
  std::unordered_map<EventId::rep_type, std::uint64_t> activation_count;
  // Event-conservation buckets the auditor cross-checks: every arrived
  // event is queued, active, parked, completed, shed, or quarantined.
  std::size_t parked_count = 0;
  std::size_t completed_count = 0;
  std::size_t shed_count = 0;
  std::size_t quarantined_count = 0;
  TimelineQueue<Occurrence> timeline;
  Seconds now = 0.0;
  Seconds total_plan_time = 0.0;

  // Checkpoint wiring (docs/model.md §11). Disabled configs touch no files
  // and skip every hook, so fixed-seed runs are bit-identical to a build
  // without the subsystem. The journal is a determinism cross-check, not a
  // redo log: a resumed run re-executes from the restored snapshot and
  // verifies each regenerated operation bitwise against the journal.
  const ckpt::CheckpointConfig& ck = config_.checkpoint;
  const bool ckpt_on = ck.enabled();
  if (resume && !ckpt_on) {
    throw RecoveryError("Resume requires a checkpoint directory");
  }
  if (ckpt_on) NU_CHECK(ck.cadence >= 1);
  // Crash injection is one-shot per process: a resumed run ignores the
  // spec, otherwise it would crash at the same round forever.
  fault::CrashSpec crash = config_.faults.crash;
  if (resume) crash = fault::CrashSpec{};
  ckpt::JournalWriter wal;
  std::vector<ckpt::WalRecord> replay;  // journal records left to verify
  std::size_t replay_pos = 0;
  std::uint64_t wal_round = 0;       // round key of the current wal segment
  std::uint64_t wal_keep_bytes = 0;  // valid prefix of the replayed segment
  // Set when the restored snapshot sits exactly at a cadence point, so the
  // re-entered hook must not write (or count) a duplicate snapshot.
  bool skip_snapshot_once = false;
  std::uint64_t churn_draws = 0;  // TrafficGenerator::Next calls so far
  std::uint64_t snapshot_bytes_written = 0;
  double snapshot_wall_seconds = 0.0;

  /// Journals one committed operation. During recovery the regenerated
  /// record is verified bitwise against the journal instead of appended;
  /// when the journal runs out, the same segment switches to live appends
  /// at its valid-prefix length (dropping any torn tail for good).
  auto commit = [&](ckpt::WalOp op, std::uint64_t subject, double value) {
    if (!ckpt_on) return;
    const ckpt::WalRecord rec{op, subject, value};
    if (replay_pos < replay.size()) {
      const ckpt::WalRecord& expect = replay[replay_pos];
      if (!rec.BitwiseEquals(expect)) {
        throw RecoveryError(
            "replay divergence at record " + std::to_string(replay_pos) +
            ": journal has " + expect.DebugString() +
            ", re-execution produced " + rec.DebugString());
      }
      ++replay_pos;
      ++result.recovery.wal_records_replayed;
      collector.OnWalRecord();
      if (replay_pos == replay.size()) {
        wal.Open(ckpt::JournalPath(ck.dir, wal_round), wal_keep_bytes);
      }
      return;
    }
    collector.OnWalRecord();
    wal.Append(rec);
  };

  // Every scheduled incident enters the timeline up front; the plan is
  // already time-sorted, but the queue orders them anyway.
  if (faults_on) {
    const std::vector<fault::FaultSpec>& specs = config_.faults.plan.specs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      timeline.Push(specs[i].time,
                    Occurrence{Occurrence::Kind::kFault, FlowId::invalid(),
                               EventId::invalid(), i, {}});
    }
  }

  // Background churn: existing background flows end after a residual
  // lifetime (stationarity: uniform fraction of the full duration) and are
  // replaced with fresh draws at departure time.
  std::unique_ptr<trace::TrafficGenerator> churn_gen;
  Rng churn_rng(StreamSeed(config_.seed, RngStream::kChurnTimers));
  if (config_.churn.enabled) {
    NU_CHECK(churn_factory_ != nullptr);
    churn_gen =
        churn_factory_(StreamSeed(config_.seed, RngStream::kChurnGenerator));
    for (FlowId fid : network.PlacedFlows()) {
      const flow::Flow& f = network.FlowOf(fid);
      if (f.origin != flow::FlowOrigin::kBackground) continue;
      timeline.Push(churn_rng.Uniform01() * f.duration,
                    Occurrence{Occurrence::Kind::kBackgroundDeparture, fid,
                               EventId::invalid(), 0, {}});
    }
  }

  auto spawn_background_replacement = [&] {
    for (std::size_t attempt = 0;
         attempt < config_.churn.replacement_attempts; ++attempt) {
      const trace::FlowSpec spec = churn_gen->Next();
      ++churn_draws;  // replayed to restore the generator from a snapshot
      const auto path = trace::FindRandomPathWithHeadroom(
          network, provider, spec.src, spec.dst, spec.demand,
          config_.churn.placement, churn_rng);
      if (!path.has_value()) continue;
      flow::Flow f;
      f.src = spec.src;
      f.dst = spec.dst;
      f.demand = spec.demand;
      f.duration = spec.duration;
      f.origin = flow::FlowOrigin::kBackground;
      const FlowId placed = network.Place(std::move(f), *path);
      timeline.Push(now + spec.duration,
                    Occurrence{Occurrence::Kind::kBackgroundDeparture, placed,
                               EventId::invalid(), 0, {}});
      return;
    }
  };

  /// Terminally sheds `e` (admission drop or requeue drop). The collector
  /// distinguishes kShed from kAborted by whether the event ever executed.
  /// `now` can sit kTimeEpsilon below the arrival being ingested, so clamp.
  auto shed = [&](const update::UpdateEvent& e) {
    const Seconds t = std::max(now, e.arrival_time());
    collector.OnShed(e.id(), t);
    commit(ckpt::WalOp::kShed, e.id().value(), t);
    ++shed_count;
  };

  /// Admission control: pushes `e` unless the bounded queue is full, in
  /// which case the configured policy picks a victim — possibly `e` itself
  /// (returns false). A disabled guard admits unconditionally.
  auto admit = [&](const update::UpdateEvent* e) -> bool {
    if (overload_on && queue.size() >= gcfg.overload.max_queue_length) {
      const std::optional<std::size_t> victim = guard::ChooseShedVictim(
          gcfg.overload, queue, *e, network, provider);
      if (!victim.has_value()) {
        // Either way the overload guard drops a serve-ADMITTED event (the
        // serve gates already passed it), so the serve ledger counts it as
        // a queue shed, not an admission rejection.
        if (serve_rt.has_value()) serve_rt->OnShedQueue(*e);
        shed(*e);
        return false;
      }
      if (serve_rt.has_value()) serve_rt->OnShedQueue(*queue[*victim]);
      shed(*queue[*victim]);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(*victim));
    }
    queue.push_back(e);
    if (shard_rt.has_value() && shard_rt->SpansShards(*e)) {
      // Cross-pod update: some endpoint lives outside the home shard, so
      // its probe reads boundary-link state owned by another shard.
      ++shard_rt->stats().cross_shard_events;
    }
    collector.OnQueueDepth(queue.size());
    return true;
  };

  auto ingest_arrivals = [&] {
    while (next_arrival < pending.size() &&
           pending[next_arrival]->arrival_time() <= now + kTimeEpsilon) {
      const update::UpdateEvent* e = pending[next_arrival];
      collector.OnArrival(e->id(), e->arrival_time(), e->flow_count());
      commit(ckpt::WalOp::kArrival, e->id().value(), e->arrival_time());
      if (serve_rt.has_value()) {
        // Serve admission gates run BEFORE the overload guard: a rejected
        // arrival never competes for queue space. `now` can sit
        // kTimeEpsilon below the arrival being ingested, so clamp.
        serve_rt->OnArrival(*e);
        const serve::RejectReason reason =
            serve_rt->Admit(*e, std::max(now, e->arrival_time()));
        if (reason != serve::RejectReason::kNone) {
          shed(*e);
          ++next_arrival;
          continue;
        }
      }
      admit(e);
      ++next_arrival;
    }
  };

  /// Schedules an install batch starting at `start` with nominal rule-push
  /// latency `nominal_install`. With a healthy pipeline the flows become
  /// installed at start + nominal_install; each starts transmitting then and
  /// departs after its duration. Under the flaky model the batch is run
  /// through the injector: success stretches the latency (jitter + backoff
  /// waits), exhaustion schedules an abort instead — its placements roll
  /// back when the abort fires.
  auto schedule_batch = [&](ActiveEvent& ae, EventId id,
                            std::span<const FlowId> flows, Seconds start,
                            Seconds nominal_install) {
    ++ae.batches_in_flight;
    std::vector<FlowId> batch(flows.begin(), flows.end());
    Seconds install_end = start + nominal_install;
    if (faults_on) {
      const fault::InstallTrial trial =
          injector.SampleInstall(nominal_install, start);
      collector.OnInstallBatch(trial.attempts, !trial.success);
      if (!trial.success) {
        timeline.Push(start + trial.wasted_delay,
                      Occurrence{Occurrence::Kind::kInstallAborted,
                                 FlowId::invalid(), id, 0, std::move(batch),
                                 ae.generation});
        return;
      }
      install_end =
          start + trial.wasted_delay + trial.latency_factor * nominal_install;
    }
    // Push order (kInstallDone first, then departures) is part of the
    // deterministic tie-break for same-time occurrences — keep it stable.
    timeline.Push(install_end,
                  Occurrence{Occurrence::Kind::kInstallDone, FlowId::invalid(),
                             id, 0, std::move(batch), ae.generation});
    for (FlowId fid : flows) {
      timeline.Push(install_end + network.FlowOf(fid).duration,
                    Occurrence{Occurrence::Kind::kDeparture, fid, id, 0, {}});
    }
  };

  /// Arms the next anti-entropy tick. At most one kReconcile occurrence is
  /// ever in flight; passes re-arm themselves while drift or in-flight
  /// grey applies remain, so the tick dies out with the work.
  auto arm_reconcile = [&](Seconds t) {
    if (!recon_on || reconcile_armed) return;
    reconcile_armed = true;
    timeline.Push(t + config_.recon.period,
                  Occurrence{Occurrence::Kind::kReconcile, FlowId::invalid(),
                             EventId::invalid(), 0, {}});
  };

  /// Schedules a deferred grey occurrence (straggler apply / rule loss);
  /// the target switch rides in fault_index.
  auto push_grey = [&](Occurrence::Kind kind, NodeId node, FlowId flow,
                       Seconds t) {
    ++pending_grey;
    timeline.Push(t, Occurrence{kind, flow, EventId::invalid(),
                                static_cast<std::size_t>(node.value()), {}});
  };

  /// Issues the dataplane rules of freshly installed event flows: one rule
  /// per switch on the flow's path, each drawn through the grey model. An
  /// ack-lie or straggler leaves the rule divergent (intended but not
  /// applied); a rule loss applies now and schedules the silent eviction.
  /// Background flows and migration reroutes of already-verified flows are
  /// modeled as reliable — the grey model targets the install pipeline of
  /// update events, where drift gates correctness.
  auto issue_rules = [&](std::span<const FlowId> flows, Seconds t) {
    if (!dataplane_on) return;
    recon::ReconStats& rs = reconciler.stats();
    for (const FlowId fid : flows) {
      if (lossy && !network.HasFlow(fid)) continue;  // killed mid-install
      const topo::Path& path = network.PathOf(fid);
      for (const NodeId node : path.nodes) {
        if (network.graph().node(node).role == topo::NodeRole::kHost) {
          continue;
        }
        ++rs.rules_issued;
        const fault::GreyOutcome out =
            fault::SampleGrey(config_.faults.grey, node, t, grey_rng);
        switch (out.kind) {
          case fault::GreyOutcome::Kind::kApplied:
            ++rs.rules_verified;
            break;
          case fault::GreyOutcome::Kind::kAckLie:
            dataplane.AddDivergence(node, fid, net::RuleFault::kAckLie, t);
            ++rs.ack_lies;
            arm_reconcile(t);
            break;
          case fault::GreyOutcome::Kind::kStraggler:
            dataplane.AddDivergence(node, fid, net::RuleFault::kStraggler, t);
            dataplane.SetPendingApply(node, fid, true);
            push_grey(Occurrence::Kind::kGreyApply, node, fid, t + out.delay);
            ++rs.stragglers;
            arm_reconcile(t);
            break;
          case fault::GreyOutcome::Kind::kRuleLoss:
            ++rs.rules_verified;  // applied now, evicted later
            push_grey(Occurrence::Kind::kRuleLoss, node, fid, t + out.delay);
            break;
        }
      }
    }
  };

  // Retries deferred flows of active events (activation order) against the
  // freed capacity. A retry is a cheap admission check; full migration
  // planning runs only every kMigrationRetryPeriod-th failure, so frequent
  // churn departures stay inexpensive. Stops at the first still-unplaceable
  // flow per event (head-of-line within the event).
  auto retry_deferred = [&] {
    for (EventId id : active_order) {
      ActiveEvent& ae = active.at(id.value());
      while (!ae.deferred.empty()) {
        const std::size_t flow_idx = ae.deferred.front();
        const flow::Flow& f = ae.event->flows()[flow_idx];
        Mbps migrated = 0.0;
        std::optional<FlowId> placed;
        if (const topo::Path* direct = net::FindFeasiblePathPtr(
                network, provider, f.src, f.dst, f.demand,
                config_.path_selection)) {
          placed = network.Place(f, *direct);
          total_plan_time += costs.plan_time_per_flow;
        } else if (++ae.retry_failures % kMigrationRetryPeriod == 0) {
          placed = planner.PlaceFlow(network, f, &migrated);
          total_plan_time += costs.plan_time_per_flow;
        }
        if (!placed.has_value()) break;
        ae.retry_failures = 0;
        if (lossy) ae.flow_index.emplace(placed->value(), flow_idx);
        collector.OnCost(id, migrated);
        commit(ckpt::WalOp::kMigration, id.value(), migrated);
        const FlowId placed_ids[] = {*placed};
        schedule_batch(ae, id, placed_ids, now + costs.MigrationTime(migrated),
                       costs.InstallTime(1));
        ae.deferred.pop_front();
      }
    }
  };

  /// One full audit pass over the live run state. The event-conservation
  /// buckets come straight from the loop's own counters; everything else
  /// the auditor recomputes from the network itself.
  auto run_audit = [&] {
    guard::QueueAccounting acct;
    acct.arrived = collector.records().size();
    acct.queued = queue.size();
    acct.active = active.size();
    acct.parked = parked_count;
    acct.completed = completed_count;
    acct.shed = shed_count;
    acct.quarantined = quarantined_count;
    acct.queue_capacity = gcfg.overload.max_queue_length;
    // Bounded-drift invariant (recon subsystem): a switch continuously at
    // drift past the configured pass budget without quarantine is a
    // liveness violation.
    guard::DriftAuditInput drift_input;
    const guard::DriftAuditInput* drift_ptr = nullptr;
    if (recon_on && config_.recon.max_passes_at_drift > 0) {
      drift_input.max_passes = config_.recon.max_passes_at_drift;
      for (const recon::DriftStreak& streak : reconciler.DriftStreaks()) {
        drift_input.entries.push_back({streak.node, streak.passes});
      }
      drift_ptr = &drift_input;
    }
    collector.OnAudit(auditor.Audit(
        network, acct, result.forced_placements,
        guard::AuditContext{result.rounds, network.topology_epoch()},
        shard_rt.has_value() ? &shard_rt->audit_runtime() : nullptr,
        drift_ptr));
  };
  std::size_t occurrences_since_audit = 0;
  bool audit_due = false;

  /// One anti-entropy pass (docs/model.md §16): prune stale divergence,
  /// read back every drifting switch, repair through the grey pipeline,
  /// fold switch health, quarantine perma-liars, and re-arm while work
  /// remains. Sharded runs fan the read-back out per shard through the
  /// deterministic mailbox; the canonical (shard, seq) drain re-sorted by
  /// switch id makes the observation list identical to the serial scan.
  auto run_reconcile = [&](Seconds t) {
    recon::Reconciler::Prune(network, dataplane);
    std::vector<recon::DriftObservation> drift;
    const std::vector<NodeId> drifting = dataplane.DriftingNodes();
    if (shard_rt.has_value() && drifting.size() >= 2) {
      metrics::ShardStats& sstats = shard_rt->stats();
      std::vector<std::vector<NodeId>> shard_nodes(shard_rt->shard_count());
      for (const NodeId node : drifting) {
        shard_nodes[shard_rt->map().ShardOf(node)].push_back(node);
      }
      const std::uint64_t round = shard_rt->NextMailboxRound();
      shard_rt->drift_mailbox().BeginRound(round);
      std::vector<std::future<void>> tasks;
      for (std::size_t s = 0; s < shard_nodes.size(); ++s) {
        if (shard_nodes[s].empty()) continue;
        ++sstats.recon_tasks;
        tasks.push_back(shard_rt->pool().Submit([&, s] {
          // Workers only read the (frozen) dataplane and post pure values;
          // the coordinator blocks on the round barrier below.
          std::uint64_t seq = 0;
          for (const NodeId node : shard_nodes[s]) {
            shard_rt->drift_mailbox().Post(
                s, seq++,
                recon::Reconciler::CollectNodeDrift(dataplane, node));
          }
        }));
      }
      ++sstats.recon_fanouts;
      for (std::future<void>& task : tasks) task.get();
      auto drained = shard_rt->drift_mailbox().DrainRound(round);
      sstats.mailbox_messages += drained.size();
      drift.reserve(drained.size());
      for (auto& msg : drained) drift.push_back(std::move(msg.payload));
      // Mailbox order is (shard, seq); the pass wants ascending switch id.
      std::sort(drift.begin(), drift.end(),
                [](const recon::DriftObservation& a,
                   const recon::DriftObservation& b) {
                  return a.node.value() < b.node.value();
                });
    } else {
      drift = recon::Reconciler::CollectDrift(dataplane);
    }
    const recon::PassResult pass =
        reconciler.Pass(drift, dataplane, config_.faults.grey, t, grey_rng);
    for (const recon::DeferredGrey& d : pass.deferred) {
      push_grey(d.kind == recon::DeferredGrey::Kind::kApply
                    ? Occurrence::Kind::kGreyApply
                    : Occurrence::Kind::kRuleLoss,
                d.node, d.flow, d.time);
    }
    for (const NodeId node : pass.quarantine) {
      // Quarantine-with-drain: the switch leaves service exactly like a
      // switch-down fault (victim sweep, WAL commit, audit trigger) via a
      // dynamic fault spec fired at `t`; its tracked divergence is dropped
      // — residual on a quarantined switch is excused by the explicit
      // quarantine.
      dataplane.DropNode(node);
      // Dynamic faults are counted at the firing site (the execution path
      // skips accounting for them, matching the cascade engine).
      collector.OnFault(/*link_fault=*/false);
      fault::FaultSpec down;
      down.time = t;
      down.kind = fault::FaultKind::kSwitchDown;
      down.node = node;
      timeline.Push(t, Occurrence{Occurrence::Kind::kCascadeFault,
                                  FlowId::invalid(), EventId::invalid(),
                                  dynamic_faults.size(), {}});
      dynamic_faults.push_back(down);
    }
    // Re-arm while anything still needs reconciling: a live run (rules are
    // still being issued), unresolved repairable drift, or in-flight grey
    // applies/evictions.
    const bool run_live = !active.empty() || !queue.empty() ||
                          parked_count > 0 || next_arrival < pending.size();
    if (run_live || dataplane.active_count() > 0 || pending_grey > 0) {
      arm_reconcile(t);
    }
  };

  /// Serializes the complete mid-run controller state at a round boundary.
  /// Field order IS the snapshot payload format — bump
  /// ckpt::kSnapshotVersion on any change. Unordered containers are written
  /// in ascending-key order (canonical bytes); active events in activation
  /// order; the timeline in canonical (time, seq) pop order.
  auto serialize_state = [&](BinWriter& w) {
    network.SaveState(w);
    SaveRngState(w, rng.GetState());
    SaveRngState(w, churn_rng.GetState());
    SaveRngState(w, injector.GetRngState());
    w.U64(churn_draws);
    collector.SaveState(w);
    watchdog.SaveState(w);
    w.U64(result.rounds);
    w.U64(result.cost_probes);
    w.U64(result.cofeasibility_probes);
    w.U64(result.forced_placements);
    w.U64(probe_rt.stats.probe_cache_hits);
    w.U64(probe_rt.stats.probe_cache_misses);
    w.U64(probe_rt.stats.exec_plan_reuses);
    w.U64(probe_rt.stats.overlay_probes);
    w.U64(probe_rt.stats.legacy_probe_copies);
    w.U64(probe_rt.stats.parallel_probe_batches);
    w.F64(probe_rt.stats.overlay_bytes_saved);
    w.F64(probe_rt.stats.probe_wall_seconds);
    w.U64(next_arrival);
    w.Size(queue.size());
    for (const update::UpdateEvent* e : queue) w.U64(e->id().value());
    w.Size(active_order.size());
    for (EventId id : active_order) {
      const ActiveEvent& ae = active.at(id.value());
      w.U64(id.value());
      w.U64(ae.installed);
      w.U64(ae.batches_in_flight);
      w.Size(ae.deferred.size());
      for (std::size_t idx : ae.deferred) w.U64(idx);
      w.U64(ae.retry_failures);
      w.U64(ae.generation);
      std::vector<FlowId::rep_type> placed;
      placed.reserve(ae.flow_index.size());
      for (const auto& [rep, _] : ae.flow_index) placed.push_back(rep);
      std::sort(placed.begin(), placed.end());
      w.Size(placed.size());
      for (FlowId::rep_type rep : placed) {
        w.U64(rep);
        w.U64(ae.flow_index.at(rep));
      }
      std::vector<FlowId::rep_type> installed(ae.installed_ids.begin(),
                                              ae.installed_ids.end());
      std::sort(installed.begin(), installed.end());
      w.Size(installed.size());
      for (FlowId::rep_type rep : installed) w.U64(rep);
      std::vector<std::size_t> recovering;
      recovering.reserve(ae.pending_recovery.size());
      for (const auto& [idx, _] : ae.pending_recovery) {
        recovering.push_back(idx);
      }
      std::sort(recovering.begin(), recovering.end());
      w.Size(recovering.size());
      for (std::size_t idx : recovering) {
        const ActiveEvent::PendingRecovery& pr = ae.pending_recovery.at(idx);
        w.U64(idx);
        w.F64(pr.time);
        w.Bool(pr.srlg);
      }
    }
    std::vector<EventId::rep_type> activated;
    activated.reserve(activation_count.size());
    for (const auto& [rep, _] : activation_count) activated.push_back(rep);
    std::sort(activated.begin(), activated.end());
    w.Size(activated.size());
    for (EventId::rep_type rep : activated) {
      w.U64(rep);
      w.U64(activation_count.at(rep));
    }
    w.U64(parked_count);
    w.U64(completed_count);
    w.U64(shed_count);
    w.U64(quarantined_count);
    const auto entries = timeline.SortedEntries();
    w.Size(entries.size());
    for (const auto& entry : entries) {
      w.F64(entry.time);
      w.U64(entry.seq);
      const Occurrence& occ = entry.payload;
      w.U8(static_cast<std::uint8_t>(occ.kind));
      w.U64(occ.flow.value());
      w.U64(occ.event.value());
      w.U64(occ.fault_index);
      w.Size(occ.flows.size());
      for (FlowId fid : occ.flows) w.U64(fid.value());
      w.U64(occ.generation);
    }
    w.U64(timeline.next_seq());
    w.F64(now);
    w.F64(total_plan_time);
    w.U64(occurrences_since_audit);
    w.Bool(audit_due);
    cascade.SaveState(w);
    // Dynamic (cascade-generated) fault specs: kCascadeFault occurrences in
    // the timeline index into this list, so it must survive recovery.
    w.Size(dynamic_faults.size());
    for (const fault::FaultSpec& spec : dynamic_faults) {
      w.F64(spec.time);
      w.U8(static_cast<std::uint8_t>(spec.kind));
      w.U64(spec.link.value());
      w.U64(spec.node.value());
      w.U64(spec.group);
    }
    // Serve section (format v4): present exactly when serve mode is on —
    // config decides, so a reader with the same SimConfig always agrees.
    if (serve_rt.has_value()) serve_rt->SaveState(w);
    // Shard section (format v5): present exactly when the sharded engine is
    // on. Logical counters only — thread count, busy seconds, and modeled
    // speedups are host measurements and never enter the payload, so
    // snapshot bytes are identical across thread counts. The partition
    // fingerprint pins the shard map the counters were taken under.
    if (shard_rt.has_value()) {
      const metrics::ShardStats& ss = shard_rt->stats();
      w.U64(shard_rt->map().Fingerprint());
      w.U64(static_cast<std::uint64_t>(ss.shards));
      w.U64(ss.probe_fanouts);
      w.U64(ss.probe_tasks);
      w.U64(ss.audit_fanouts);
      w.U64(ss.audit_tasks);
      w.U64(ss.mailbox_messages);
      w.U64(ss.cross_shard_events);
      w.U64(ss.argmin_merges);
      w.U64(ss.recon_fanouts);  // appended in format v6
      w.U64(ss.recon_tasks);
    }
    // Recon section (format v6): present exactly when the grey/recon
    // dataplane model is on — config decides, so reader and writer agree.
    // The armed-tick flag and the pending-grey count are NOT stored: both
    // are recounted from the restored timeline.
    if (dataplane_on) {
      dataplane.SaveState(w);
      reconciler.SaveState(w);
      SaveRngState(w, grey_rng.GetState());
    }
  };

  /// Mirror of serialize_state. Replaces every piece of loop state, so a
  /// partial restore followed by a fallback to an older snapshot is safe.
  /// Unknown ids and out-of-range enum values throw CorruptInput — the
  /// caller treats the snapshot as corrupt and falls back.
  auto restore_state = [&](BinReader& r) {
    auto event_ptr = [&](std::uint64_t rep) -> const update::UpdateEvent* {
      const auto it = event_by_id.find(rep);
      if (it == event_by_id.end()) {
        throw CorruptInput("unknown event id in snapshot");
      }
      return it->second;
    };
    network.LoadState(r);
    rng.SetState(LoadRngState(r));
    churn_rng.SetState(LoadRngState(r));
    injector.SetRngState(LoadRngState(r));
    churn_draws = r.U64();
    if (config_.churn.enabled) {
      // The generator's stream position is restored by replaying its draw
      // count against a freshly seeded instance.
      churn_gen =
        churn_factory_(StreamSeed(config_.seed, RngStream::kChurnGenerator));
      for (std::uint64_t i = 0; i < churn_draws; ++i) (void)churn_gen->Next();
    }
    collector.LoadState(r);
    watchdog.LoadState(r);
    result.rounds = static_cast<std::size_t>(r.U64());
    result.cost_probes = static_cast<std::size_t>(r.U64());
    result.cofeasibility_probes = static_cast<std::size_t>(r.U64());
    result.forced_placements = static_cast<std::size_t>(r.U64());
    probe_rt.stats.probe_cache_hits = static_cast<std::size_t>(r.U64());
    probe_rt.stats.probe_cache_misses = static_cast<std::size_t>(r.U64());
    probe_rt.stats.exec_plan_reuses = static_cast<std::size_t>(r.U64());
    probe_rt.stats.overlay_probes = static_cast<std::size_t>(r.U64());
    probe_rt.stats.legacy_probe_copies = static_cast<std::size_t>(r.U64());
    probe_rt.stats.parallel_probe_batches = static_cast<std::size_t>(r.U64());
    probe_rt.stats.overlay_bytes_saved = r.F64();
    probe_rt.stats.probe_wall_seconds = r.F64();
    next_arrival = static_cast<std::size_t>(r.U64());
    queue.clear();
    const std::size_t queue_size = r.Size();
    for (std::size_t i = 0; i < queue_size; ++i) {
      queue.push_back(event_ptr(r.U64()));
    }
    active.clear();
    active_order.clear();
    const std::size_t active_size = r.Size();
    for (std::size_t i = 0; i < active_size; ++i) {
      const EventId::rep_type id_rep = r.U64();
      ActiveEvent ae;
      ae.event = event_ptr(id_rep);
      ae.installed = static_cast<std::size_t>(r.U64());
      ae.batches_in_flight = static_cast<std::size_t>(r.U64());
      const std::size_t deferred_size = r.Size();
      for (std::size_t j = 0; j < deferred_size; ++j) {
        ae.deferred.push_back(static_cast<std::size_t>(r.U64()));
      }
      ae.retry_failures = static_cast<std::size_t>(r.U64());
      ae.generation = r.U64();
      const std::size_t index_size = r.Size();
      ae.flow_index.reserve(index_size);
      for (std::size_t j = 0; j < index_size; ++j) {
        const FlowId::rep_type rep = r.U64();
        ae.flow_index.emplace(rep, static_cast<std::size_t>(r.U64()));
      }
      const std::size_t installed_size = r.Size();
      ae.installed_ids.reserve(installed_size);
      for (std::size_t j = 0; j < installed_size; ++j) {
        ae.installed_ids.insert(r.U64());
      }
      const std::size_t recovery_size = r.Size();
      ae.pending_recovery.reserve(recovery_size);
      for (std::size_t j = 0; j < recovery_size; ++j) {
        const std::size_t idx = static_cast<std::size_t>(r.U64());
        ActiveEvent::PendingRecovery pr;
        pr.time = r.F64();
        pr.srlg = r.Bool();
        ae.pending_recovery.emplace(idx, pr);
      }
      active_order.push_back(EventId{id_rep});
      active.emplace(id_rep, std::move(ae));
    }
    activation_count.clear();
    const std::size_t activated_size = r.Size();
    activation_count.reserve(activated_size);
    for (std::size_t i = 0; i < activated_size; ++i) {
      const EventId::rep_type rep = r.U64();
      activation_count.emplace(rep, r.U64());
    }
    parked_count = static_cast<std::size_t>(r.U64());
    completed_count = static_cast<std::size_t>(r.U64());
    shed_count = static_cast<std::size_t>(r.U64());
    quarantined_count = static_cast<std::size_t>(r.U64());
    std::vector<TimelineQueue<Occurrence>::Entry> entries;
    const std::size_t entry_count = r.Size();
    entries.reserve(entry_count);
    pending_grey = 0;
    reconcile_armed = false;
    for (std::size_t i = 0; i < entry_count; ++i) {
      TimelineQueue<Occurrence>::Entry entry;
      entry.time = r.F64();
      entry.seq = r.U64();
      const std::uint8_t kind = r.U8();
      if (kind > static_cast<std::uint8_t>(Occurrence::Kind::kReconcile)) {
        throw CorruptInput("bad occurrence kind");
      }
      entry.payload.kind = static_cast<Occurrence::Kind>(kind);
      if (entry.payload.kind == Occurrence::Kind::kGreyApply ||
          entry.payload.kind == Occurrence::Kind::kRuleLoss) {
        ++pending_grey;
      }
      if (entry.payload.kind == Occurrence::Kind::kReconcile) {
        if (reconcile_armed) throw CorruptInput("duplicate reconcile tick");
        reconcile_armed = true;
      }
      entry.payload.flow = FlowId{r.U64()};
      entry.payload.event = EventId{r.U64()};
      entry.payload.fault_index = static_cast<std::size_t>(r.U64());
      const std::size_t flow_count = r.Size();
      entry.payload.flows.reserve(flow_count);
      for (std::size_t j = 0; j < flow_count; ++j) {
        entry.payload.flows.push_back(FlowId{r.U64()});
      }
      entry.payload.generation = r.U64();
      entries.push_back(std::move(entry));
    }
    const std::uint64_t next_seq = r.U64();
    timeline.Restore(std::move(entries), next_seq);
    now = r.F64();
    total_plan_time = r.F64();
    occurrences_since_audit = static_cast<std::size_t>(r.U64());
    audit_due = r.Bool();
    cascade.LoadState(r);
    dynamic_faults.clear();
    const std::size_t dynamic_count = r.Size();
    dynamic_faults.reserve(dynamic_count);
    for (std::size_t i = 0; i < dynamic_count; ++i) {
      fault::FaultSpec spec;
      spec.time = r.F64();
      const std::uint8_t kind = r.U8();
      if (kind > static_cast<std::uint8_t>(fault::FaultKind::kGroupUp)) {
        throw CorruptInput("bad fault kind");
      }
      spec.kind = static_cast<fault::FaultKind>(kind);
      spec.link = LinkId{static_cast<LinkId::rep_type>(r.U64())};
      spec.node = NodeId{static_cast<NodeId::rep_type>(r.U64())};
      spec.group = static_cast<std::size_t>(r.U64());
      dynamic_faults.push_back(spec);
    }
    if (serve_rt.has_value()) serve_rt->LoadState(r);
    if (shard_rt.has_value()) {
      metrics::ShardStats& ss = shard_rt->stats();
      if (r.U64() != shard_rt->map().Fingerprint()) {
        throw CorruptInput("shard map fingerprint mismatch");
      }
      if (r.U64() != static_cast<std::uint64_t>(ss.shards)) {
        throw CorruptInput("shard count mismatch");
      }
      ss.probe_fanouts = r.U64();
      ss.probe_tasks = r.U64();
      ss.audit_fanouts = r.U64();
      ss.audit_tasks = r.U64();
      ss.mailbox_messages = r.U64();
      ss.cross_shard_events = r.U64();
      ss.argmin_merges = r.U64();
      ss.recon_fanouts = r.U64();
      ss.recon_tasks = r.U64();
    }
    if (dataplane_on) {
      dataplane.LoadState(r);
      reconciler.LoadState(r);
      grey_rng.SetState(LoadRngState(r));
    }
  };

  /// Writes the snapshot for `round` and rotates the journal. The snapshot
  /// counter is bumped BEFORE serialization so the payload includes its own
  /// count — a restored run then reports the same total as an uninterrupted
  /// one without re-counting.
  auto take_snapshot = [&](std::uint64_t round) {
    NU_CHECK(replay_pos == replay.size());  // segments end at rotations
    const auto start = ProbeClock::now();
    collector.OnSnapshotTaken();
    BinWriter w;
    serialize_state(w);
    wal.Close();
    snapshot_bytes_written +=
        ckpt::WriteSnapshotFile(ckpt::SnapshotPath(ck.dir, round), w.buffer());
    wal_round = round;
    wal_keep_bytes = 0;
    wal.Open(ckpt::JournalPath(ck.dir, wal_round), 0);
    snapshot_wall_seconds += SecondsSince(start);
  };

  if (ckpt_on && !resume) {
    // Snapshot 0 precedes the first commit (arrivals are committed before
    // the first round), so every journal segment is fully covered by the
    // snapshot that opened it.
    std::filesystem::create_directories(ck.dir);
    take_snapshot(0);
  }
  if (resume) {
    const auto recovery_start = ProbeClock::now();
    const std::vector<std::uint64_t> snapshot_rounds =
        ckpt::ListSnapshotRounds(ck.dir);
    bool restored = false;
    for (const std::uint64_t snap_round : snapshot_rounds) {  // newest first
      const std::filesystem::path snap_path =
          ckpt::SnapshotPath(ck.dir, snap_round);
      try {
        const std::string payload = ckpt::ReadSnapshotFile(snap_path);
        BinReader r(payload);
        restore_state(r);
        r.ExpectEnd();
      } catch (const ckpt::SnapshotCorruption&) {
        ++result.recovery.snapshots_skipped;
        continue;
      } catch (const CorruptInput&) {
        ++result.recovery.snapshots_skipped;
        continue;
      }
      // Journal corruption is NOT a fallback case: an older snapshot would
      // silently skip the verification the journal exists to provide, so
      // JournalCorruption propagates to the caller.
      const ckpt::JournalContents contents =
          ckpt::ReadJournal(ckpt::JournalPath(ck.dir, snap_round));
      replay = contents.records;
      replay_pos = 0;
      wal_round = snap_round;
      wal_keep_bytes = contents.valid_bytes;
      skip_snapshot_once = snap_round > 0;
      result.recovery.recovered = true;
      result.recovery.snapshot_round = snap_round;
      result.recovery.snapshot_bytes = std::filesystem::file_size(snap_path);
      result.recovery.torn_bytes_truncated = contents.torn_bytes;
      restored = true;
      break;
    }
    if (!restored) {
      throw RecoveryError("no loadable snapshot in " + ck.dir + " (" +
                          std::to_string(snapshot_rounds.size()) +
                          " candidates)");
    }
    if (replay.empty()) {
      // Nothing to verify (crash happened right after a snapshot): open the
      // segment for live appends immediately.
      wal.Open(ckpt::JournalPath(ck.dir, wal_round), wal_keep_bytes);
    }
    result.recovery.recovery_wall_seconds = SecondsSince(recovery_start);
  }

  std::size_t loop_guard = 0;
  for (;;) {
    NU_CHECK(++loop_guard < 100'000'000);
    ingest_arrivals();

    // Drained: every event arrived and reached a terminal state. Parked
    // events still owe a requeue attempt. (Churn would keep the timeline
    // busy forever, so do not wait for it to empty.) A run with the
    // reconciler on additionally drains its dataplane drift: it ends only
    // once every non-abandoned divergence is repaired and every in-flight
    // grey apply/eviction has landed — zero unexcused residual, or
    // explicit abandonment/quarantine.
    if (active.empty() && queue.empty() && parked_count == 0 &&
        next_arrival >= pending.size() &&
        (!recon_on ||
         (dataplane.active_count() == 0 && pending_grey == 0))) {
      break;
    }

    if (active.empty() && !queue.empty()) {
      // --- Checkpoint hook (round entry) ---
      if (ckpt_on && result.rounds > 0 && result.rounds % ck.cadence == 0) {
        // The probe cache is cleared at EVERY cadence point — also when the
        // snapshot itself is skipped — so a recovered run (which necessarily
        // restarts with a cold cache) sees the same hit/miss sequence as an
        // uninterrupted one. Decisions never depend on the cache.
        probe_cache.clear();
        if (skip_snapshot_once) {
          skip_snapshot_once = false;
        } else {
          take_snapshot(result.rounds);
        }
      }
      if (crash.armed() && crash.point == fault::CrashPoint::kBeforeRound &&
          result.rounds + 1 == crash.at_round) {
        throw fault::ControllerCrash(crash.at_round, crash.point);
      }
      // --- Scheduling round ---
      std::vector<sched::QueuedEvent> view;
      view.reserve(queue.size());
      for (const update::UpdateEvent* e : queue) {
        view.push_back(sched::QueuedEvent{e});
      }
      sched::QueuePressure pressure{gcfg.overload.max_queue_length,
                                    queue.size(), shed_count};
      if (shard_rt.has_value()) {
        // Sharded admission view: the global pressure is the aggregate of
        // the per-shard sub-queue depths. The aggregate must reproduce the
        // flat queue length exactly — every queued event has exactly one
        // home shard — which the NU_CHECK in the aggregation asserts.
        std::vector<std::size_t> depths(shard_rt->shard_count(), 0);
        for (const update::UpdateEvent* e : queue) {
          ++depths[shard_rt->HomeShard(*e)];
        }
        pressure = guard::AggregateShardPressure(
            depths, gcfg.overload.max_queue_length, shed_count);
        NU_CHECK(pressure.length == queue.size());
      }
      RoundContext context(
          network, planner, costs, view, rng,
          config_.plmtf_co_migration_allowance, config_.quick_cost_probes,
          pressure, probe_rt, probe_cache,
          serve_rt.has_value() ? serve_rt->DegradationLevel() : 0,
          shard_rt.has_value() ? &*shard_rt : nullptr);
      const sched::Decision decision = scheduler.Decide(context);
      NU_CHECK(sched::IsValidDecision(decision, queue.size()));

      total_plan_time += context.plan_time();
      result.cost_probes += context.cost_probes();
      result.cofeasibility_probes += context.cofeasibility_probes();
      now += context.plan_time();

      RoundLogEntry log;
      log.decision_time = now;
      log.plan_time = context.plan_time();

      for (std::size_t index : decision.selected) {
        const update::UpdateEvent* event = queue[index];
        if (!context.WasProbed(index)) {
          // FIFO-style execution without a prior probe still pays for
          // computing the event's update plan.
          const Seconds t = costs.ProbeTime(event->flow_count());
          total_plan_time += t;
          now += t;
        }
        collector.OnExecutionStart(event->id(), now);
        commit(ckpt::WalOp::kExecute, event->id().value(), now);
        // A winner probed this round has a cached plan built against the
        // exact current state — replay it instead of re-planning. Place and
        // Reroute re-validate everything, so a stale plan would abort loudly
        // rather than corrupt state.
        update::ExecutionResult exec;
        ProbeCacheEntry* cached = nullptr;
        if (probe_rt.cache_enabled) {
          const auto it = probe_cache.find(event->id().value());
          if (it != probe_cache.end() &&
              it->second.epoch == network.state_epoch() &&
              it->second.has_plan) {
            cached = &it->second;
          }
        }
        if (cached != nullptr) {
          exec = planner.ExecuteWithPlan(network, *event,
                                         std::move(cached->plan));
          cached->has_plan = false;
          ++probe_rt.stats.exec_plan_reuses;
        } else {
          exec = planner.Execute(network, *event,
                                 /*legacy_migration=*/!probe_rt.fast_path);
        }
        collector.OnCost(event->id(), exec.plan.migrated_traffic);
        commit(ckpt::WalOp::kMigration, event->id().value(),
               exec.plan.migrated_traffic);

        ActiveEvent ae;
        ae.event = event;
        active_order.push_back(event->id());
        const auto [it, inserted] =
            active.emplace(event->id().value(), std::move(ae));
        NU_CHECK(inserted);
        if (lossy) {
          // placed_flows is parallel to the placeable actions, in order.
          std::size_t placed_i = 0;
          for (const update::FlowAction& action : exec.plan.actions) {
            if (!action.placeable) continue;
            it->second.flow_index.emplace(
                exec.placed_flows[placed_i].value(), action.flow_index);
            ++placed_i;
          }
        }
        if (watchdog_on) {
          // Each execution attempt runs under a fresh generation so the
          // watchdog (and any install occurrences it strands) can tell a
          // re-execution from the attempt it aborted.
          it->second.generation = ++activation_count[event->id().value()];
          timeline.Push(
              now + gcfg.deadline.DeadlineFor(event->flow_count()),
              Occurrence{Occurrence::Kind::kWatchdog, FlowId::invalid(),
                         event->id(), 0, {}, it->second.generation});
        }
        if (!exec.placed_flows.empty()) {
          schedule_batch(it->second, event->id(), exec.placed_flows,
                         now + costs.MigrationTime(exec.plan.migrated_traffic),
                         costs.InstallTime(exec.placed_flows.size()));
        }
        for (std::size_t deferred_index : exec.deferred_flows) {
          it->second.deferred.push_back(deferred_index);
          collector.OnDeferredFlow(event->id());
        }
        log.executed.push_back(event->id());

        if (crash.armed() && crash.point == fault::CrashPoint::kMidRound &&
            result.rounds + 1 == crash.at_round) {
          // Die after the round's first event committed its journal
          // records, leaving a deliberately torn record behind — the
          // kill -9-mid-write case the journal framing exists for.
          if (ckpt_on && wal.is_open()) {
            wal.AppendTorn(ckpt::WalRecord{ckpt::WalOp::kMigration,
                                           event->id().value(), -1.0});
          }
          throw fault::ControllerCrash(crash.at_round, crash.point);
        }
      }

      // Remove executed events from the queue (descending index).
      std::vector<std::size_t> sorted_selected = decision.selected;
      std::sort(sorted_selected.rbegin(), sorted_selected.rend());
      for (std::size_t index : sorted_selected) {
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
      }

      ++result.rounds;
      if (config_.keep_round_log) result.round_log.push_back(std::move(log));
      // Round boundaries are brownout observation points: plan time moved
      // the clock, and the queue just drained by the round's selection.
      if (serve_rt.has_value()) {
        serve_rt->Tick(network, now, queue.size(), active.size());
      }
      continue;
    }

    // --- Advance virtual time ---
    const bool have_arrival = next_arrival < pending.size();
    const bool have_occurrence = !timeline.empty();
    // Recon machinery in the timeline (the armed tick, pending grey
    // applies/evictions) never frees capacity, so it must not stop the
    // deadlock breaker below. With the reconciler off both counters are
    // zero and the condition degenerates to the original !have_occurrence.
    const std::size_t recon_entries =
        pending_grey + (reconcile_armed ? 1 : 0);
    if (!have_arrival && timeline.size() <= recon_entries) {
      // Deferred flows with nothing left to free capacity: break the
      // deadlock by force-placing them (reported, not hidden).
      bool any_deferred = false;
      for (EventId id : active_order) {
        ActiveEvent& ae = active.at(id.value());
        while (!ae.deferred.empty()) {
          any_deferred = true;
          const std::size_t flow_idx = ae.deferred.front();
          const flow::Flow& f = ae.event->flows()[flow_idx];
          // Prefer a surviving path; only when the fault state severed the
          // pair entirely does the forced placement fall back to the raw
          // provider (and get reported via forced_placements).
          const bool pair_alive = !provider.Paths(f.src, f.dst).empty();
          const topo::Path& path = net::LeastCongestedPath(
              network, pair_alive ? provider : paths_, f.src, f.dst, f.demand);
          const FlowId placed = network.ForcePlace(f, path);
          if (lossy) ae.flow_index.emplace(placed.value(), flow_idx);
          const FlowId placed_ids[] = {placed};
          schedule_batch(ae, id, placed_ids, now, costs.InstallTime(1));
          ae.deferred.pop_front();
          ++result.forced_placements;
        }
      }
      if (any_deferred) continue;
      // No deferred flows: the drain condition kept us alive for the
      // remaining recon entries — fall through and advance time over
      // them. An empty timeline here means the loop cannot make progress.
      NU_CHECK(have_occurrence);
    }

    Seconds next_time = std::numeric_limits<double>::infinity();
    if (have_arrival) {
      next_time = std::min(next_time, pending[next_arrival]->arrival_time());
    }
    if (have_occurrence) next_time = std::min(next_time, timeline.NextTime());
    now = std::max(now, next_time);

    bool departed = false;
    while (!timeline.empty() && timeline.NextTime() <= now + kTimeEpsilon) {
      const auto entry = timeline.Pop();
      const Occurrence& occ = entry.payload;
      ++occurrences_since_audit;
      if (occ.kind == Occurrence::Kind::kDeparture) {
        // A flow killed by a fault (or rolled back by the watchdog) has no
        // bandwidth left to release; its stale departure is a no-op (flow
        // ids are never reused).
        if (lossy && !network.HasFlow(occ.flow)) continue;
        network.Remove(occ.flow);
        if (dataplane_on) dataplane.DropFlow(occ.flow);
        departed = true;
        continue;
      }
      if (occ.kind == Occurrence::Kind::kBackgroundDeparture) {
        // Killed background flows are not replaced: the churn process only
        // replaces flows that ended naturally.
        if (faults_on && !network.HasFlow(occ.flow)) continue;
        network.Remove(occ.flow);
        spawn_background_replacement();
        departed = true;
        continue;
      }
      if (occ.kind == Occurrence::Kind::kWatchdog) {
        // Fires once per execution attempt. Stale when the watched
        // activation already completed, was aborted, or was superseded.
        const auto it = active.find(occ.event.value());
        if (it == active.end() || it->second.generation != occ.generation) {
          continue;
        }
        ActiveEvent& ae = it->second;
        collector.OnDeadlineMiss(occ.event);
        // Abort + roll back the whole attempt: every placement of this
        // activation is removed, returning its bandwidth. In-flight install
        // occurrences and departures become stale (generation mismatch /
        // missing flows) and are skipped when they fire. Removal runs in
        // ascending flow-id order: Remove() reshuffles per-link flow lists,
        // whose order is serialized state, and unordered_map iteration
        // order would differ between a live map and a restored one.
        std::vector<FlowId::rep_type> rollback;
        rollback.reserve(ae.flow_index.size());
        for (const auto& [fid_rep, _] : ae.flow_index) {
          rollback.push_back(fid_rep);
        }
        std::sort(rollback.begin(), rollback.end());
        for (FlowId::rep_type fid_rep : rollback) {
          const FlowId fid{fid_rep};
          if (network.HasFlow(fid)) network.Remove(fid);
          if (dataplane_on) dataplane.DropFlow(fid);
        }
        active.erase(it);
        active_order.erase(std::find(active_order.begin(),
                                     active_order.end(), occ.event));
        if (watchdog.RecordMiss(occ.event)) {
          // Poison: out of failure budget — quarantine instead of another
          // round of livelock.
          collector.OnQuarantined(occ.event, entry.time);
          if (serve_rt.has_value()) {
            serve_rt->OnQuarantined(*event_by_id.at(occ.event.value()));
          }
          commit(ckpt::WalOp::kQuarantine, occ.event.value(), entry.time);
          ++quarantined_count;
        } else {
          timeline.Push(entry.time + watchdog.RequeueDelay(occ.event),
                        Occurrence{Occurrence::Kind::kRequeue,
                                   FlowId::invalid(), occ.event, 0, {}});
          ++parked_count;
        }
        departed = true;  // the rollback freed capacity
        continue;
      }
      if (occ.kind == Occurrence::Kind::kRequeue) {
        // Backoff elapsed: the aborted event re-enters through admission
        // control (a full queue may shed it — then it terminates kAborted).
        --parked_count;
        if (admit(event_by_id.at(occ.event.value()))) {
          collector.OnRequeued(occ.event);
          commit(ckpt::WalOp::kRequeue, occ.event.value(), entry.time);
        }
        continue;
      }
      if (occ.kind == Occurrence::Kind::kGreyApply) {
        // A straggling (or repair-re-issued) rule finally lands. Stale if
        // the flow departed or the divergence was pruned meanwhile.
        NU_CHECK(pending_grey > 0);
        --pending_grey;
        const NodeId node{static_cast<NodeId::rep_type>(occ.fault_index)};
        if (const net::DivergentRule* rule = dataplane.Find(node, occ.flow)) {
          recon::ReconStats& rs = reconciler.stats();
          ++rs.rules_verified;
          if (rule->detected) {
            // The reconciler had seen this drift, so the landing closes a
            // repair and counts toward recovery latency.
            ++rs.repairs_succeeded;
            rs.repair_latency.Add(entry.time - rule->since);
          }
          dataplane.Resolve(node, occ.flow);
        }
        continue;
      }
      if (occ.kind == Occurrence::Kind::kRuleLoss) {
        // A switch silently evicts a rule it had applied. Only meaningful
        // while the flow still routes through the (alive) switch and the
        // rule is not already divergent for another reason.
        NU_CHECK(pending_grey > 0);
        --pending_grey;
        const NodeId node{static_cast<NodeId::rep_type>(occ.fault_index)};
        if (network.HasFlow(occ.flow) && network.NodeUp(node) &&
            !dataplane.IsDivergent(node, occ.flow)) {
          const topo::Path& path = network.PathOf(occ.flow);
          if (std::find(path.nodes.begin(), path.nodes.end(), node) !=
              path.nodes.end()) {
            dataplane.AddDivergence(node, occ.flow, net::RuleFault::kRuleLoss,
                                    entry.time);
            ++reconciler.stats().rules_lost;
            arm_reconcile(entry.time);
          }
        }
        continue;
      }
      if (occ.kind == Occurrence::Kind::kReconcile) {
        NU_CHECK(reconcile_armed);
        reconcile_armed = false;
        run_reconcile(entry.time);
        continue;
      }
      if (occ.kind == Occurrence::Kind::kFault ||
          occ.kind == Occurrence::Kind::kCascadeFault) {
        const bool is_cascade = occ.kind == Occurrence::Kind::kCascadeFault;
        const fault::FaultSpec& spec =
            is_cascade ? dynamic_faults[occ.fault_index]
                       : config_.faults.plan.specs()[occ.fault_index];
        const std::vector<FlowId> victims =
            fault::AffectedFlows(network, spec, srlg_groups);
        fault::ApplyFaultState(network, spec, srlg_groups);
        // Cascade faults share the kFault WAL op; their subject indices are
        // offset past the static plan so replay can tell the streams apart.
        commit(ckpt::WalOp::kFault,
               is_cascade ? plan_spec_count + occ.fault_index : occ.fault_index,
               entry.time);
        if (spec.IsDown() && !is_cascade) {
          // Cascade failures were counted when the engine fired them; a
          // primary incident (re)starts a cascade episode at depth 1.
          if (spec.IsGroupFault()) {
            collector.OnGroupFault();
          } else {
            collector.OnFault(spec.IsLinkFault());
          }
          cascade.OnPrimaryFault();
        }
        std::unordered_set<EventId::rep_type> replanned;
        for (FlowId victim : victims) {
          const EventId owner = network.FlowOf(victim).event;
          network.Remove(victim);
          if (dataplane_on) dataplane.DropFlow(victim);
          collector.OnFlowKilled();
          if (!owner.valid()) continue;  // background: killed outright
          const auto owner_it = active.find(owner.value());
          if (owner_it == active.end()) continue;  // event already complete
          // In-flight event flow: roll it back to deferred so the planner
          // re-places it on surviving paths.
          ActiveEvent& ae = owner_it->second;
          const auto idx_it = ae.flow_index.find(victim.value());
          NU_CHECK(idx_it != ae.flow_index.end());
          const std::size_t flow_idx = idx_it->second;
          ae.flow_index.erase(idx_it);
          if (ae.installed_ids.erase(victim.value()) > 0) {
            NU_CHECK(ae.installed > 0);
            --ae.installed;  // un-install: completion now needs the redo
          }
          ae.pending_recovery.emplace(
              flow_idx,
              ActiveEvent::PendingRecovery{entry.time, spec.IsGroupFault()});
          ae.deferred.push_back(flow_idx);
          if (replanned.insert(owner.value()).second) {
            collector.OnEventReplanned(owner);
          }
        }
        // Up-events restore capacity; down-events free the victims' shares
        // elsewhere on their old paths. Either way deferred flows may fit
        // now, so treat the fault like a departure.
        departed = true;
        audit_due = true;  // faults always trigger an audit pass
        continue;
      }
      if (occ.kind == Occurrence::Kind::kInstallAborted) {
        // Retries exhausted: roll the batch back (remove its placements)
        // and re-defer the flows for replanning.
        const auto it = active.find(occ.event.value());
        // A fault can kill every flow of an in-flight batch; replacements
        // may then complete the event before this occurrence fires. Such a
        // stale batch holds only dead flows — nothing to roll back. The
        // watchdog strands batches the same way (abort or quarantine).
        if (it == active.end()) {
          NU_CHECK(lossy);
          continue;
        }
        ActiveEvent& ae = it->second;
        if (ae.generation != occ.generation) {
          // Batch of a watchdog-aborted activation; its placements were
          // rolled back with the abort.
          NU_CHECK(watchdog_on);
          continue;
        }
        NU_CHECK(ae.batches_in_flight > 0);
        --ae.batches_in_flight;
        collector.OnInstallAborted(occ.event);
        for (FlowId fid : occ.flows) {
          if (!network.HasFlow(fid)) continue;  // a fault beat us to it
          const auto idx_it = ae.flow_index.find(fid.value());
          NU_CHECK(idx_it != ae.flow_index.end());
          const std::size_t flow_idx = idx_it->second;
          network.Remove(fid);
          ae.flow_index.erase(idx_it);
          ae.pending_recovery.emplace(
              flow_idx, ActiveEvent::PendingRecovery{entry.time, false});
          ae.deferred.push_back(flow_idx);
        }
        departed = true;  // freed capacity: worth retrying deferred flows
        continue;
      }
      // kInstallDone: the event's batch finished installing.
      const auto it = active.find(occ.event.value());
      // Stale batch of an already-terminated event (see kInstallAborted).
      if (it == active.end()) {
        NU_CHECK(lossy);
        continue;
      }
      ActiveEvent& ae = it->second;
      if (ae.generation != occ.generation) {
        NU_CHECK(watchdog_on);  // batch of a watchdog-aborted activation
        continue;
      }
      NU_CHECK(ae.batches_in_flight > 0);
      --ae.batches_in_flight;
      if (lossy) {
        for (FlowId fid : occ.flows) {
          if (!network.HasFlow(fid)) continue;  // killed mid-install
          ++ae.installed;
          ae.installed_ids.insert(fid.value());
          const auto idx_it = ae.flow_index.find(fid.value());
          NU_CHECK(idx_it != ae.flow_index.end());
          const auto rec = ae.pending_recovery.find(idx_it->second);
          if (rec != ae.pending_recovery.end()) {
            collector.OnRecovery(entry.time - rec->second.time,
                                 rec->second.srlg);
            ae.pending_recovery.erase(rec);
          }
        }
      } else {
        ae.installed += occ.flows.size();
      }
      // Freshly installed flows issue their dataplane rules through the
      // grey pipeline (no-op when the dataplane model is off). Install
      // COMPLETION is the controller's view — the switches ack every rule
      // — so grey divergence never delays the event; it surfaces as drift
      // the reconciler must repair.
      issue_rules(occ.flows, entry.time);
      if (ae.Complete()) {
        collector.OnCompletion(occ.event, entry.time);
        if (serve_rt.has_value()) {
          serve_rt->OnCompletion(*ae.event, entry.time);
        }
        commit(ckpt::WalOp::kComplete, occ.event.value(), entry.time);
        ++completed_count;
        active.erase(it);
        active_order.erase(std::find(active_order.begin(),
                                     active_order.end(), occ.event));
      }
    }
    if (departed) retry_deferred();
    if (config_.faults.cascade.enabled()) {
      // Sustained overload observed now becomes a secondary failure: the
      // tripped link goes down as a dynamic fault (and comes back after the
      // configured outage). Both specs are recorded so snapshots and the
      // kCascadeFault occurrences referencing them survive recovery.
      for (const fault::CascadeEvent& ce : cascade.Observe(network, now)) {
        collector.OnCascadeFailure(ce.depth);
        fault::FaultSpec down;
        down.time = now;
        down.kind = fault::FaultKind::kLinkDown;
        down.link = ce.link;
        timeline.Push(now, Occurrence{Occurrence::Kind::kCascadeFault,
                                      FlowId::invalid(), EventId::invalid(),
                                      dynamic_faults.size(), {}});
        dynamic_faults.push_back(down);
        if (config_.faults.cascade.outage > 0.0) {
          fault::FaultSpec up;
          up.time = now + config_.faults.cascade.outage;
          up.kind = fault::FaultKind::kLinkUp;
          up.link = ce.link;
          timeline.Push(up.time,
                        Occurrence{Occurrence::Kind::kCascadeFault,
                                   FlowId::invalid(), EventId::invalid(),
                                   dynamic_faults.size(), {}});
          dynamic_faults.push_back(up);
        }
      }
    }
    if (serve_rt.has_value()) {
      // Occurrence batches are the other brownout observation points: the
      // drain just moved the clock and may have completed events, fired
      // faults, or stressed links.
      serve_rt->Tick(network, now, queue.size(), active.size());
    }
    if (config_.validate_invariants) {
      NU_CHECK(network.CheckInvariants() || result.forced_placements > 0);
    }
    // Degradation ladder level 2+: optional cadence audits are suppressed
    // to shed audit work under overload; fault-triggered (audit_due) and
    // final audits always run.
    const bool suppress_cadence_audit =
        serve_rt.has_value() && serve_rt->SuppressOptionalAudits();
    if (audit_on &&
        (audit_due || (occurrences_since_audit >= gcfg.auditor.cadence &&
                       !suppress_cadence_audit))) {
      run_audit();
      occurrences_since_audit = 0;
      audit_due = false;
    }
  }

  // Final audit: acceptance is "zero violations at end of run", so the last
  // pass always runs regardless of where the cadence counter stands (and
  // regardless of brownout audit suppression).
  if (audit_on) run_audit();

  if (serve_rt.has_value()) {
    serve_rt->Finish(now, queue.size(), active.size());
    result.serve = serve_rt->BuildSummary();
    result.serve_timeseries_csv = serve_rt->TimeseriesCsv();
    result.serve_tenant_csv = serve_rt->TenantReportCsv();
  }

  NU_CHECK(collector.AllTerminal());
  NU_CHECK(!config_.validate_invariants || network.CheckInvariants() ||
           result.forced_placements > 0);
  // A finished run that still holds unverified journal records re-executed
  // FEWER operations than the crashed run committed — divergence.
  if (replay_pos < replay.size()) {
    throw RecoveryError("run finished with " +
                        std::to_string(replay.size() - replay_pos) +
                        " journal records left unverified; next is " +
                        replay[replay_pos].DebugString());
  }
  wal.Close();

  result.records = collector.records();
  result.fault_stats = collector.fault_stats();
  result.guard_stats = collector.guard_stats();
  result.violations = auditor.violations();
  collector.OnProbeStats(probe_rt.stats);
  result.probe_stats = collector.probe_stats();
  if (shard_rt.has_value()) result.shard_stats = shard_rt->stats();
  result.report = metrics::BuildReport(collector, total_plan_time,
                                       config_.tail_percentile);
  result.report.ckpt_recoveries = result.recovery.recovered ? 1 : 0;
  result.report.ckpt_wal_replayed =
      static_cast<std::size_t>(result.recovery.wal_records_replayed);
  result.report.ckpt_snapshot_bytes =
      static_cast<double>(snapshot_bytes_written);
  result.report.ckpt_snapshot_wall_seconds = snapshot_wall_seconds;
  result.report.ckpt_recovery_wall_seconds =
      result.recovery.recovery_wall_seconds;
  if (dataplane_on) {
    recon::ReconStats& rs = reconciler.stats();
    rs.residual_divergence = dataplane.total_count();
    result.recon_stats = rs;
    metrics::Report& rep = result.report;
    rep.drift_checks = rs.passes;
    rep.drift_rules_detected = rs.drift_detected;
    rep.grey_ack_lies = rs.ack_lies;
    rep.grey_stragglers = rs.stragglers;
    rep.grey_rules_lost = rs.rules_lost;
    rep.drift_repairs = rs.repairs_succeeded;
    rep.drift_repair_failures = rs.repair_failures;
    rep.drift_rules_abandoned = rs.rules_abandoned;
    rep.switches_degraded = rs.switches_degraded;
    rep.switches_quarantined = rs.switches_quarantined;
    rep.drift_residual_rules = rs.residual_divergence;
    rep.drift_repair_mean = rs.repair_latency.mean();
    rep.drift_repair_p99 = rs.repair_latency.Percentile(0.99);
  }
  return result;
}

SimResult Simulator::RunFlowLevel(
    std::span<const update::UpdateEvent> events) {
  net::Network network = initial_;
  const update::EventPlanner planner(paths_, config_.migration_options,
                                     config_.path_selection);
  const CostModel& costs = config_.cost_model;
  metrics::Collector collector;
  SimResult result;

  const auto pending = SortedByArrival(events);
  std::size_t next_arrival = 0;

  // Per-event dispatch state, in arrival order.
  struct EvState {
    const update::UpdateEvent* event = nullptr;
    std::size_t dispatched = 0;
    Seconds last_install_end = 0.0;
    bool started = false;
    std::size_t retry_failures = 0;
  };
  std::vector<EvState> arrived;

  struct FlowEnd {
    FlowId flow;
    bool background = false;
  };
  TimelineQueue<FlowEnd> departures;
  Seconds now = 0.0;
  Seconds total_plan_time = 0.0;
  std::size_t cursor = 0;  // round-robin over arrived events

  // Background churn (see Run for the model).
  std::unique_ptr<trace::TrafficGenerator> churn_gen;
  Rng churn_rng(StreamSeed(config_.seed, RngStream::kChurnTimers));
  if (config_.churn.enabled) {
    NU_CHECK(churn_factory_ != nullptr);
    churn_gen =
        churn_factory_(StreamSeed(config_.seed, RngStream::kChurnGenerator));
    for (FlowId fid : network.PlacedFlows()) {
      const flow::Flow& f = network.FlowOf(fid);
      if (f.origin != flow::FlowOrigin::kBackground) continue;
      departures.Push(churn_rng.Uniform01() * f.duration, FlowEnd{fid, true});
    }
  }

  auto spawn_background_replacement = [&] {
    for (std::size_t attempt = 0;
         attempt < config_.churn.replacement_attempts; ++attempt) {
      const trace::FlowSpec spec = churn_gen->Next();
      const auto path = trace::FindRandomPathWithHeadroom(
          network, paths_, spec.src, spec.dst, spec.demand,
          config_.churn.placement, churn_rng);
      if (!path.has_value()) continue;
      flow::Flow f;
      f.src = spec.src;
      f.dst = spec.dst;
      f.demand = spec.demand;
      f.duration = spec.duration;
      f.origin = flow::FlowOrigin::kBackground;
      const FlowId placed = network.Place(std::move(f), *path);
      departures.Push(now + spec.duration, FlowEnd{placed, true});
      return;
    }
  };

  auto ingest_arrivals = [&] {
    while (next_arrival < pending.size() &&
           pending[next_arrival]->arrival_time() <= now + kTimeEpsilon) {
      const update::UpdateEvent* e = pending[next_arrival];
      arrived.push_back(EvState{e});
      collector.OnArrival(e->id(), e->arrival_time(), e->flow_count());
      ++next_arrival;
    }
  };

  // Next event with an undispatched flow under round-robin interleaving, or
  // nullptr when everything arrived so far is fully dispatched.
  auto next_item = [&]() -> EvState* {
    for (std::size_t step = 0; step < arrived.size(); ++step) {
      EvState& state = arrived[(cursor + step) % arrived.size()];
      if (state.dispatched < state.event->flow_count()) {
        cursor = (cursor + step) % arrived.size();
        return &state;
      }
    }
    return nullptr;
  };

  auto process_departures_until = [&](Seconds t) {
    while (!departures.empty() && departures.NextTime() <= t + kTimeEpsilon) {
      const FlowEnd end = departures.Pop().payload;
      network.Remove(end.flow);
      if (end.background) spawn_background_replacement();
    }
  };

  // Installs one flow of `state` at the current time. Migration and rule
  // installation occupy the update pipeline serially (advancing `now`), so
  // one flow's update finishes before the next is dispatched. Records
  // completion when it was the event's last flow.
  auto install = [&](EvState& state, FlowId placed, Mbps migrated) {
    if (!state.started) {
      state.started = true;
      collector.OnExecutionStart(state.event->id(), now);
    }
    collector.OnCost(state.event->id(), migrated);
    now += costs.MigrationTime(migrated) + costs.InstallTime(1);
    state.last_install_end = std::max(state.last_install_end, now);
    departures.Push(now + network.FlowOf(placed).duration,
                    FlowEnd{placed, false});
    ++state.dispatched;
    if (state.dispatched == state.event->flow_count()) {
      collector.OnCompletion(state.event->id(), state.last_install_end);
    }
    cursor = (cursor + 1) % arrived.size();
  };

  std::size_t guard = 0;
  for (;;) {
    NU_CHECK(++guard < 100'000'000);
    ingest_arrivals();

    EvState* item = next_item();
    if (item == nullptr) {
      if (next_arrival >= pending.size()) break;  // all flows dispatched
      now = std::max(now, pending[next_arrival]->arrival_time());
      process_departures_until(now);
      continue;
    }

    // Dispatch one flow: planning this flow costs plan time. Migration and
    // installation then occupy the update pipeline serially (inside
    // `install`), exactly as they do within an event-level round — the
    // flow-level baseline differs only in its event-blind ordering.
    // Blocked retries use the cheap admission check; full migration planning
    // runs every kMigrationRetryPeriod-th failure (as in the event-level
    // retry path).
    const flow::Flow& f = item->event->flows()[item->dispatched];
    now += costs.plan_time_per_flow;
    total_plan_time += costs.plan_time_per_flow;
    process_departures_until(now);

    Mbps migrated = 0.0;
    std::optional<FlowId> placed;
    if (item->retry_failures == 0 ||
        item->retry_failures % kMigrationRetryPeriod == 0) {
      placed = planner.PlaceFlow(network, f, &migrated);
    } else if (const topo::Path* direct = net::FindFeasiblePathPtr(
                   network, paths_, f.src, f.dst, f.demand,
                   config_.path_selection)) {
      placed = network.Place(f, *direct);
    }
    if (placed.has_value()) {
      item->retry_failures = 0;
      install(*item, *placed, migrated);
      continue;
    }
    ++item->retry_failures;

    // Head-of-line blocking: the flow fits nowhere even with migration.
    // Wait for the next departure (or arrival) and retry the same flow.
    if (!departures.empty()) {
      now = std::max(now, departures.NextTime());
      process_departures_until(now);
      continue;
    }
    if (next_arrival < pending.size()) {
      now = std::max(now, pending[next_arrival]->arrival_time());
      continue;
    }
    // Nothing will ever free capacity: force-place (reported).
    const topo::Path& path =
        net::LeastCongestedPath(network, paths_, f.src, f.dst, f.demand);
    const FlowId forced = network.ForcePlace(f, path);
    ++result.forced_placements;
    install(*item, forced, 0.0);
  }

  NU_CHECK(collector.AllComplete());
  result.records = collector.records();
  result.report = metrics::BuildReport(collector, total_plan_time,
                                       config_.tail_percentile);
  return result;
}

}  // namespace nu::sim
