// Deterministic inter-shard mailbox. Worker tasks evaluating one shard's
// slice of a round post their results here in whatever real-time order the
// OS schedules them; the coordinator drains the round and receives the
// messages in the canonical (round, source shard id, sequence) order, so
// downstream bookkeeping never observes thread interleaving. This is the
// same trick that keeps parallel candidate probing bit-identical to
// sequential probing (docs/model.md §9): workers produce pure values, and
// one thread consumes them in a total order fixed by the program, not the
// scheduler.
//
// Protocol:
//   * BeginRound(r) opens round r (rounds strictly increase).
//   * Any thread may Post() messages stamped with the open round; each
//     source shard stamps its own 0-based sequence counter (the post order
//     WITHIN one shard task is meaningful; order ACROSS shards is not).
//   * DrainRound(r) closes the round: it asserts every queued message
//     belongs to r and returns them sorted by (shard, seq). Posting into a
//     closed round aborts — the round barrier exists precisely so no task
//     can straggle across it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/check.h"

namespace nu::sim {

template <typename Payload>
class ShardMailbox {
 public:
  struct Message {
    std::uint64_t round = 0;
    std::size_t shard = 0;
    std::uint64_t seq = 0;
    Payload payload;
  };

  /// Opens `round` for posting. Rounds must strictly increase and the
  /// previous round must have been drained.
  void BeginRound(std::uint64_t round) {
    const std::lock_guard<std::mutex> lock(mutex_);
    NU_CHECK(!open_);
    NU_CHECK(messages_.empty());
    NU_CHECK(round > current_round_ || (round == 0 && !ever_opened_));
    current_round_ = round;
    open_ = true;
    ever_opened_ = true;
  }

  /// Posts one message from `shard` into the open round. Thread-safe; the
  /// per-shard sequence number is the caller's post order for that shard.
  void Post(std::size_t shard, std::uint64_t seq, Payload payload) {
    const std::lock_guard<std::mutex> lock(mutex_);
    NU_CHECK(open_);
    messages_.push_back(
        Message{current_round_, shard, seq, std::move(payload)});
    ++total_posted_;
  }

  /// Closes `round` and returns its messages in (shard, seq) order,
  /// regardless of the real-time order they arrived in. Every queued
  /// message must carry `round` — a message from any other round means a
  /// task leaked across the barrier, which is a bug, not a condition.
  [[nodiscard]] std::vector<Message> DrainRound(std::uint64_t round) {
    std::vector<Message> drained;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      NU_CHECK(open_);
      NU_CHECK(current_round_ == round);
      drained.swap(messages_);
      open_ = false;
    }
    for (const Message& m : drained) NU_CHECK(m.round == round);
    std::stable_sort(drained.begin(), drained.end(),
                     [](const Message& a, const Message& b) {
                       return a.shard != b.shard ? a.shard < b.shard
                                                 : a.seq < b.seq;
                     });
    return drained;
  }

  /// Messages posted over the mailbox's lifetime (a logical counter:
  /// independent of thread count and scheduling).
  [[nodiscard]] std::uint64_t total_posted() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_posted_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Message> messages_;
  std::uint64_t current_round_ = 0;
  bool open_ = false;
  bool ever_opened_ = false;
  std::uint64_t total_posted_ = 0;
};

}  // namespace nu::sim
