#include "sim/shard_runtime.h"

namespace nu::sim {

ShardRuntime::ShardRuntime(const topo::Graph& graph, std::size_t shards,
                           std::size_t threads)
    : map_(graph, shards),
      pool_(std::make_unique<ThreadPool>(threads == 0 ? 1 : threads)) {
  stats_.enabled = true;
  stats_.shards = map_.shard_count();
  stats_.threads = pool_->worker_count();
  stats_.per_shard_busy_seconds.assign(map_.shard_count(), 0.0);
  audit_rt_.pool = pool_.get();
  audit_rt_.shards = map_.shard_count();
  // Audit fan-outs count parallel regions (two for capacity, one for
  // coherence per pass); the busy/wall samples feed the modeled
  // critical-path accumulators.
  audit_rt_.on_fanout = [this](std::span<const double> busy, double wall) {
    ++stats_.audit_fanouts;
    stats_.audit_tasks += busy.size();
    stats_.OnFanout(busy, wall);
  };
}

}  // namespace nu::sim
