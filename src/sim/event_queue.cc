// TimelineQueue is a header-only template; this TU anchors the target.
#include "sim/event_queue.h"
