// The discrete-event simulator that runs a queue of update events through an
// inter-event scheduler (event-level mode) or through the per-flow baseline
// (flow-level mode) and measures the paper's five metrics.
//
// Semantics (event-level):
//   * Update events enter the queue at their arrival times.
//   * When no round is active and the queue is non-empty, the scheduler is
//     consulted; its probes are charged to virtual time via the CostModel.
//   * The selected events execute together as one round: each is planned and
//     committed (migrations applied, flows placed). An event COMPLETES when
//     its update is fully installed — migration delay plus per-flow install
//     time after its execution starts. This matches the paper's model
//     (Fig. 3 expresses both execution time and update cost in seconds of
//     update work); flow transmission is not part of the ECT.
//   * Installed flows transmit in the background: each occupies its
//     bandwidth until install-time + duration, then departs, freeing
//     capacity for later rounds. Flows that fit nowhere even with migration
//     are deferred and retried on departures — the event (and with it the
//     round) blocks until they install, which is exactly the head-of-line
//     blocking the paper's schedulers attack.
//   * The next round starts once every event of the current round completes
//     — sequential rounds, as in the paper; P-LMTF gets parallelism by
//     selecting multiple events per round.
//   * Background traffic churns when configured (ChurnConfig): background
//     flows end after their durations and fresh draws replace them, keeping
//     update costs in flux (Section III-C). Without churn, background is
//     static (the paper's Fig. 7 setting) and only event flows depart.
//
// Flow-level mode interleaves the flows of all queued events round-robin and
// dispatches them one at a time, blocking on the queue head when a flow fits
// nowhere — the event-blind baseline of Figs. 2/4/5.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/checkpoint.h"
#include "fault/fault_plan.h"
#include "guard/guard.h"
#include "metrics/report.h"
#include "metrics/shard_stats.h"
#include "net/network.h"
#include "recon/reconciler.h"
#include "sched/flow_level.h"
#include "sched/scheduler.h"
#include "serve/runtime.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "trace/background.h"
#include "update/planner.h"

namespace nu::sim {

/// Thrown by Simulator::Resume when recovery cannot proceed: no snapshot in
/// the checkpoint directory validates, or deterministic re-execution
/// produced an operation that differs bitwise from the journaled one.
class RecoveryError : public std::runtime_error {
 public:
  explicit RecoveryError(const std::string& what)
      : std::runtime_error("recovery error: " + what) {}
};

/// Background-traffic churn: existing background flows end after their
/// durations and are replaced by fresh draws, so "the update queue is in
/// flux due to the changed network traffic" (Section III-C) — the dynamics
/// LMTF's per-round cost re-probing exploits. Disable to reproduce the
/// static-background setting of the paper's Fig. 7.
struct ChurnConfig {
  bool enabled = false;
  /// Placement constraints for replacement flows (same per-tier headroom as
  /// the initial injection keeps utilization stationary).
  trace::BackgroundOptions placement;
  /// Replacement draws attempted per departure before giving up.
  std::size_t replacement_attempts = 3;
};

struct SimConfig {
  CostModel cost_model;
  /// Tail percentile for the report (1.0 = max).
  double tail_percentile = 1.0;
  update::MigrationOptions migration_options;
  net::PathSelection path_selection = net::PathSelection::kWidest;
  /// RNG seed for scheduler sampling and churn.
  std::uint64_t seed = 1;
  /// Record a per-round log (who executed when) for examples/debugging.
  bool keep_round_log = false;
  /// Re-verify the network's congestion-free invariant (full recompute)
  /// after every occurrence batch. O(flows x diameter) per check — for
  /// tests and debugging, not for benches.
  bool validate_invariants = false;
  /// Cost probes use update::QuickCostScore (per-flow deficit estimates,
  /// ~10x cheaper) instead of full event planning. The executed event is
  /// then planned for real at execution time. Trades probe fidelity for
  /// plan time — see bench_ablation_quickprobe.
  bool quick_cost_probes = false;
  /// Probe fast path: what-if probes (cost sampling, co-feasibility) run on
  /// copy-on-write overlays (net::NetworkOverlay) instead of deep network
  /// copies. Decision-identical to the deep-copy baseline by construction
  /// (see docs/model.md §9); off = the legacy baseline, kept for
  /// differential tests and bench_probe_scaling.
  bool probe_fast_path = true;
  /// Epoch-keyed probe-cost cache: a re-probe of an event under an
  /// unchanged network state epoch returns the cached cost, and executing a
  /// probed winner replays the cached plan instead of re-planning. Only
  /// wall-clock changes — modeled plan time, probe counters, and decisions
  /// are identical either way. Effective only with probe_fast_path.
  bool probe_cost_cache = true;
  /// Worker threads for evaluating a round's sampled candidates
  /// concurrently (0 or 1 = sequential). Decisions are bit-identical to
  /// sequential probing: workers only run pure what-if plans; all
  /// accounting happens on the simulation thread in candidate order.
  /// Effective only with probe_fast_path and full (non-quick) probes.
  std::size_t probe_parallelism = 0;
  /// Pod-sharded parallel engine (docs/model.md §15): partition the fabric
  /// into this many shards (a k-ary Fat-Tree is naturally k pods) and fan
  /// the per-round candidate probes and the auditor's recompute passes out
  /// across them on a worker pool, with results routed back through a
  /// deterministic inter-shard mailbox. 0 or 1 = off. The coordinator
  /// remains the single decision/mutation authority, so a sharded run is
  /// bit-identical to an unsharded one — same decisions, same records, same
  /// report — at any thread count. Effective only with probe_fast_path and
  /// full (non-quick) probes; takes precedence over probe_parallelism.
  std::size_t shards = 0;
  /// Worker threads for the sharded engine; 0 = min(shards, 8).
  std::size_t shard_threads = 0;
  /// P-LMTF co-scheduling admits only candidates whose current plan
  /// migrates at most this much traffic (Mbps). Opportunistic updates are
  /// meant to be near-free wins — co-scheduling an expensive event would
  /// pay migration cost that waiting (and traffic churn) might avoid. Set
  /// to infinity to co-schedule any fully feasible candidate.
  Mbps plmtf_co_migration_allowance = 100.0;
  ChurnConfig churn;
  /// Fault injection (event-level Run only): scheduled link/switch outages
  /// plus the flaky-install model and its retry policy. Disabled by default;
  /// a disabled config draws nothing from any Rng, so enabling faults never
  /// perturbs the scheduler or churn streams of a fixed-seed run.
  ///
  /// Semantics when enabled:
  ///   * Planning and placement use only alive paths (dead links/switches
  ///     are excluded; path caches refresh on every topology transition).
  ///   * A down-fault removes every placed flow crossing the dead element.
  ///     Victims of an ACTIVE update event are re-deferred and re-planned on
  ///     surviving paths (counted as a replan; the event completes only once
  ///     replacements install). Background victims and victims of already
  ///     completed events are killed outright.
  ///   * Each install batch runs through the flaky pipeline: attempts fail
  ///     with FlakyInstallModel::failure_probability and retry after
  ///     exponential backoff. Exhausted retries abort the batch — its placed
  ///     flows are rolled back (removed) and re-deferred for replanning.
  fault::FaultConfig faults;
  /// Overload guard & runtime invariant auditor (event-level Run only).
  /// Disabled by default; enabling it never perturbs the RNG streams of a
  /// fixed-seed run (the guard draws nothing from any Rng).
  ///
  /// Semantics when enabled:
  ///   * Overload control: the update queue is bounded; an arrival at a
  ///     full queue triggers the configured shed policy (reject-new /
  ///     shed-oldest / shed-costliest). Shed events terminate with status
  ///     kShed (kAborted if they had already executed once) and are
  ///     reported, never silently dropped.
  ///   * Deadlines & watchdog: each execution attempt gets a soft deadline
  ///     (base + per-flow budget). Overrunning it aborts the attempt — all
  ///     of the event's placements are rolled back, freeing capacity — and
  ///     requeues the event after an escalating backoff. After
  ///     max_failures misses the event is poison and moves to quarantine
  ///     (terminal status kQuarantined) instead of livelocking the rounds.
  ///   * Auditor: every `cadence` occurrences (and after every fault) the
  ///     run's state is re-audited from first principles — capacity
  ///     conservation, flow/path coherence, queue/quarantine accounting.
  ///     kFailFast throws guard::AuditFailure; kLogAndCount counts into
  ///     metrics::GuardStats.
  guard::GuardConfig guard;
  /// Crash-consistent checkpointing (event-level Run only). Disabled by
  /// default; a disabled config touches no files, draws nothing from any
  /// Rng, and leaves fixed-seed runs bit-identical to a build without the
  /// subsystem. When enabled, a snapshot of the full controller state is
  /// written before the first round and every `cadence` rounds thereafter,
  /// and every committed operation between snapshots is journaled (see
  /// docs/model.md §11). Run throws fault::ControllerCrash when
  /// SimConfig::faults.crash fires; Resume restores the newest loadable
  /// snapshot, replay-verifies the journal, and finishes the run.
  ckpt::CheckpointConfig checkpoint;
  /// Online-serving mode (event-level Run only). Disabled by default; a
  /// disabled config keeps no serve state, draws nothing from any Rng, and
  /// adds no serve section to snapshots, so fixed-seed runs are
  /// bit-identical to a build without the subsystem. When enabled:
  ///   * Admission: arrivals pass the serve gates (Shedding-state priority
  ///     floor, deadline-aware rejection, per-tenant token buckets) BEFORE
  ///     the overload guard's bounded queue; rejected events terminate
  ///     kShed and are counted per tenant and reason.
  ///   * Health: a brownout controller tracks queue depth, the sliding
  ///     deadline-miss rate, and fabric stress; its degradation level is
  ///     exposed to the scheduler (SchedulingContext::DegradationLevel),
  ///     suppresses optional cadence audits at level >= 2, and sheds
  ///     low-priority tenants at level 3.
  ///   * Telemetry: ECT percentiles via a deterministic streaming sketch,
  ///     per-tenant ledgers + Jain's indexes, and a periodic/transition
  ///     timeseries — all folded into SimResult and into snapshots
  ///     (payload format v4).
  serve::ServeOptions serve;
  /// Anti-entropy reconciliation of grey dataplane failures (event-level
  /// Run only; docs/model.md §16). Disabled by default; a disabled
  /// reconciler keeps no state, draws nothing from any Rng, and adds no
  /// snapshot section, so fixed-seed runs are bit-identical to a build
  /// without the subsystem. When enabled (usually together with
  /// SimConfig::faults.grey):
  ///   * Every `recon.period` virtual seconds a read-back pass diffs the
  ///     controller's intended rules against each switch's applied state,
  ///     classifies the drift (ack-lie / straggler / silent loss), and
  ///     repairs it by re-issuing rules through the same grey pipeline
  ///     under a per-switch retry/backoff budget.
  ///   * A per-switch health EWMA escalates persistent liars: Suspect ->
  ///     Degraded (paths through the switch leave candidate selection) ->
  ///     Quarantined (drained like a switch-down fault, latched).
  ///   * The auditor (when on) enforces the drift invariant: no switch may
  ///     stay continuously at drift past recon.max_passes_at_drift passes
  ///     without being quarantined.
  recon::ReconcilerConfig recon;
};

struct RoundLogEntry {
  Seconds decision_time = 0.0;
  Seconds plan_time = 0.0;
  std::vector<EventId> executed;
};

struct SimResult {
  metrics::Report report;
  std::vector<metrics::EventRecord> records;
  std::size_t rounds = 0;
  std::size_t cost_probes = 0;
  std::size_t cofeasibility_probes = 0;
  /// Flows force-placed to break a capacity deadlock (should be 0 in sane
  /// configurations; reported to make violations visible).
  std::size_t forced_placements = 0;
  std::vector<RoundLogEntry> round_log;
  /// Fault-and-recovery counters (all zero when SimConfig::faults is
  /// disabled); also folded into `report`.
  metrics::FaultStats fault_stats;
  /// Overload-guard and auditor counters (all zero when SimConfig::guard is
  /// disabled); also folded into `report`. Per-event terminal statuses
  /// (completed | shed | aborted | quarantined) live in `records`.
  metrics::GuardStats guard_stats;
  /// Probe fast-path counters (all zero when probe_fast_path is off); also
  /// folded into `report`.
  metrics::ProbeStats probe_stats;
  /// Sharded-engine counters (enabled == false unless SimConfig::shards
  /// >= 2). Logical counters are deterministic across thread counts; the
  /// wall-clock fields (busy seconds, modeled critical path) are host
  /// measurements and deliberately NOT part of `report` or any CSV.
  metrics::ShardStats shard_stats;
  /// What this process did to recover (all zero unless Resume ran); the
  /// per-process subset is also folded into `report` (ckpt_recoveries,
  /// ckpt_wal_replayed, ckpt_recovery_wall_seconds).
  ckpt::RecoveryInfo recovery;
  /// Every auditor violation recorded during the run (empty unless
  /// SimConfig::guard.auditor is enabled in log-and-count mode). Each record
  /// carries the scheduling round and topology epoch of the pass that found
  /// it — the chaos campaign's primary oracle.
  std::vector<guard::AuditViolation> violations;
  /// Serve-mode outcome (enabled == false unless SimConfig::serve is on).
  serve::ServeSummary serve;
  /// Serve-mode timeseries (periodic samples + brownout transitions) and
  /// per-tenant report, as CSV text; empty unless serve mode is on.
  std::string serve_timeseries_csv;
  std::string serve_tenant_csv;
  /// Grey-failure / reconciliation counters (all zero unless
  /// SimConfig::faults.grey or SimConfig::recon is on); the headline
  /// subset is also folded into `report` (drift_*, grey_*, switches_*).
  recon::ReconStats recon_stats;
};

class Simulator {
 public:
  /// Builds a fresh traffic generator for churn replacement draws; invoked
  /// once per Run with a deterministic seed so compared runs see the same
  /// stochastic process.
  using ChurnFactory =
      std::function<std::unique_ptr<trace::TrafficGenerator>(std::uint64_t)>;

  /// `initial` is the pre-update network state (background traffic placed);
  /// each Run starts from a fresh copy so runs are directly comparable.
  Simulator(const net::Network& initial, const topo::PathProvider& paths,
            SimConfig config = {});

  /// Required before Run when config.churn.enabled.
  void SetChurnFactory(ChurnFactory factory) {
    churn_factory_ = std::move(factory);
  }

  /// Event-level run under `scheduler`. With config.checkpoint enabled and
  /// config.faults.crash armed, throws fault::ControllerCrash at the
  /// injected crash point (committed snapshots/journal stay on disk).
  [[nodiscard]] SimResult Run(sched::Scheduler& scheduler,
                              std::span<const update::UpdateEvent> events);

  /// Recovers a crashed event-level run from config.checkpoint.dir: restores
  /// the newest loadable snapshot (falling back past corrupt ones), replays
  /// the journal as a determinism cross-check while re-executing, and runs
  /// to completion. Must be called with the same config and events as the
  /// crashed Run; crash injection points are ignored (one-shot per process).
  /// Throws RecoveryError when no snapshot loads or re-execution diverges
  /// from the journal.
  [[nodiscard]] SimResult Resume(sched::Scheduler& scheduler,
                                 std::span<const update::UpdateEvent> events);

  /// Flow-level baseline run.
  [[nodiscard]] SimResult RunFlowLevel(
      std::span<const update::UpdateEvent> events);

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  /// Shared body of Run and Resume. `resume` restores the newest loadable
  /// snapshot into the loop state and replay-verifies the journal before
  /// switching to live appends.
  SimResult RunEventLoop(sched::Scheduler& scheduler,
                         std::span<const update::UpdateEvent> events,
                         bool resume);

  const net::Network& initial_;
  const topo::PathProvider& paths_;
  SimConfig config_;
  ChurnFactory churn_factory_;
};

}  // namespace nu::sim
