// Control-plane cost model: converts planning work and migrated traffic
// into virtual time, mirroring how the paper charges them (Fig. 3 expresses
// update cost in seconds next to execution time; Fig. 6(d) reports plan
// time as a per-method total).
//
//   * A cost probe (planning one event to learn Cost(U)) takes time
//     proportional to the event's flow count.
//   * A P-LMTF co-feasibility check reuses most of the round's planning
//     state, so it costs a configurable fraction of a probe.
//   * Executing migrations delays the event's flows by
//     migrated_traffic / migration_rate.
#pragma once

#include <cstddef>

#include "common/check.h"
#include "common/types.h"

namespace nu::sim {

struct CostModel {
  /// Seconds of plan computation per flow in a planned event. Planning is
  /// controller CPU work — far cheaper than installing rules across the
  /// data plane (install_time_per_flow).
  Seconds plan_time_per_flow = 0.0005;
  /// Co-feasibility probe cost as a fraction of a full cost probe.
  double cofeasibility_factor = 0.2;
  /// Quick (estimate-based) cost probe as a fraction of a full probe — no
  /// network copy, no migration planning, just per-flow deficit lookups.
  double quick_probe_factor = 0.1;
  /// Mbps of migrated demand reconfigured per second of data-plane work.
  /// Migrating a flow means draining/rerouting real traffic, so an event
  /// with a large migration set spends time comparable to its own install
  /// work — the paper's Fig. 3 puts update cost (4 s) on the same scale as
  /// execution time (1 s).
  Mbps migration_rate = 100.0;
  /// Seconds to install one flow's rules on the data plane. An event's
  /// execution time is migration time + install_time_per_flow * flows —
  /// the "execution time" of the paper's Fig. 3, where migration (cost)
  /// dominates: installing a rule is cheap, draining and rerouting live
  /// traffic is not.
  Seconds install_time_per_flow = 0.02;

  [[nodiscard]] Seconds ProbeTime(std::size_t flow_count) const {
    return plan_time_per_flow * static_cast<double>(flow_count);
  }

  [[nodiscard]] Seconds CoFeasibilityTime(std::size_t flow_count) const {
    return cofeasibility_factor * ProbeTime(flow_count);
  }

  [[nodiscard]] Seconds MigrationTime(Mbps migrated_traffic) const {
    NU_EXPECTS(migration_rate > 0.0);
    return migrated_traffic / migration_rate;
  }

  [[nodiscard]] Seconds InstallTime(std::size_t flow_count) const {
    return install_time_per_flow * static_cast<double>(flow_count);
  }
};

}  // namespace nu::sim
