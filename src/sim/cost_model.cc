// CostModel is header-only; this TU anchors the target.
#include "sim/cost_model.h"
