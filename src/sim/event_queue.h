// Deterministic time-ordered queue for simulator occurrences. Entries at
// equal times pop in insertion order (monotonic sequence tiebreak), which
// keeps every run bit-for-bit reproducible.
//
// Implemented over an explicit vector + push_heap/pop_heap (rather than
// std::priority_queue) so checkpointing can serialize the pending entries:
// because (time, seq) is a strict total order, the pop sequence is
// independent of the heap's internal layout, and a queue rebuilt from a
// canonically sorted entry list behaves identically to the original.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace nu::sim {

template <typename T>
class TimelineQueue {
 public:
  struct Entry {
    Seconds time;
    std::uint64_t seq;
    T payload;
  };

  void Push(Seconds time, T payload) {
    heap_.push_back(Entry{time, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] Seconds NextTime() const {
    NU_EXPECTS(!heap_.empty());
    return heap_.front().time;
  }

  /// Pops the earliest entry.
  Entry Pop() {
    NU_EXPECTS(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    return entry;
  }

  /// Pending entries in canonical (time, seq) pop order — heap-layout
  /// independent, so two queues with identical contents serialize
  /// identically regardless of insertion history.
  [[nodiscard]] std::vector<Entry> SortedEntries() const {
    std::vector<Entry> entries = heap_;
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.seq < b.seq;
              });
    return entries;
  }

  /// Sequence number the next Push will consume (monotonic, never reused).
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Rebuilds the queue from serialized state. `entries` need not be
  /// sorted; `next_seq` must exceed every entry's seq.
  void Restore(std::vector<Entry> entries, std::uint64_t next_seq) {
    for (const Entry& e : entries) NU_EXPECTS(e.seq < next_seq);
    heap_ = std::move(entries);
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    next_seq_ = next_seq;
  }

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nu::sim
