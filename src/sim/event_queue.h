// Deterministic time-ordered queue for simulator occurrences. Entries at
// equal times pop in insertion order (monotonic sequence tiebreak), which
// keeps every run bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace nu::sim {

template <typename T>
class TimelineQueue {
 public:
  struct Entry {
    Seconds time;
    std::uint64_t seq;
    T payload;
  };

  void Push(Seconds time, T payload) {
    heap_.push(Entry{time, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] Seconds NextTime() const {
    NU_EXPECTS(!heap_.empty());
    return heap_.top().time;
  }

  /// Pops the earliest entry.
  Entry Pop() {
    NU_EXPECTS(!heap_.empty());
    Entry entry = heap_.top();
    heap_.pop();
    return entry;
  }

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nu::sim
