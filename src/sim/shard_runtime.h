// Shared infrastructure of one sharded simulation run (SimConfig::shards
// >= 2): the pod partition map, the worker pool the shard tasks run on,
// the inter-shard mailbox carrying probe results back to the coordinator,
// the shard-parallel audit wiring, and the per-shard counters.
//
// Execution model (docs/model.md §15): the coordinator (simulation thread)
// remains the single decision and mutation authority — LMTF's candidate
// sample is drawn from the one scheduler RNG stream and all network
// mutations, counters, and virtual-time accounting happen in candidate
// order on the coordinator, exactly as in an unsharded run. Shards
// contribute the heavy recompute: each round's candidate probes are routed
// to their home shards (the shard of the event's first flow's source pod)
// and planned on workers, and audit passes recompute capacity/coherence
// over per-shard slices. Because workers only produce pure values that the
// coordinator consumes in the mailbox's canonical (round, shard, seq)
// order, a sharded run is bit-identical to the unsharded path at any
// thread count.
#pragma once

#include <cstdint>
#include <memory>

#include "common/thread_pool.h"
#include "guard/auditor.h"
#include "metrics/shard_stats.h"
#include "recon/reconciler.h"
#include "sim/mailbox.h"
#include "topo/shard_map.h"
#include "update/planner.h"
#include "update/update_event.h"

namespace nu::sim {

/// One candidate's probe result, posted by its home shard's task.
struct ShardProbeResult {
  /// Index into the batch's candidate list (restores candidate order).
  std::size_t slot = 0;
  /// ProbedCost of the plan (for the distributed-argmin cross-check).
  Mbps cost = 0.0;
  update::EventPlan plan;
};

class ShardRuntime {
 public:
  /// Partitions `graph` into `shards` and spawns `threads` workers.
  ShardRuntime(const topo::Graph& graph, std::size_t shards,
               std::size_t threads);

  [[nodiscard]] const topo::ShardMap& map() const { return map_; }
  [[nodiscard]] ThreadPool& pool() { return *pool_; }
  [[nodiscard]] std::size_t shard_count() const { return map_.shard_count(); }
  [[nodiscard]] std::size_t thread_count() const {
    return pool_->worker_count();
  }
  [[nodiscard]] metrics::ShardStats& stats() { return stats_; }
  [[nodiscard]] ShardMailbox<ShardProbeResult>& mailbox() { return mailbox_; }
  /// Separate mailbox for reconcile read-back fan-outs (drift observations
  /// are tiny next to event plans; sharing the probe mailbox would force a
  /// variant payload). Rounds come from the same NextMailboxRound counter.
  [[nodiscard]] ShardMailbox<recon::DriftObservation>& drift_mailbox() {
    return drift_mailbox_;
  }

  /// Monotonic mailbox round ids (one per probe fan-out).
  [[nodiscard]] std::uint64_t NextMailboxRound() { return next_round_++; }

  /// Audit fan-out wiring for guard::Auditor::Audit; counters and busy
  /// seconds land in stats().
  [[nodiscard]] const guard::ShardAuditRuntime& audit_runtime() const {
    return audit_rt_;
  }

  /// Home shard of an update event: the shard of its first flow's source.
  /// (Events are generated host-to-host within the fabric, so the first
  /// source pins the pod that initiates the update.)
  [[nodiscard]] std::size_t HomeShard(const update::UpdateEvent& event) const {
    if (event.flows().empty()) return 0;
    return map_.ShardOf(event.flows().front().src);
  }

  /// True when any of the event's flow endpoints lives outside the home
  /// shard (a cross-pod update).
  [[nodiscard]] bool SpansShards(const update::UpdateEvent& event) const {
    const std::size_t home = HomeShard(event);
    for (const flow::Flow& f : event.flows()) {
      if (map_.ShardOf(f.src) != home || map_.ShardOf(f.dst) != home) {
        return true;
      }
    }
    return false;
  }

 private:
  topo::ShardMap map_;
  std::unique_ptr<ThreadPool> pool_;
  metrics::ShardStats stats_;
  ShardMailbox<ShardProbeResult> mailbox_;
  ShardMailbox<recon::DriftObservation> drift_mailbox_;
  std::uint64_t next_round_ = 0;
  guard::ShardAuditRuntime audit_rt_;
};

}  // namespace nu::sim
