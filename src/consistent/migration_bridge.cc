#include "consistent/migration_bridge.h"

namespace nu::consistent {

Version VersionTracker::Current(FlowId flow) const {
  const auto it = versions_.find(flow.value());
  return it == versions_.end() ? 0 : it->second;
}

Version VersionTracker::Bump(FlowId flow) { return ++versions_[flow.value()]; }

std::vector<RuleOp> PlanForMigration(const net::Network& network,
                                     const update::MigrationPlan& plan,
                                     VersionTracker& tracker) {
  std::vector<RuleOp> ops;
  for (const update::MigrationMove& move : plan.moves) {
    const topo::Path& old_path = network.PathOf(move.flow);
    const topo::Path& new_path = network.path_registry().Get(move.new_path);
    const Version old_version = tracker.Current(move.flow);
    auto reroute =
        PlanTwoPhaseReroute(move.flow, old_path, new_path, old_version);
    tracker.Bump(move.flow);
    ops.insert(ops.end(), reroute.begin(), reroute.end());
  }
  return ops;
}

std::vector<RuleOp> PlanForPlacement(FlowId flow, const topo::Path& path,
                                     VersionTracker& tracker) {
  return PlanInitialInstall(flow, path, tracker.Current(flow));
}

std::size_t RuleOpCount(const update::MigrationPlan& plan,
                        const net::Network& network,
                        std::size_t placed_flow_path_hops) {
  std::size_t ops = placed_flow_path_hops + 1;  // install + ingress tag
  for (const update::MigrationMove& move : plan.moves) {
    const topo::Path& old_path = network.PathOf(move.flow);
    const topo::Path& new_path = network.path_registry().Get(move.new_path);
    ops += new_path.links.size() + 1 + old_path.links.size();
  }
  return ops;
}

}  // namespace nu::consistent
