// Bridge between the event-level update layer and the consistent data
// plane: turns a MigrationPlan (flow reroutes) plus new-flow placements into
// a single per-packet-consistent rule schedule, and prices it in rule ops —
// grounding the simulator's abstract install/migration times in concrete
// two-phase machinery.
#pragma once

#include <vector>

#include "consistent/two_phase.h"
#include "net/network.h"
#include "update/migration.h"

namespace nu::consistent {

/// Tracks per-flow versions across successive updates.
class VersionTracker {
 public:
  /// Current version of a flow (0 for flows never updated).
  [[nodiscard]] Version Current(FlowId flow) const;
  /// Bumps and returns the new version.
  Version Bump(FlowId flow);

 private:
  std::unordered_map<FlowId::rep_type, Version> versions_;
};

/// Rule schedule realizing a migration plan against the CURRENT paths in
/// `network` (call before applying the plan): each move becomes a two-phase
/// reroute from the flow's current path to its target path. Versions are
/// taken from (and bumped in) `tracker`.
[[nodiscard]] std::vector<RuleOp> PlanForMigration(
    const net::Network& network, const update::MigrationPlan& plan,
    VersionTracker& tracker);

/// Rule schedule installing a brand-new flow on `path` (initial install at
/// the tracker's current version for the flow).
[[nodiscard]] std::vector<RuleOp> PlanForPlacement(FlowId flow,
                                                   const topo::Path& path,
                                                   VersionTracker& tracker);

/// Total rule operations an event's update needs: migrations (two-phase per
/// move) + placements. The per-op latency times this count is the concrete
/// counterpart of CostModel's migration + install times.
[[nodiscard]] std::size_t RuleOpCount(const update::MigrationPlan& plan,
                                      const net::Network& network,
                                      std::size_t placed_flow_path_hops);

}  // namespace nu::consistent
