#include "consistent/rule_table.h"

#include <unordered_set>

#include "common/check.h"

namespace nu::consistent {

void RuleTable::Install(NodeId sw, FlowId flow, Version version,
                        LinkId out_link) {
  NU_EXPECTS(sw.valid());
  NU_EXPECTS(flow.valid());
  NU_EXPECTS(out_link.valid());
  rules_[Key{sw.value(), flow.value(), version}] = out_link;
}

void RuleTable::Remove(NodeId sw, FlowId flow, Version version) {
  rules_.erase(Key{sw.value(), flow.value(), version});
}

std::optional<LinkId> RuleTable::Lookup(NodeId sw, FlowId flow,
                                        Version version) const {
  const auto it = rules_.find(Key{sw.value(), flow.value(), version});
  if (it == rules_.end()) return std::nullopt;
  return it->second;
}

void RuleTable::SetIngressVersion(FlowId flow, Version version) {
  ingress_[flow.value()] = version;
}

Version RuleTable::IngressVersion(FlowId flow) const {
  const auto it = ingress_.find(flow.value());
  NU_EXPECTS(it != ingress_.end());
  return it->second;
}

std::size_t RuleTable::RuleCountForFlow(FlowId flow) const {
  std::size_t count = 0;
  for (const auto& [key, _] : rules_) {
    if (key.flow == flow.value()) ++count;
  }
  return count;
}

ForwardResult ForwardPacket(const topo::Graph& graph, const RuleTable& rules,
                            FlowId flow, NodeId src, NodeId dst) {
  ForwardResult result;
  result.version = rules.IngressVersion(flow);
  result.hops.push_back(src);

  std::unordered_set<NodeId::rep_type> visited{src.value()};
  NodeId current = src;
  while (current != dst) {
    const auto out = rules.Lookup(current, flow, result.version);
    if (!out.has_value()) {
      result.outcome = ForwardOutcome::kDropped;
      return result;
    }
    const topo::Link& link = graph.link(*out);
    NU_CHECK(link.src == current);  // rule must point out of this switch
    current = link.dst;
    result.hops.push_back(current);
    if (!visited.insert(current.value()).second) {
      result.outcome = ForwardOutcome::kLooped;
      return result;
    }
  }
  result.outcome = ForwardOutcome::kDelivered;
  return result;
}

}  // namespace nu::consistent
