// Versioned forwarding state — the data-plane substrate beneath "network
// update". A flow's packets are tagged with a version at the ingress; each
// switch forwards by exact match on (flow, version). Per-packet consistency
// (Reitblatt et al., cited by the paper as the foundation of consistent
// updates) means every packet traverses entirely under one version's rules.
// The update/ layer treats rule installation as a time cost; this module
// makes the mechanism itself explicit and testable.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.h"
#include "topo/graph.h"

namespace nu::consistent {

/// Configuration version tag carried by packets and matched by rules.
using Version = std::uint32_t;

class RuleTable {
 public:
  /// Installs (or overwrites) the rule at `sw` forwarding `flow`'s
  /// version-`version` packets out of `out_link`.
  void Install(NodeId sw, FlowId flow, Version version, LinkId out_link);

  /// Removes a rule; no-op when absent.
  void Remove(NodeId sw, FlowId flow, Version version);

  /// The out-link at `sw` for (flow, version), or nullopt (packet drop).
  [[nodiscard]] std::optional<LinkId> Lookup(NodeId sw, FlowId flow,
                                             Version version) const;

  /// Version stamped onto `flow`'s packets at the ingress.
  void SetIngressVersion(FlowId flow, Version version);
  [[nodiscard]] Version IngressVersion(FlowId flow) const;

  /// Total installed rules (the TCAM-occupancy figure consistent-update
  /// papers care about).
  [[nodiscard]] std::size_t RuleCount() const { return rules_.size(); }

  /// Rules currently installed for one flow (across versions/switches).
  [[nodiscard]] std::size_t RuleCountForFlow(FlowId flow) const;

 private:
  struct Key {
    NodeId::rep_type sw;
    FlowId::rep_type flow;
    Version version;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = std::hash<NodeId::rep_type>{}(k.sw);
      h = h * 1000003 ^ std::hash<FlowId::rep_type>{}(k.flow);
      h = h * 1000003 ^ std::hash<Version>{}(k.version);
      return h;
    }
  };

  std::unordered_map<Key, LinkId, KeyHash> rules_;
  std::unordered_map<FlowId::rep_type, Version> ingress_;
};

/// Outcome of forwarding one packet under the current rule state.
enum class ForwardOutcome : std::uint8_t {
  kDelivered,
  kDropped,  // no matching rule at some hop
  kLooped,   // revisited a node (forwarding loop)
};

struct ForwardResult {
  ForwardOutcome outcome = ForwardOutcome::kDropped;
  /// Nodes visited, starting at the source.
  std::vector<NodeId> hops;
  /// The version the packet was tagged with at ingress.
  Version version = 0;
};

/// Injects one packet of `flow` at `src` and follows rules until it reaches
/// `dst`, drops, or loops.
[[nodiscard]] ForwardResult ForwardPacket(const topo::Graph& graph,
                                          const RuleTable& rules, FlowId flow,
                                          NodeId src, NodeId dst);

}  // namespace nu::consistent
