// Two-phase per-packet-consistent reroute (Reitblatt et al.) and the naive
// in-place baseline it fixes.
//
// Two-phase: (1) install the new path's rules under version v+1 everywhere,
// (2) flip the ingress tag to v+1, (3) remove the old version's rules. Any
// prefix of this schedule leaves every in-flight and future packet on
// exactly one version's complete path.
//
// Direct (naive): overwrite each switch's rule for version v along the new
// path one switch at a time, then delete stale rules. Intermediate states
// can black-hole or mis-route packets — the consistency checker in the tests
// demonstrates it.
#pragma once

#include <vector>

#include "consistent/rule_table.h"

namespace nu::consistent {

enum class RuleOpKind : std::uint8_t {
  kInstall,
  kRemove,
  kFlipIngress,
};

/// One atomic controller action on the data plane.
struct RuleOp {
  RuleOpKind kind = RuleOpKind::kInstall;
  NodeId sw;            // kInstall / kRemove
  FlowId flow;
  Version version = 0;  // rule version, or new ingress version for flips
  LinkId out_link;      // kInstall
};

/// Applies one op to the table.
void Apply(RuleTable& rules, const RuleOp& op);

/// Applies all ops in order.
void ApplyAll(RuleTable& rules, std::vector<RuleOp> const& ops);

/// Rules to install a flow's initial path under `version`, plus the ingress
/// tag. One rule per non-destination path node (source host included: it
/// models the host's/ToR's tagging-and-forwarding entry).
[[nodiscard]] std::vector<RuleOp> PlanInitialInstall(FlowId flow,
                                                     const topo::Path& path,
                                                     Version version);

/// Two-phase reroute schedule: install new-version rules (new path), flip
/// ingress, remove old-version rules (old path).
[[nodiscard]] std::vector<RuleOp> PlanTwoPhaseReroute(FlowId flow,
                                                      const topo::Path& old_path,
                                                      const topo::Path& new_path,
                                                      Version old_version);

/// Naive reroute: overwrite rules in place under the SAME version, hop by
/// hop from the source, then remove rules on old-path nodes that left the
/// path. Not per-packet consistent.
[[nodiscard]] std::vector<RuleOp> PlanDirectReroute(FlowId flow,
                                                    const topo::Path& old_path,
                                                    const topo::Path& new_path,
                                                    Version version);

/// Abort rollback for a partially executed schedule: ops that undo the first
/// `applied` ops, restoring the pre-update rule table. Only valid BEFORE the
/// ingress flip — the flip is the commit point of a two-phase update; every
/// op in the applied prefix must be a kInstall (phase 1). Past the flip the
/// correct recovery is to roll FORWARD (apply the remaining ops), never back.
/// Emitted in reverse application order, each op per-packet safe: the new
/// version's rules are unreachable until the flip, so removing them never
/// touches a live packet.
[[nodiscard]] std::vector<RuleOp> PlanRollback(const std::vector<RuleOp>& ops,
                                               std::size_t applied);

/// True when aborting after `applied` ops may still roll back (no commit
/// point — ingress flip — inside the applied prefix).
[[nodiscard]] bool CanRollback(const std::vector<RuleOp>& ops,
                               std::size_t applied);

/// Wall-clock duration of a schedule at `per_op` seconds per rule op —
/// connects this module to sim::CostModel's install-time abstraction.
[[nodiscard]] Seconds ScheduleDuration(const std::vector<RuleOp>& ops,
                                       Seconds per_op);

}  // namespace nu::consistent
