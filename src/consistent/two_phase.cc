#include "consistent/two_phase.h"

#include <algorithm>

#include "common/check.h"

namespace nu::consistent {

void Apply(RuleTable& rules, const RuleOp& op) {
  switch (op.kind) {
    case RuleOpKind::kInstall:
      rules.Install(op.sw, op.flow, op.version, op.out_link);
      break;
    case RuleOpKind::kRemove:
      rules.Remove(op.sw, op.flow, op.version);
      break;
    case RuleOpKind::kFlipIngress:
      rules.SetIngressVersion(op.flow, op.version);
      break;
  }
}

void ApplyAll(RuleTable& rules, std::vector<RuleOp> const& ops) {
  for (const RuleOp& op : ops) Apply(rules, op);
}

std::vector<RuleOp> PlanInitialInstall(FlowId flow, const topo::Path& path,
                                       Version version) {
  NU_EXPECTS(!path.links.empty());
  std::vector<RuleOp> ops;
  ops.reserve(path.links.size() + 1);
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    ops.push_back(RuleOp{RuleOpKind::kInstall, path.nodes[i], flow, version,
                         path.links[i]});
  }
  ops.push_back(
      RuleOp{RuleOpKind::kFlipIngress, NodeId::invalid(), flow, version,
             LinkId::invalid()});
  return ops;
}

std::vector<RuleOp> PlanTwoPhaseReroute(FlowId flow,
                                        const topo::Path& old_path,
                                        const topo::Path& new_path,
                                        Version old_version) {
  NU_EXPECTS(old_path.source() == new_path.source());
  NU_EXPECTS(old_path.destination() == new_path.destination());
  const Version new_version = old_version + 1;
  std::vector<RuleOp> ops;
  ops.reserve(new_path.links.size() + 1 + old_path.links.size());
  // Phase 1: new-version rules along the new path (order irrelevant — no
  // packet carries the new tag yet).
  for (std::size_t i = 0; i < new_path.links.size(); ++i) {
    ops.push_back(RuleOp{RuleOpKind::kInstall, new_path.nodes[i], flow,
                         new_version, new_path.links[i]});
  }
  // Phase 2: one atomic ingress flip.
  ops.push_back(RuleOp{RuleOpKind::kFlipIngress, NodeId::invalid(), flow,
                       new_version, LinkId::invalid()});
  // Phase 3: garbage-collect the old version (after in-flight packets
  // drain; the schedule is correct at every prefix regardless).
  for (std::size_t i = 0; i < old_path.links.size(); ++i) {
    ops.push_back(RuleOp{RuleOpKind::kRemove, old_path.nodes[i], flow,
                         old_version, LinkId::invalid()});
  }
  return ops;
}

std::vector<RuleOp> PlanDirectReroute(FlowId flow, const topo::Path& old_path,
                                      const topo::Path& new_path,
                                      Version version) {
  NU_EXPECTS(old_path.source() == new_path.source());
  NU_EXPECTS(old_path.destination() == new_path.destination());
  std::vector<RuleOp> ops;
  // Overwrite along the new path, source first (the hazardous order: once
  // the source points at the new path, downstream new-path switches may not
  // have rules yet).
  for (std::size_t i = 0; i < new_path.links.size(); ++i) {
    ops.push_back(RuleOp{RuleOpKind::kInstall, new_path.nodes[i], flow,
                         version, new_path.links[i]});
  }
  // Remove stale rules on old-path nodes that are not on the new path.
  for (std::size_t i = 0; i < old_path.links.size(); ++i) {
    const NodeId node = old_path.nodes[i];
    const bool still_used =
        std::find(new_path.nodes.begin(), new_path.nodes.end(), node) !=
        new_path.nodes.end();
    if (!still_used) {
      ops.push_back(
          RuleOp{RuleOpKind::kRemove, node, flow, version, LinkId::invalid()});
    }
  }
  return ops;
}

bool CanRollback(const std::vector<RuleOp>& ops, std::size_t applied) {
  NU_EXPECTS(applied <= ops.size());
  for (std::size_t i = 0; i < applied; ++i) {
    if (ops[i].kind != RuleOpKind::kInstall) return false;
  }
  return true;
}

std::vector<RuleOp> PlanRollback(const std::vector<RuleOp>& ops,
                                 std::size_t applied) {
  NU_EXPECTS(CanRollback(ops, applied));
  std::vector<RuleOp> undo;
  undo.reserve(applied);
  for (std::size_t i = applied; i > 0; --i) {
    const RuleOp& op = ops[i - 1];
    undo.push_back(RuleOp{RuleOpKind::kRemove, op.sw, op.flow, op.version,
                          LinkId::invalid()});
  }
  return undo;
}

Seconds ScheduleDuration(const std::vector<RuleOp>& ops, Seconds per_op) {
  NU_EXPECTS(per_op >= 0.0);
  return per_op * static_cast<double>(ops.size());
}

}  // namespace nu::consistent
