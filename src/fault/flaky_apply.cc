#include "fault/flaky_apply.h"

#include <algorithm>

#include "common/check.h"

namespace nu::fault {

FlakyApplyResult ApplyWithFaults(consistent::RuleTable& rules,
                                 const std::vector<consistent::RuleOp>& ops,
                                 const FlakyInstallModel& flaky,
                                 const RetryPolicy& retry, Rng& rng,
                                 Seconds per_op) {
  NU_EXPECTS(flaky.failure_probability >= 0.0 &&
             flaky.failure_probability < 1.0);
  NU_EXPECTS(per_op >= 0.0);
  const std::size_t max_attempts = std::max<std::size_t>(1,
                                                         retry.max_attempts);
  FlakyApplyResult result;
  for (const consistent::RuleOp& op : ops) {
    if (op.kind != consistent::RuleOpKind::kInstall) {
      // Flips are controller-local (atomic version stamp); removes are
      // garbage collection — neither can strand the update.
      consistent::Apply(rules, op);
      ++result.applied_ops;
      result.elapsed += per_op;
      continue;
    }
    bool installed = false;
    for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      ++result.attempts;
      if (attempt > 1) ++result.retries;
      result.elapsed += per_op;
      if (!rng.Bernoulli(flaky.failure_probability)) {
        consistent::Apply(rules, op);
        ++result.applied_ops;
        installed = true;
        break;
      }
      if (attempt < max_attempts) {
        result.elapsed += retry.BackoffDelay(attempt, rng);
      }
    }
    if (installed) continue;

    // Exhausted. Before the flip: undo the applied prefix. After: roll
    // forward — retrying forever beats leaving mixed state, and in this
    // model only installs fail, so the remaining flip/removes succeed.
    if (consistent::CanRollback(ops, result.applied_ops)) {
      const auto undo = consistent::PlanRollback(ops, result.applied_ops);
      consistent::ApplyAll(rules, undo);
      result.elapsed += per_op * static_cast<double>(undo.size());
      result.rolled_back = true;
      return result;
    }
    consistent::Apply(rules, op);  // forced through on the final state
    ++result.applied_ops;
  }
  result.committed = true;
  return result;
}

}  // namespace nu::fault
