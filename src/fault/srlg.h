// Shared-risk link groups (SRLGs): sets of links and switches that fail
// together because they share a physical risk — a pod's power feed, a core
// plane's line card, a maintenance batch. Real fabrics fail in exactly these
// correlated bursts, and consistent-update schedulers are hardest to keep
// correct when a whole group goes down mid-update, so the fault layer models
// groups as first-class incidents rather than independent coin flips.
//
// A SharedRiskGroup is plain data over ids; derivation helpers build the
// canonical group catalogs for the two structured fabrics (Fat-Tree pods and
// core planes, leaf-spine leaves and spines) in a deterministic order so
// seeded chaos campaigns reproduce bit-for-bit.
#pragma once

#include <string>
#include <vector>

#include "topo/fat_tree.h"
#include "topo/graph.h"
#include "topo/leaf_spine.h"

namespace nu::fault {

/// One shared-risk group: the switches and (directed) links that share a
/// failure domain. Down-events take every member down in a single topology
/// transition; link members implicitly include their reverse twins (a cable
/// failure kills both directions, as with single-link faults).
struct SharedRiskGroup {
  std::string name;
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  [[nodiscard]] bool empty() const { return nodes.empty() && links.empty(); }
  [[nodiscard]] std::size_t size() const {
    return nodes.size() + links.size();
  }

  friend bool operator==(const SharedRiskGroup& a, const SharedRiskGroup& b) {
    return a.name == b.name && a.nodes == b.nodes && a.links == b.links;
  }
};

/// Canonical Fat-Tree SRLG catalog, in deterministic order:
///   * "pod<i>" for each of the k pods — the pod's edge and aggregation
///     switches (a pod power event takes the whole pod down; hosts are left
///     out so their flows are stranded, not vaporized, which is the case the
///     schedulers must survive);
///   * "core-plane<j>" for each of the k/2 core planes — the k/2 core
///     switches wired to aggregation switch j of every pod (one line-card /
///     plane failure).
[[nodiscard]] std::vector<SharedRiskGroup> DeriveFatTreeSrlgs(
    const topo::FatTree& fabric);

/// Canonical leaf-spine SRLG catalog, in deterministic order:
///   * "spine<j>" for each spine switch (a spine loss halves the fabric);
///   * "leaf<i>" for each leaf switch (a top-of-rack power event).
[[nodiscard]] std::vector<SharedRiskGroup> DeriveLeafSpineSrlgs(
    const topo::LeafSpine& fabric);

/// True when every id the group names exists in `graph`. Cheap enough to run
/// at plan-build time; FaultPlan::Validate uses it to reject misdeclared
/// groups before they misfire at runtime.
[[nodiscard]] bool GroupIdsValid(const SharedRiskGroup& group,
                                 const topo::Graph& graph);

}  // namespace nu::fault
