// Cascade engine: turns sustained link overload (observed by
// guard::LinkStressMonitor) into SECONDARY failures — the
// thermal/buffer-exhaustion cascade real fabrics exhibit when a correlated
// incident squeezes surviving capacity. The simulator calls Observe() at
// occurrence boundaries; any link whose overload has persisted past the
// configured hold time fails as a new fault with cascade depth = (depth of
// the most recent primary/secondary fault) + 1, bounded by a
// per-run secondary-failure budget so a cascade cannot raze the fabric.
//
// Everything here is virtual-time and state-driven — no RNG, no wall clock —
// so a (seed, plan, config) triple cascades identically on every run, and
// the engine's episode state checkpoints with the rest of the hot state.
#pragma once

#include <vector>

#include "common/binio.h"
#include "fault/fault_plan.h"
#include "guard/overload.h"
#include "net/network.h"

namespace nu::fault {

/// A secondary failure the engine decided on: the victim link and the
/// cascade depth it fails at (primary plan faults are depth 1, a cascade
/// triggered while depth-d faults are outstanding is depth d + 1).
struct CascadeEvent {
  LinkId link;
  std::size_t depth = 2;
};

class CascadeEngine {
 public:
  explicit CascadeEngine(const CascadeConfig& config)
      : config_(config),
        monitor_(guard::LinkStressMonitor::Options{
            config.utilization_threshold, config.hold_time}) {}

  [[nodiscard]] bool enabled() const { return config_.enabled(); }
  [[nodiscard]] const CascadeConfig& config() const { return config_; }

  /// Samples link stress at virtual time `now` and returns the secondary
  /// failures to inject (ascending link id), respecting the remaining
  /// budget. Host-incident links never cascade (a host uplink has no
  /// alternative path, so "failing" it would just vaporize its flows
  /// rather than exercise rerouting). Returned events are already counted
  /// against the budget and deepen the depth watermark.
  [[nodiscard]] std::vector<CascadeEvent> Observe(const net::Network& network,
                                                  Seconds now);

  /// Tells the engine a primary (plan) fault fired; cascades triggered
  /// while it is the most recent fault inherit depth `depth + 1`.
  void OnPrimaryFault() { current_depth_ = 1; }

  [[nodiscard]] std::size_t fired() const { return fired_; }
  [[nodiscard]] std::size_t max_depth() const { return max_depth_; }

  // Checkpoint support: budget, depth watermarks, and the monitor's episode
  // state all travel with snapshots so a recovered run cascades identically.
  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

 private:
  CascadeConfig config_;
  guard::LinkStressMonitor monitor_;
  /// Depth of the most recent fault: 0 = none yet, 1 = primary, >= 2 =
  /// cascade. The next cascade fires at current_depth_ + 1 (floor 2).
  std::size_t current_depth_ = 0;
  std::size_t fired_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace nu::fault
