// FaultInjector: the runtime side of a FaultPlan. It owns a private Rng
// stream (forked off the run seed) so flaky-install sampling never perturbs
// the scheduler's or churn's random streams — enabling faults changes only
// what faults change, and a fixed seed reproduces the run bit-for-bit.
//
// The injector is deliberately mechanism-only: it tells callers WHICH flows
// a fault strands and HOW LONG an unreliable install takes, but the
// simulator decides what replanning means (re-deferring the victim flows of
// in-flight events onto surviving paths).
#pragma once

#include <span>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/srlg.h"
#include "net/network.h"

namespace nu::fault {

/// Outcome of pushing one install batch through the flaky pipeline with
/// bounded retries. All sampled latencies are folded into the two delay
/// fields so the caller schedules a single occurrence.
struct InstallTrial {
  /// Attempts consumed (1 with a healthy pipeline).
  std::size_t attempts = 1;
  /// False when RetryPolicy::max_attempts were exhausted — the batch must
  /// be rolled back and its flows replanned.
  bool success = true;
  /// Wasted time before the outcome: failed-attempt latencies plus backoff
  /// waits. Zero on first-try success.
  Seconds wasted_delay = 0.0;
  /// Jitter multiplier (>= 1) for the successful attempt's latency;
  /// meaningless when !success.
  double latency_factor = 1.0;
};

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, std::uint64_t seed);

  /// Runs one install of nominal latency `attempt_latency` through the
  /// flaky model + retry policy. Deterministic per injector stream. `now`
  /// selects the active model: inside a FlakyStorm window the storm's
  /// (usually much worse) model replaces the baseline one. Passing the
  /// default 0.0 is fine for configs without storms — the baseline applies.
  [[nodiscard]] InstallTrial SampleInstall(Seconds attempt_latency,
                                           Seconds now = 0.0);

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Checkpoint access to the private flaky-install stream: restoring it
  /// resumes sampling at exactly the draw where a snapshot was taken.
  [[nodiscard]] Rng::State GetRngState() const { return rng_.GetState(); }
  void SetRngState(const Rng::State& state) { rng_.SetState(state); }

 private:
  const FaultConfig& config_;
  Rng rng_;
};

/// Flows stranded by `spec` if it fired now: flows crossing either direction
/// of the failing cable, or any link incident to the failing switch. Empty
/// for up-events. Ascending id order (deterministic processing). This
/// overload handles primitive specs only; group specs need the catalog.
[[nodiscard]] std::vector<FlowId> AffectedFlows(const net::Network& network,
                                                const FaultSpec& spec);

/// As above, but also resolves group specs against `groups` (the owning
/// FaultPlan's catalog): the union of flows stranded by every member
/// element, sorted and deduped — the single victim sweep of a correlated
/// incident.
[[nodiscard]] std::vector<FlowId> AffectedFlows(
    const net::Network& network, const FaultSpec& spec,
    std::span<const SharedRiskGroup> groups);

/// Applies the up/down transition of `spec` to the network's fault state
/// (both directions of a cable; the switch node itself). Does NOT remove
/// stranded flows — callers pair this with AffectedFlows and decide each
/// victim's fate (kill, replan) explicitly. Primitive specs only.
void ApplyFaultState(net::Network& network, const FaultSpec& spec);

/// As above, but also resolves group specs: every member node and link
/// (plus reverse twins of member links) flips in ONE topology transition
/// via net::Network::SetElementsUp — a pod power event is one epoch bump,
/// not size(group) of them.
void ApplyFaultState(net::Network& network, const FaultSpec& spec,
                     std::span<const SharedRiskGroup> groups);

}  // namespace nu::fault
