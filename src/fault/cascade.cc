#include "fault/cascade.h"

#include <algorithm>

namespace nu::fault {

std::vector<CascadeEvent> CascadeEngine::Observe(const net::Network& network,
                                                 Seconds now) {
  std::vector<CascadeEvent> out;
  if (!enabled() || fired_ >= config_.max_secondary_failures) return out;
  const std::vector<LinkId> stressed = monitor_.Observe(network, now);
  if (stressed.empty()) return out;
  const topo::Graph& graph = network.graph();
  const std::size_t depth = std::max<std::size_t>(current_depth_, 1) + 1;
  for (LinkId link : stressed) {
    if (fired_ >= config_.max_secondary_failures) break;
    const topo::Link& l = graph.link(link);
    // Host uplinks never cascade: no alternative path exists, so failing
    // one strands flows instead of exercising recovery.
    if (graph.node(l.src).role == topo::NodeRole::kHost ||
        graph.node(l.dst).role == topo::NodeRole::kHost) {
      continue;
    }
    out.push_back(CascadeEvent{link, depth});
    ++fired_;
  }
  if (!out.empty()) {
    current_depth_ = depth;
    max_depth_ = std::max(max_depth_, depth);
  }
  return out;
}

void CascadeEngine::SaveState(BinWriter& w) const {
  // U64, not Size: these are counters, and BinReader::Size() rejects values
  // larger than the remaining input (it is a length guard).
  w.U64(current_depth_);
  w.U64(fired_);
  w.U64(max_depth_);
  monitor_.SaveState(w);
}

void CascadeEngine::LoadState(BinReader& r) {
  current_depth_ = static_cast<std::size_t>(r.U64());
  fired_ = static_cast<std::size_t>(r.U64());
  max_depth_ = static_cast<std::size_t>(r.U64());
  monitor_.LoadState(r);
}

}  // namespace nu::fault
