// Drives a consistent-update rule schedule through the flaky-install model:
// each kInstall op may fail and is retried under the RetryPolicy; exhausting
// the retries before the commit point (ingress flip) aborts the update and
// rolls the partially installed new-version rules back, leaving the table
// exactly as it was. Past the commit point recovery rolls FORWARD. Flip and
// remove ops are controller-local/garbage-collection actions and never fail.
//
// This grounds the simulator's abstract "install failed, roll back the
// batch" transition in the concrete two-phase machinery, where the tests
// verify per-packet consistency at every intermediate state.
#pragma once

#include <vector>

#include "consistent/two_phase.h"
#include "fault/fault_plan.h"

namespace nu::fault {

struct FlakyApplyResult {
  /// True when the whole schedule was applied (possibly with retries).
  bool committed = false;
  /// True when the update aborted and the applied prefix was undone.
  bool rolled_back = false;
  /// Total install attempts, counting retries.
  std::size_t attempts = 0;
  /// Retries alone (attempts beyond each op's first).
  std::size_t retries = 0;
  /// Schedule ops successfully applied (pre-rollback count on abort).
  std::size_t applied_ops = 0;
  /// Wall-clock spent, at `per_op` seconds per attempted op plus backoff
  /// waits (rollback removals included).
  Seconds elapsed = 0.0;
};

/// Applies `ops` to `rules` under the flaky model. `rng` drives both the
/// failure draws and the backoff jitter — a fixed state reproduces the
/// outcome exactly. `per_op` prices each attempted or rollback op.
FlakyApplyResult ApplyWithFaults(consistent::RuleTable& rules,
                                 const std::vector<consistent::RuleOp>& ops,
                                 const FlakyInstallModel& flaky,
                                 const RetryPolicy& retry, Rng& rng,
                                 Seconds per_op = 0.0);

}  // namespace nu::fault
