// Deterministic fault schedules. A FaultPlan is a time-ordered list of
// data-plane incidents — cable (link) down/up, switch down/up — plus the
// probabilistic flaky-install model that makes rule installations fallible.
// Plans are plain data: building one draws nothing from any Rng unless the
// random-plan helper is used, and that helper consumes an explicit Rng, so
// a (plan, seed) pair reproduces a run bit-for-bit.
//
// The paper motivates update events with "network failures" as a
// first-class trigger; this module supplies the failure side of that story
// so the schedulers can be exercised under the conditions they exist for.
#pragma once

#include <string>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/types.h"
#include "topo/graph.h"

namespace nu::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kSwitchDown,
  kSwitchUp,
};

[[nodiscard]] const char* ToString(FaultKind kind);

/// One scheduled incident. Link faults name the forward direction of a
/// cable; the injector takes down/up both directions (a cable failure kills
/// both, as with topo::LinkAvoidingPathProvider).
struct FaultSpec {
  Seconds time = 0.0;
  FaultKind kind = FaultKind::kLinkDown;
  LinkId link;  // kLinkDown / kLinkUp
  NodeId node;  // kSwitchDown / kSwitchUp

  [[nodiscard]] bool IsLinkFault() const {
    return kind == FaultKind::kLinkDown || kind == FaultKind::kLinkUp;
  }
  [[nodiscard]] bool IsDown() const {
    return kind == FaultKind::kLinkDown || kind == FaultKind::kSwitchDown;
  }
};

/// Probabilistic model of an unreliable rule-install pipeline: each install
/// attempt independently fails with `failure_probability`, and each
/// attempt's latency is stretched by a uniform factor in
/// [1, 1 + latency_jitter_frac).
struct FlakyInstallModel {
  double failure_probability = 0.0;
  double latency_jitter_frac = 0.0;

  [[nodiscard]] bool enabled() const {
    return failure_probability > 0.0 || latency_jitter_frac > 0.0;
  }
};

/// A time-sorted incident schedule. Add* keeps specs sorted by time (stable
/// for equal times, preserving insertion order — deterministic replay).
class FaultPlan {
 public:
  FaultPlan& AddLinkDown(Seconds time, LinkId link);
  FaultPlan& AddLinkUp(Seconds time, LinkId link);
  /// Down at `time`, back up at `time + outage`.
  FaultPlan& AddLinkOutage(Seconds time, Seconds outage, LinkId link);
  FaultPlan& AddSwitchDown(Seconds time, NodeId node);
  FaultPlan& AddSwitchUp(Seconds time, NodeId node);
  FaultPlan& AddSwitchOutage(Seconds time, Seconds outage, NodeId node);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  [[nodiscard]] std::string DebugString() const;

 private:
  FaultPlan& Add(FaultSpec spec);

  std::vector<FaultSpec> specs_;
};

/// Everything the simulator needs to run under faults: the incident
/// schedule, the flaky-install model, and the retry/backoff policy for
/// failed installs. Disabled (the default) costs nothing on the hot path.
struct FaultConfig {
  FaultPlan plan;
  FlakyInstallModel flaky;
  RetryPolicy retry;

  [[nodiscard]] bool enabled() const {
    return !plan.empty() || flaky.enabled();
  }
};

/// Shape of a randomly generated link-outage plan.
struct RandomLinkFaultOptions {
  /// Number of distinct cables to fail.
  std::size_t failures = 2;
  /// First failure time; subsequent failures are `spacing` apart.
  Seconds first_failure = 1.0;
  Seconds spacing = 2.0;
  /// How long each cable stays down. <= 0 means it never comes back.
  Seconds outage = 4.0;
  /// Restrict victims to fabric links (neither endpoint a host) — host
  /// uplinks have no alternative path, so failing one strands its flows.
  bool fabric_only = true;
};

/// Samples `failures` distinct victim cables from `graph` via `rng` and
/// schedules their outages. Deterministic in (graph, options, rng state).
[[nodiscard]] FaultPlan MakeRandomLinkFaultPlan(
    const topo::Graph& graph, const RandomLinkFaultOptions& options, Rng& rng);

}  // namespace nu::fault
