// Deterministic fault schedules. A FaultPlan is a time-ordered list of
// data-plane incidents — cable (link) down/up, switch down/up, and
// correlated GROUP events over shared-risk groups (pod power events, core
// plane losses) — plus the probabilistic flaky-install model that makes rule
// installations fallible. Plans are plain data: building one draws nothing
// from any Rng unless a random-plan helper is used, and those helpers
// consume an explicit Rng, so a (plan, seed) pair reproduces a run
// bit-for-bit.
//
// Compound incidents expand at plan-build time:
//   * AddGroupOutage — the whole group transitions down (and later up) as
//     ONE incident: a single topology-epoch bump, one victim sweep across
//     every member (see fault::ApplyFaultState / AffectedFlows overloads).
//   * AddRollingDrain — a staggered maintenance drain: the group's members
//     go down one at a time, `stagger` apart, each for `outage` seconds.
//     Expands to primitive per-element specs (each its own transition,
//     which is the point of a rolling drain).
//
// Plans serialize to a line-oriented text format (SaveText/LoadText) so
// chaos-campaign repro artifacts and hand-written plans share one format.
//
// The paper motivates update events with "network failures" as a
// first-class trigger; this module supplies the failure side of that story
// so the schedulers can be exercised under the conditions they exist for.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/types.h"
#include "fault/srlg.h"
#include "topo/graph.h"

namespace nu::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kSwitchDown,
  kSwitchUp,
  kGroupDown,
  kGroupUp,
};

[[nodiscard]] const char* ToString(FaultKind kind);

/// Thrown when a plan is malformed: an outage with non-positive duration, a
/// group index with no declared group, or (via Validate) a link/node id that
/// does not exist in the topology the plan will run against. Build-time
/// rejection keeps a bad plan from silently misfiring mid-run.
class FaultPlanError : public std::runtime_error {
 public:
  explicit FaultPlanError(const std::string& what)
      : std::runtime_error("fault plan error: " + what) {}
};

/// Sentinel for FaultSpec::group on non-group specs.
inline constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

/// One scheduled incident. Link faults name the forward direction of a
/// cable; the injector takes down/up both directions (a cable failure kills
/// both, as with topo::LinkAvoidingPathProvider). Group faults name an index
/// into the owning plan's groups() catalog and take every member down/up in
/// one topology transition.
struct FaultSpec {
  Seconds time = 0.0;
  FaultKind kind = FaultKind::kLinkDown;
  LinkId link;                  // kLinkDown / kLinkUp
  NodeId node;                  // kSwitchDown / kSwitchUp
  std::size_t group = kNoGroup;  // kGroupDown / kGroupUp

  [[nodiscard]] bool IsLinkFault() const {
    return kind == FaultKind::kLinkDown || kind == FaultKind::kLinkUp;
  }
  [[nodiscard]] bool IsGroupFault() const {
    return kind == FaultKind::kGroupDown || kind == FaultKind::kGroupUp;
  }
  [[nodiscard]] bool IsDown() const {
    return kind == FaultKind::kLinkDown || kind == FaultKind::kSwitchDown ||
           kind == FaultKind::kGroupDown;
  }

  friend bool operator==(const FaultSpec& a, const FaultSpec& b) {
    return a.time == b.time && a.kind == b.kind && a.link == b.link &&
           a.node == b.node && a.group == b.group;
  }
};

/// Probabilistic model of an unreliable rule-install pipeline: each install
/// attempt independently fails with `failure_probability`, and each
/// attempt's latency is stretched by a uniform factor in
/// [1, 1 + latency_jitter_frac).
struct FlakyInstallModel {
  double failure_probability = 0.0;
  double latency_jitter_frac = 0.0;

  [[nodiscard]] bool enabled() const {
    return failure_probability > 0.0 || latency_jitter_frac > 0.0;
  }
};

/// A correlated flaky-install storm: during [start, start + duration) the
/// install pipeline degrades to THIS model instead of the baseline one —
/// e.g. a controller-to-switch control-channel brownout that makes every
/// install in the window likely to fail. Outside all storm windows the
/// baseline FlakyInstallModel applies.
struct FlakyStorm {
  Seconds start = 0.0;
  Seconds duration = 0.0;
  FlakyInstallModel model;

  [[nodiscard]] bool Covers(Seconds t) const {
    return t >= start && t < start + duration;
  }
};

/// A time-sorted incident schedule plus the shared-risk groups its compound
/// specs reference. Add* keeps specs sorted by time (stable for equal times,
/// preserving insertion order — deterministic replay).
class FaultPlan {
 public:
  FaultPlan& AddLinkDown(Seconds time, LinkId link);
  FaultPlan& AddLinkUp(Seconds time, LinkId link);
  /// Down at `time`, back up at `time + outage`. Requires outage > 0 (use
  /// AddLinkDown for a permanent failure); throws FaultPlanError otherwise.
  FaultPlan& AddLinkOutage(Seconds time, Seconds outage, LinkId link);
  FaultPlan& AddSwitchDown(Seconds time, NodeId node);
  FaultPlan& AddSwitchUp(Seconds time, NodeId node);
  FaultPlan& AddSwitchOutage(Seconds time, Seconds outage, NodeId node);

  /// Declares a shared-risk group and returns its index for Add{Group,*}
  /// calls. Empty groups are rejected (they could never fire a victim
  /// sweep, so declaring one is a bug).
  std::size_t AddGroup(SharedRiskGroup group);

  /// Whole-group transition in one topology-epoch bump (e.g. pod power).
  FaultPlan& AddGroupDown(Seconds time, std::size_t group);
  FaultPlan& AddGroupUp(Seconds time, std::size_t group);
  FaultPlan& AddGroupOutage(Seconds time, Seconds outage, std::size_t group);

  /// Rolling maintenance drain over `group`: member i (nodes first, then
  /// links, declaration order) goes down at time + i * stagger for `outage`
  /// seconds. Expands to primitive specs — each element is its own
  /// transition, which is what distinguishes a drain from a power event.
  FaultPlan& AddRollingDrain(Seconds time, Seconds stagger, Seconds outage,
                             std::size_t group);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] const std::vector<SharedRiskGroup>& groups() const {
    return groups_;
  }
  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  /// Rejects plans referencing nonexistent link/node ids (in specs or in
  /// group declarations) against the topology the plan will run against.
  /// Throws FaultPlanError naming the first offending spec; returns *this
  /// so workload builders can validate inline.
  const FaultPlan& Validate(const topo::Graph& graph) const;

  /// Line-oriented text serialization (format "netupdate-fault-plan v1").
  /// SaveText/LoadText round-trip exactly: LoadText(SaveText(p)) == p, and
  /// the emitted bytes are platform-independent (times use shortest
  /// round-trip formatting). LoadText throws FaultPlanError on malformed
  /// input. One format for repro artifacts and hand-written plans.
  void SaveText(std::ostream& out) const;
  [[nodiscard]] static FaultPlan LoadText(std::istream& in);
  void SaveFile(const std::string& path) const;
  [[nodiscard]] static FaultPlan LoadFile(const std::string& path);

  [[nodiscard]] std::string DebugString() const;

  friend bool operator==(const FaultPlan& a, const FaultPlan& b);

 private:
  FaultPlan& Add(FaultSpec spec);

  std::vector<FaultSpec> specs_;
  std::vector<SharedRiskGroup> groups_;
};

/// Where in a scheduling round a controller crash fires.
enum class CrashPoint : std::uint8_t {
  /// At the scheduling point of round `at_round`, before any of its work
  /// (right after the checkpoint hook, so it models "crashed immediately
  /// after a snapshot/between rounds").
  kBeforeRound,
  /// After the round's first event has executed and its journal records
  /// are durable; additionally leaves a deliberately torn journal record,
  /// modeling a kill -9 mid-write.
  kMidRound,
};

/// A controller-crash injection point. Unlike data-plane faults this does
/// not model the network failing — it models the CONTROLLER dying, so the
/// simulator aborts by throwing ControllerCrash (no unwinding of committed
/// state, like kill -9). Crash specs are one-shot per process:
/// sim::Simulator::Resume ignores them, otherwise a recovered run would
/// crash at the same round forever.
struct CrashSpec {
  /// 1-based scheduling round at which to die; 0 disables crash injection.
  std::size_t at_round = 0;
  CrashPoint point = CrashPoint::kBeforeRound;

  [[nodiscard]] bool armed() const { return at_round > 0; }
};

/// Thrown by the simulator when an armed CrashSpec fires. Carries no run
/// state on purpose — a crashed controller saves nothing on the way down;
/// recovery works only from what is already on disk.
class ControllerCrash : public std::runtime_error {
 public:
  ControllerCrash(std::size_t round, CrashPoint point)
      : std::runtime_error(
            "controller crash injected at round " + std::to_string(round) +
            (point == CrashPoint::kMidRound ? " (mid-round)" : " (pre-round)")),
        round_(round),
        point_(point) {}

  [[nodiscard]] std::size_t round() const { return round_; }
  [[nodiscard]] CrashPoint point() const { return point_; }

 private:
  std::size_t round_;
  CrashPoint point_;
};

/// Overload-to-cascade feedback: sustained congestion on a link (observed by
/// the guard's LinkStressMonitor) trips the link itself — the thermal /
/// buffer-exhaustion cascade real fabrics exhibit under correlated load
/// spikes. A link whose utilization stays at or above
/// `utilization_threshold` for `hold_time` seconds of virtual time fails as
/// a SECONDARY fault (cascade depth = parent fault's depth + 1), bounded by
/// `max_secondary_failures` per run so a cascade cannot raze the fabric.
struct CascadeConfig {
  /// Secondary-failure budget; 0 disables the cascade engine entirely.
  std::size_t max_secondary_failures = 0;
  /// Utilization (occupied / capacity) at or above which a link is
  /// considered overloaded.
  double utilization_threshold = 0.98;
  /// How long the overload must persist before the link trips.
  Seconds hold_time = 1.0;
  /// How long a cascade-failed link stays down; <= 0 means it never
  /// recovers within the run.
  Seconds outage = 5.0;

  [[nodiscard]] bool enabled() const { return max_secondary_failures > 0; }
};

/// The three grey-failure modes: failures the control plane does NOT see.
/// Unlike FaultKind incidents (visible topology transitions) and the flaky
/// model (install attempts that fail LOUDLY and get retried), a grey
/// failure acknowledges success while the dataplane quietly diverges.
enum class GreyKind : std::uint8_t {
  /// The switch acks the rule install but never applies it.
  kAckLie,
  /// The switch acks immediately but applies after a sampled delay in
  /// [min_delay, max_delay).
  kStraggler,
  /// The switch applies the rule, then silently evicts it after a sampled
  /// delay in [min_delay, max_delay) (TCAM pressure, firmware bugs).
  kRuleLoss,
};

[[nodiscard]] const char* ToString(GreyKind kind);

/// One grey-failure behavior: with `probability`, a rule issued to a
/// matching switch inside the active window suffers `kind`. Specs are plain
/// data; all draws happen at issue time from the dedicated
/// RngStream::kGreyFailures stream, so a (model, seed) pair reproduces the
/// exact same lies bit-for-bit and composes with SRLG/storm/cascade plans
/// without perturbing their streams.
struct GreyFailureSpec {
  GreyKind kind = GreyKind::kAckLie;
  /// Per-rule probability of suffering this spec's failure mode.
  double probability = 0.0;
  /// Delay window for kStraggler (ack-to-apply) and kRuleLoss
  /// (apply-to-eviction); ignored by kAckLie.
  Seconds min_delay = 0.0;
  Seconds max_delay = 0.0;
  /// Active window; duration <= 0 means the whole run.
  Seconds start = 0.0;
  Seconds duration = 0.0;
  /// Restrict to one switch; invalid() targets every switch.
  NodeId node = NodeId::invalid();

  [[nodiscard]] bool Covers(Seconds t) const {
    return t >= start && (duration <= 0.0 || t < start + duration);
  }
  [[nodiscard]] bool Targets(NodeId n) const {
    return !node.valid() || node == n;
  }

  friend bool operator==(const GreyFailureSpec& a, const GreyFailureSpec& b) {
    return a.kind == b.kind && a.probability == b.probability &&
           a.min_delay == b.min_delay && a.max_delay == b.max_delay &&
           a.start == b.start && a.duration == b.duration && a.node == b.node;
  }
};

/// A set of grey-failure specs evaluated in declaration order: the first
/// spec that matches (window covers issue time, targets the switch) and
/// wins its Bernoulli draw decides the rule's fate; later specs draw only
/// if earlier ones miss. Empty = healthy dataplane, zero cost.
struct GreyFailureModel {
  std::vector<GreyFailureSpec> specs;

  [[nodiscard]] bool enabled() const { return !specs.empty(); }

  /// Rejects probabilities outside [0, 1], negative or inverted delay
  /// windows, and delayed kinds with a zero-width window. Throws
  /// FaultPlanError naming the first offending spec.
  const GreyFailureModel& Validate() const;

  friend bool operator==(const GreyFailureModel& a, const GreyFailureModel& b) {
    return a.specs == b.specs;
  }
};

/// Outcome of issuing one rule through a grey model.
struct GreyOutcome {
  /// kApplied: rule applied immediately and stays. Otherwise the matching
  /// GreyKind (kStraggler/kRuleLoss carry `delay`).
  enum class Kind : std::uint8_t { kApplied, kAckLie, kStraggler, kRuleLoss };
  Kind kind = Kind::kApplied;
  /// kStraggler: ack-to-apply delay. kRuleLoss: apply-to-eviction delay.
  Seconds delay = 0.0;
};

/// Draws one rule's fate from `model` for a rule issued to `node` at `now`.
/// Specs are tried in declaration order; draw count therefore depends only
/// on (model, node, now, rng state) — deterministic. Used both for fresh
/// installs and for the reconciler's repair re-issues (a repair goes
/// through the same unreliable pipeline that caused the drift).
[[nodiscard]] GreyOutcome SampleGrey(const GreyFailureModel& model, NodeId node,
                                     Seconds now, Rng& rng);

/// Parses one spec from its compact form
/// `kind:prob[:min:max[:start:dur[:node]]]` where kind is one of
/// `acklie|straggler|loss` (2, 4, 6, or 7 colon-separated fields; `node`
/// of -1 targets all switches). Throws FaultPlanError on malformed input.
[[nodiscard]] GreyFailureSpec ParseGreySpec(const std::string& text);

/// Shortest compact form that round-trips through ParseGreySpec.
[[nodiscard]] std::string FormatGreySpec(const GreyFailureSpec& spec);

/// Parses a `+`-joined spec list (the `--grey=` flag / chaos-artifact
/// format), e.g. `acklie:0.3+loss:0.1:1:4`. Empty input = empty model.
[[nodiscard]] GreyFailureModel ParseGreyModel(const std::string& text);

/// `+`-joined FormatGreySpec of every spec; round-trips via ParseGreyModel.
[[nodiscard]] std::string FormatGreyModel(const GreyFailureModel& model);

/// Everything the simulator needs to run under faults: the incident
/// schedule, the flaky-install model (baseline + storm windows), the
/// retry/backoff policy for failed installs, the overload-cascade model,
/// the grey-failure model, and an optional controller-crash point.
/// Disabled (the default) costs nothing on the hot path.
struct FaultConfig {
  FaultPlan plan;
  FlakyInstallModel flaky;
  /// Correlated flaky-install storms; inside a storm window the storm's
  /// model replaces `flaky`.
  std::vector<FlakyStorm> storms;
  RetryPolicy retry;
  CascadeConfig cascade;
  /// Silent dataplane divergence: ack-lies, stragglers, rule loss
  /// (repaired by recon::Reconciler when SimConfig::recon is enabled).
  GreyFailureModel grey;
  /// Controller-crash injection; orthogonal to `enabled()` (a crash can be
  /// injected with a perfectly healthy data plane).
  CrashSpec crash;

  [[nodiscard]] bool enabled() const {
    return !plan.empty() || flaky.enabled() || !storms.empty() ||
           cascade.enabled() || grey.enabled();
  }
};

/// Shape of a randomly generated link-outage plan.
struct RandomLinkFaultOptions {
  /// Number of distinct cables to fail.
  std::size_t failures = 2;
  /// First failure time; subsequent failures are `spacing` apart.
  Seconds first_failure = 1.0;
  Seconds spacing = 2.0;
  /// How long each cable stays down. <= 0 means it never comes back.
  Seconds outage = 4.0;
  /// Restrict victims to fabric links (neither endpoint a host) — host
  /// uplinks have no alternative path, so failing one strands its flows.
  bool fabric_only = true;
};

/// Samples `failures` distinct victim cables from `graph` via `rng` and
/// schedules their outages. Deterministic in (graph, options, rng state).
[[nodiscard]] FaultPlan MakeRandomLinkFaultPlan(
    const topo::Graph& graph, const RandomLinkFaultOptions& options, Rng& rng);

/// Shape of a randomly generated correlated-failure plan over an SRLG
/// catalog: `incidents` groups are sampled without replacement; each becomes
/// a pod-power-style group outage or (with `drain_probability`) a rolling
/// maintenance drain.
struct RandomSrlgFaultOptions {
  std::size_t incidents = 1;
  Seconds first_failure = 1.0;
  Seconds spacing = 3.0;
  /// Group-outage duration (must be > 0: chaos scenarios need recovery to
  /// happen inside the run to be judged).
  Seconds outage = 3.0;
  /// Probability an incident is a rolling drain instead of a group outage.
  double drain_probability = 0.3;
  /// Stagger between members of a rolling drain.
  Seconds drain_stagger = 0.5;
};

/// Samples `incidents` distinct groups from `catalog` via `rng` and
/// schedules correlated incidents over them. Deterministic in
/// (catalog, options, rng state). Groups are declared in the plan in the
/// order sampled.
[[nodiscard]] FaultPlan MakeRandomSrlgFaultPlan(
    const std::vector<SharedRiskGroup>& catalog,
    const RandomSrlgFaultOptions& options, Rng& rng);

}  // namespace nu::fault
