// Deterministic fault schedules. A FaultPlan is a time-ordered list of
// data-plane incidents — cable (link) down/up, switch down/up — plus the
// probabilistic flaky-install model that makes rule installations fallible.
// Plans are plain data: building one draws nothing from any Rng unless the
// random-plan helper is used, and that helper consumes an explicit Rng, so
// a (plan, seed) pair reproduces a run bit-for-bit.
//
// The paper motivates update events with "network failures" as a
// first-class trigger; this module supplies the failure side of that story
// so the schedulers can be exercised under the conditions they exist for.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/types.h"
#include "topo/graph.h"

namespace nu::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kSwitchDown,
  kSwitchUp,
};

[[nodiscard]] const char* ToString(FaultKind kind);

/// One scheduled incident. Link faults name the forward direction of a
/// cable; the injector takes down/up both directions (a cable failure kills
/// both, as with topo::LinkAvoidingPathProvider).
struct FaultSpec {
  Seconds time = 0.0;
  FaultKind kind = FaultKind::kLinkDown;
  LinkId link;  // kLinkDown / kLinkUp
  NodeId node;  // kSwitchDown / kSwitchUp

  [[nodiscard]] bool IsLinkFault() const {
    return kind == FaultKind::kLinkDown || kind == FaultKind::kLinkUp;
  }
  [[nodiscard]] bool IsDown() const {
    return kind == FaultKind::kLinkDown || kind == FaultKind::kSwitchDown;
  }
};

/// Probabilistic model of an unreliable rule-install pipeline: each install
/// attempt independently fails with `failure_probability`, and each
/// attempt's latency is stretched by a uniform factor in
/// [1, 1 + latency_jitter_frac).
struct FlakyInstallModel {
  double failure_probability = 0.0;
  double latency_jitter_frac = 0.0;

  [[nodiscard]] bool enabled() const {
    return failure_probability > 0.0 || latency_jitter_frac > 0.0;
  }
};

/// A time-sorted incident schedule. Add* keeps specs sorted by time (stable
/// for equal times, preserving insertion order — deterministic replay).
class FaultPlan {
 public:
  FaultPlan& AddLinkDown(Seconds time, LinkId link);
  FaultPlan& AddLinkUp(Seconds time, LinkId link);
  /// Down at `time`, back up at `time + outage`.
  FaultPlan& AddLinkOutage(Seconds time, Seconds outage, LinkId link);
  FaultPlan& AddSwitchDown(Seconds time, NodeId node);
  FaultPlan& AddSwitchUp(Seconds time, NodeId node);
  FaultPlan& AddSwitchOutage(Seconds time, Seconds outage, NodeId node);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  [[nodiscard]] std::string DebugString() const;

 private:
  FaultPlan& Add(FaultSpec spec);

  std::vector<FaultSpec> specs_;
};

/// Where in a scheduling round a controller crash fires.
enum class CrashPoint : std::uint8_t {
  /// At the scheduling point of round `at_round`, before any of its work
  /// (right after the checkpoint hook, so it models "crashed immediately
  /// after a snapshot/between rounds").
  kBeforeRound,
  /// After the round's first event has executed and its journal records
  /// are durable; additionally leaves a deliberately torn journal record,
  /// modeling a kill -9 mid-write.
  kMidRound,
};

/// A controller-crash injection point. Unlike data-plane faults this does
/// not model the network failing — it models the CONTROLLER dying, so the
/// simulator aborts by throwing ControllerCrash (no unwinding of committed
/// state, like kill -9). Crash specs are one-shot per process:
/// sim::Simulator::Resume ignores them, otherwise a recovered run would
/// crash at the same round forever.
struct CrashSpec {
  /// 1-based scheduling round at which to die; 0 disables crash injection.
  std::size_t at_round = 0;
  CrashPoint point = CrashPoint::kBeforeRound;

  [[nodiscard]] bool armed() const { return at_round > 0; }
};

/// Thrown by the simulator when an armed CrashSpec fires. Carries no run
/// state on purpose — a crashed controller saves nothing on the way down;
/// recovery works only from what is already on disk.
class ControllerCrash : public std::runtime_error {
 public:
  ControllerCrash(std::size_t round, CrashPoint point)
      : std::runtime_error(
            "controller crash injected at round " + std::to_string(round) +
            (point == CrashPoint::kMidRound ? " (mid-round)" : " (pre-round)")),
        round_(round),
        point_(point) {}

  [[nodiscard]] std::size_t round() const { return round_; }
  [[nodiscard]] CrashPoint point() const { return point_; }

 private:
  std::size_t round_;
  CrashPoint point_;
};

/// Everything the simulator needs to run under faults: the incident
/// schedule, the flaky-install model, the retry/backoff policy for
/// failed installs, and an optional controller-crash point. Disabled (the
/// default) costs nothing on the hot path.
struct FaultConfig {
  FaultPlan plan;
  FlakyInstallModel flaky;
  RetryPolicy retry;
  /// Controller-crash injection; orthogonal to `enabled()` (a crash can be
  /// injected with a perfectly healthy data plane).
  CrashSpec crash;

  [[nodiscard]] bool enabled() const {
    return !plan.empty() || flaky.enabled();
  }
};

/// Shape of a randomly generated link-outage plan.
struct RandomLinkFaultOptions {
  /// Number of distinct cables to fail.
  std::size_t failures = 2;
  /// First failure time; subsequent failures are `spacing` apart.
  Seconds first_failure = 1.0;
  Seconds spacing = 2.0;
  /// How long each cable stays down. <= 0 means it never comes back.
  Seconds outage = 4.0;
  /// Restrict victims to fabric links (neither endpoint a host) — host
  /// uplinks have no alternative path, so failing one strands its flows.
  bool fabric_only = true;
};

/// Samples `failures` distinct victim cables from `graph` via `rng` and
/// schedules their outages. Deterministic in (graph, options, rng state).
[[nodiscard]] FaultPlan MakeRandomLinkFaultPlan(
    const topo::Graph& graph, const RandomLinkFaultOptions& options, Rng& rng);

}  // namespace nu::fault
