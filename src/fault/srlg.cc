#include "fault/srlg.h"

namespace nu::fault {

std::vector<SharedRiskGroup> DeriveFatTreeSrlgs(const topo::FatTree& fabric) {
  const std::size_t k = fabric.k();
  const std::size_t half = k / 2;
  std::vector<SharedRiskGroup> groups;
  groups.reserve(k + half);
  for (std::size_t pod = 0; pod < fabric.pod_count(); ++pod) {
    SharedRiskGroup group;
    group.name = "pod" + std::to_string(pod);
    group.nodes.reserve(k);
    for (std::size_t e = 0; e < half; ++e) {
      group.nodes.push_back(fabric.edge(pod, e));
    }
    for (std::size_t a = 0; a < half; ++a) {
      group.nodes.push_back(fabric.agg(pod, a));
    }
    groups.push_back(std::move(group));
  }
  // Core switch c attaches to aggregation switch c / (k/2) of every pod, so
  // plane j owns cores [j * k/2, (j+1) * k/2).
  for (std::size_t plane = 0; plane < half; ++plane) {
    SharedRiskGroup group;
    group.name = "core-plane" + std::to_string(plane);
    group.nodes.reserve(half);
    for (std::size_t c = 0; c < half; ++c) {
      group.nodes.push_back(fabric.core(plane * half + c));
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<SharedRiskGroup> DeriveLeafSpineSrlgs(
    const topo::LeafSpine& fabric) {
  std::vector<SharedRiskGroup> groups;
  groups.reserve(fabric.config().spines + fabric.config().leaves);
  for (std::size_t s = 0; s < fabric.config().spines; ++s) {
    SharedRiskGroup group;
    group.name = "spine" + std::to_string(s);
    group.nodes.push_back(fabric.spine(s));
    groups.push_back(std::move(group));
  }
  for (std::size_t l = 0; l < fabric.config().leaves; ++l) {
    SharedRiskGroup group;
    group.name = "leaf" + std::to_string(l);
    group.nodes.push_back(fabric.leaf(l));
    groups.push_back(std::move(group));
  }
  return groups;
}

bool GroupIdsValid(const SharedRiskGroup& group, const topo::Graph& graph) {
  for (NodeId node : group.nodes) {
    if (!node.valid() || node.value() >= graph.node_count()) return false;
  }
  for (LinkId link : group.links) {
    if (!link.valid() || link.value() >= graph.link_count()) return false;
  }
  return true;
}

}  // namespace nu::fault
