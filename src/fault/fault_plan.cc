#include "fault/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace nu::fault {
namespace {

[[noreturn]] void Fail(const std::string& what) { throw FaultPlanError(what); }

// Shortest round-trip decimal formatting via std::to_chars: the emitted
// bytes are identical across platforms and parse back to the exact double,
// which is what makes text artifacts a determinism oracle.
std::string FormatTime(double value) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  NU_CHECK(res.ec == std::errc{});
  return std::string(buf, res.ptr);
}

double ParseTime(std::string_view token, const std::string& context) {
  double value = 0.0;
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (res.ec != std::errc{} || res.ptr != token.data() + token.size()) {
    Fail(context + ": bad time '" + std::string(token) + "'");
  }
  return value;
}

std::uint64_t ParseUint(std::string_view token, const std::string& context) {
  std::uint64_t value = 0;
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (res.ec != std::errc{} || res.ptr != token.data() + token.size()) {
    Fail(context + ": bad id '" + std::string(token) + "'");
  }
  return value;
}

// Splits a line into whitespace-separated tokens.
std::vector<std::string_view> Tokens(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

// Splits "1,2,3" into ids; empty value means the empty list.
template <typename Id>
std::vector<Id> ParseIdList(std::string_view value, const std::string& context) {
  std::vector<Id> out;
  while (!value.empty()) {
    const std::size_t comma = value.find(',');
    const std::string_view item = value.substr(0, comma);
    if (item.empty()) Fail(context + ": empty id in list");
    out.push_back(Id{static_cast<typename Id::rep_type>(
        ParseUint(item, context))});
    if (comma == std::string_view::npos) break;
    value.remove_prefix(comma + 1);
  }
  return out;
}

// "key=value" accessor; throws when the token does not start with `key=`.
std::string_view ExpectKey(std::string_view token, std::string_view key,
                           const std::string& context) {
  if (token.size() < key.size() + 1 || token.substr(0, key.size()) != key ||
      token[key.size()] != '=') {
    Fail(context + ": expected " + std::string(key) + "=..., got '" +
         std::string(token) + "'");
  }
  return token.substr(key.size() + 1);
}

template <typename Id>
std::string JoinIds(const std::vector<Id>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i].value());
  }
  return out;
}

constexpr std::string_view kFormatHeader = "netupdate-fault-plan v1";

}  // namespace

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kSwitchDown:
      return "switch-down";
    case FaultKind::kSwitchUp:
      return "switch-up";
    case FaultKind::kGroupDown:
      return "group-down";
    case FaultKind::kGroupUp:
      return "group-up";
  }
  return "?";
}

FaultPlan& FaultPlan::Add(FaultSpec spec) {
  if (spec.time < 0.0) {
    Fail("spec time must be >= 0, got " + FormatTime(spec.time));
  }
  if (spec.IsGroupFault()) {
    if (spec.group >= groups_.size()) {
      Fail("group index " + std::to_string(spec.group) + " out of range (" +
           std::to_string(groups_.size()) + " groups declared)");
    }
  } else if (spec.IsLinkFault()) {
    if (!spec.link.valid()) Fail("link fault with invalid link id");
  } else {
    if (!spec.node.valid()) Fail("switch fault with invalid node id");
  }
  // Insert before the first later spec: stable order for equal times.
  const auto it = std::upper_bound(
      specs_.begin(), specs_.end(), spec.time,
      [](Seconds t, const FaultSpec& s) { return t < s.time; });
  specs_.insert(it, spec);
  return *this;
}

FaultPlan& FaultPlan::AddLinkDown(Seconds time, LinkId link) {
  return Add(FaultSpec{time, FaultKind::kLinkDown, link, NodeId::invalid()});
}

FaultPlan& FaultPlan::AddLinkUp(Seconds time, LinkId link) {
  return Add(FaultSpec{time, FaultKind::kLinkUp, link, NodeId::invalid()});
}

FaultPlan& FaultPlan::AddLinkOutage(Seconds time, Seconds outage,
                                    LinkId link) {
  if (outage <= 0.0) {
    Fail("link outage duration must be > 0 (got " + FormatTime(outage) +
         "); use AddLinkDown for a permanent failure");
  }
  AddLinkDown(time, link);
  AddLinkUp(time + outage, link);
  return *this;
}

FaultPlan& FaultPlan::AddSwitchDown(Seconds time, NodeId node) {
  return Add(FaultSpec{time, FaultKind::kSwitchDown, LinkId::invalid(), node});
}

FaultPlan& FaultPlan::AddSwitchUp(Seconds time, NodeId node) {
  return Add(FaultSpec{time, FaultKind::kSwitchUp, LinkId::invalid(), node});
}

FaultPlan& FaultPlan::AddSwitchOutage(Seconds time, Seconds outage,
                                      NodeId node) {
  if (outage <= 0.0) {
    Fail("switch outage duration must be > 0 (got " + FormatTime(outage) +
         "); use AddSwitchDown for a permanent failure");
  }
  AddSwitchDown(time, node);
  AddSwitchUp(time + outage, node);
  return *this;
}

std::size_t FaultPlan::AddGroup(SharedRiskGroup group) {
  if (group.empty()) Fail("shared-risk group '" + group.name + "' is empty");
  if (group.name.empty()) Fail("shared-risk group with empty name");
  for (char c : group.name) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      Fail("shared-risk group name '" + group.name +
           "' contains whitespace (names must be single tokens so plans "
           "serialize line-oriented)");
    }
  }
  groups_.push_back(std::move(group));
  return groups_.size() - 1;
}

FaultPlan& FaultPlan::AddGroupDown(Seconds time, std::size_t group) {
  return Add(FaultSpec{time, FaultKind::kGroupDown, LinkId::invalid(),
                       NodeId::invalid(), group});
}

FaultPlan& FaultPlan::AddGroupUp(Seconds time, std::size_t group) {
  return Add(FaultSpec{time, FaultKind::kGroupUp, LinkId::invalid(),
                       NodeId::invalid(), group});
}

FaultPlan& FaultPlan::AddGroupOutage(Seconds time, Seconds outage,
                                     std::size_t group) {
  if (outage <= 0.0) {
    Fail("group outage duration must be > 0 (got " + FormatTime(outage) +
         "); use AddGroupDown for a permanent failure");
  }
  AddGroupDown(time, group);
  AddGroupUp(time + outage, group);
  return *this;
}

FaultPlan& FaultPlan::AddRollingDrain(Seconds time, Seconds stagger,
                                      Seconds outage, std::size_t group) {
  if (group >= groups_.size()) {
    Fail("rolling drain over undeclared group index " + std::to_string(group));
  }
  if (stagger < 0.0) {
    Fail("rolling drain stagger must be >= 0, got " + FormatTime(stagger));
  }
  if (outage <= 0.0) {
    Fail("rolling drain outage must be > 0, got " + FormatTime(outage));
  }
  // Primitive per-element outages: each member is its own transition —
  // that's what distinguishes a drain from a power event. Nodes first, then
  // links, declaration order; the group is only a membership list here.
  const SharedRiskGroup& g = groups_[group];
  std::size_t i = 0;
  for (NodeId node : g.nodes) {
    AddSwitchOutage(time + static_cast<double>(i++) * stagger, outage, node);
  }
  for (LinkId link : g.links) {
    AddLinkOutage(time + static_cast<double>(i++) * stagger, outage, link);
  }
  return *this;
}

const FaultPlan& FaultPlan::Validate(const topo::Graph& graph) const {
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    if (!GroupIdsValid(groups_[gi], graph)) {
      Fail("group " + std::to_string(gi) + " ('" + groups_[gi].name +
           "') names a link/node id that does not exist in the topology");
    }
  }
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& s = specs_[i];
    if (s.IsLinkFault()) {
      if (s.link.value() >= graph.link_count()) {
        Fail("spec " + std::to_string(i) + " (" + ToString(s.kind) + " t=" +
             FormatTime(s.time) + ") names nonexistent link " +
             std::to_string(s.link.value()) + " (topology has " +
             std::to_string(graph.link_count()) + " links)");
      }
    } else if (!s.IsGroupFault()) {
      if (s.node.value() >= graph.node_count()) {
        Fail("spec " + std::to_string(i) + " (" + ToString(s.kind) + " t=" +
             FormatTime(s.time) + ") names nonexistent node " +
             std::to_string(s.node.value()) + " (topology has " +
             std::to_string(graph.node_count()) + " nodes)");
      }
    }
    // Group indices are range-checked at Add() time; member ids were just
    // checked above.
  }
  return *this;
}

void FaultPlan::SaveText(std::ostream& out) const {
  out << kFormatHeader << '\n';
  for (const SharedRiskGroup& g : groups_) {
    out << "group " << g.name << " nodes=" << JoinIds(g.nodes)
        << " links=" << JoinIds(g.links) << '\n';
  }
  for (const FaultSpec& s : specs_) {
    out << ToString(s.kind) << " t=" << FormatTime(s.time);
    if (s.IsGroupFault()) {
      out << " group=" << s.group;
    } else if (s.IsLinkFault()) {
      out << " link=" << s.link.value();
    } else {
      out << " node=" << s.node.value();
    }
    out << '\n';
  }
}

FaultPlan FaultPlan::LoadText(std::istream& in) {
  FaultPlan plan;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string context = "line " + std::to_string(line_no);
    // Comments and blank lines are for hand-written plans; SaveText never
    // emits them.
    const auto tokens = Tokens(line);
    if (tokens.empty() || tokens[0].front() == '#') continue;
    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != "netupdate-fault-plan" ||
          tokens[1] != "v1") {
        Fail(context + ": expected header '" + std::string(kFormatHeader) +
             "'");
      }
      saw_header = true;
      continue;
    }
    const std::string_view head = tokens[0];
    if (head == "group") {
      if (tokens.size() != 4) {
        Fail(context + ": group line needs: group <name> nodes=... links=...");
      }
      SharedRiskGroup g;
      g.name = std::string(tokens[1]);
      g.nodes =
          ParseIdList<NodeId>(ExpectKey(tokens[2], "nodes", context), context);
      g.links =
          ParseIdList<LinkId>(ExpectKey(tokens[3], "links", context), context);
      plan.AddGroup(std::move(g));
      continue;
    }
    if (tokens.size() != 3) {
      Fail(context + ": fault line needs: <kind> t=<time> <target>=<id>");
    }
    const Seconds time = ParseTime(ExpectKey(tokens[1], "t", context), context);
    if (head == "link-down" || head == "link-up") {
      const LinkId link{static_cast<LinkId::rep_type>(
          ParseUint(ExpectKey(tokens[2], "link", context), context))};
      plan.Add(FaultSpec{time,
                         head == "link-down" ? FaultKind::kLinkDown
                                             : FaultKind::kLinkUp,
                         link, NodeId::invalid()});
    } else if (head == "switch-down" || head == "switch-up") {
      const NodeId node{static_cast<NodeId::rep_type>(
          ParseUint(ExpectKey(tokens[2], "node", context), context))};
      plan.Add(FaultSpec{time,
                         head == "switch-down" ? FaultKind::kSwitchDown
                                               : FaultKind::kSwitchUp,
                         LinkId::invalid(), node});
    } else if (head == "group-down" || head == "group-up") {
      const std::size_t group = static_cast<std::size_t>(
          ParseUint(ExpectKey(tokens[2], "group", context), context));
      plan.Add(FaultSpec{time,
                         head == "group-down" ? FaultKind::kGroupDown
                                              : FaultKind::kGroupUp,
                         LinkId::invalid(), NodeId::invalid(), group});
    } else {
      Fail(context + ": unknown fault kind '" + std::string(head) + "'");
    }
  }
  if (!saw_header) Fail("missing header '" + std::string(kFormatHeader) + "'");
  return plan;
}

void FaultPlan::SaveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) Fail("cannot open '" + path + "' for writing");
  SaveText(out);
  out.flush();
  if (!out) Fail("write to '" + path + "' failed");
}

FaultPlan FaultPlan::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Fail("cannot open '" + path + "' for reading");
  return LoadText(in);
}

std::string FaultPlan::DebugString() const {
  std::ostringstream os;
  os << "fault-plan{";
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& s = specs_[i];
    if (i > 0) os << ", ";
    os << "t=" << s.time << " " << ToString(s.kind) << " ";
    if (s.IsGroupFault()) {
      os << "group " << groups_[s.group].name;
    } else if (s.IsLinkFault()) {
      os << "link " << s.link;
    } else {
      os << "node " << s.node;
    }
  }
  os << "}";
  return os.str();
}

bool operator==(const FaultPlan& a, const FaultPlan& b) {
  return a.specs_ == b.specs_ && a.groups_ == b.groups_;
}

FaultPlan MakeRandomLinkFaultPlan(const topo::Graph& graph,
                                  const RandomLinkFaultOptions& options,
                                  Rng& rng) {
  // Candidate cables: one direction per pair (skip the reverse twin so a
  // cable is sampled once), optionally fabric-only.
  std::vector<LinkId> candidates;
  for (const topo::Link& l : graph.links()) {
    if (options.fabric_only &&
        (graph.node(l.src).role == topo::NodeRole::kHost ||
         graph.node(l.dst).role == topo::NodeRole::kHost)) {
      continue;
    }
    const LinkId reverse = graph.FindLink(l.dst, l.src);
    if (reverse.valid() && reverse < l.id) continue;  // twin already listed
    candidates.push_back(l.id);
  }
  FaultPlan plan;
  if (candidates.empty()) return plan;
  const std::size_t count = std::min(options.failures, candidates.size());
  const auto picks = rng.SampleWithoutReplacement(candidates.size(), count);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    const Seconds at =
        options.first_failure + static_cast<double>(i) * options.spacing;
    if (options.outage > 0.0) {
      plan.AddLinkOutage(at, options.outage, candidates[picks[i]]);
    } else {
      plan.AddLinkDown(at, candidates[picks[i]]);  // permanent failure
    }
  }
  return plan;
}

FaultPlan MakeRandomSrlgFaultPlan(const std::vector<SharedRiskGroup>& catalog,
                                  const RandomSrlgFaultOptions& options,
                                  Rng& rng) {
  FaultPlan plan;
  if (catalog.empty()) return plan;
  if (options.outage <= 0.0) {
    Fail("random SRLG plans need outage > 0 (recovery must happen inside "
         "the run)");
  }
  const std::size_t count = std::min(options.incidents, catalog.size());
  const auto picks = rng.SampleWithoutReplacement(catalog.size(), count);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    const std::size_t index = plan.AddGroup(catalog[picks[i]]);
    const Seconds at =
        options.first_failure + static_cast<double>(i) * options.spacing;
    if (rng.Bernoulli(options.drain_probability)) {
      plan.AddRollingDrain(at, options.drain_stagger, options.outage, index);
    } else {
      plan.AddGroupOutage(at, options.outage, index);
    }
  }
  return plan;
}

const char* ToString(GreyKind kind) {
  switch (kind) {
    case GreyKind::kAckLie:
      return "acklie";
    case GreyKind::kStraggler:
      return "straggler";
    case GreyKind::kRuleLoss:
      return "loss";
  }
  return "?";
}

namespace {

GreyKind ParseGreyKind(std::string_view token, const std::string& context) {
  if (token == "acklie") return GreyKind::kAckLie;
  if (token == "straggler") return GreyKind::kStraggler;
  if (token == "loss") return GreyKind::kRuleLoss;
  Fail(context + ": unknown grey kind '" + std::string(token) + "'");
}

// Splits on ':' keeping empty fields (an empty field is malformed input
// and should fail in the numeric parser with a clear message).
std::vector<std::string_view> ColonFields(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

}  // namespace

const GreyFailureModel& GreyFailureModel::Validate() const {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const GreyFailureSpec& s = specs[i];
    const std::string context =
        "grey spec " + std::to_string(i) + " (" + ToString(s.kind) + ")";
    if (s.probability < 0.0 || s.probability > 1.0) {
      Fail(context + ": probability must be in [0, 1]");
    }
    if (s.min_delay < 0.0 || s.max_delay < s.min_delay) {
      Fail(context + ": need 0 <= min_delay <= max_delay");
    }
    const bool delayed =
        s.kind == GreyKind::kStraggler || s.kind == GreyKind::kRuleLoss;
    if (delayed && s.max_delay <= 0.0) {
      Fail(context + ": delayed kinds need max_delay > 0");
    }
  }
  return *this;
}

GreyOutcome SampleGrey(const GreyFailureModel& model, NodeId node, Seconds now,
                       Rng& rng) {
  for (const GreyFailureSpec& s : model.specs) {
    if (!s.Covers(now) || !s.Targets(node)) continue;
    if (!rng.Bernoulli(s.probability)) continue;
    GreyOutcome out;
    switch (s.kind) {
      case GreyKind::kAckLie:
        out.kind = GreyOutcome::Kind::kAckLie;
        return out;
      case GreyKind::kStraggler:
        out.kind = GreyOutcome::Kind::kStraggler;
        out.delay = rng.Uniform(s.min_delay, s.max_delay);
        return out;
      case GreyKind::kRuleLoss:
        out.kind = GreyOutcome::Kind::kRuleLoss;
        out.delay = rng.Uniform(s.min_delay, s.max_delay);
        return out;
    }
  }
  return GreyOutcome{};
}

GreyFailureSpec ParseGreySpec(const std::string& text) {
  const std::string context = "grey spec '" + text + "'";
  const auto fields = ColonFields(text);
  if (fields.size() != 2 && fields.size() != 4 && fields.size() != 6 &&
      fields.size() != 7) {
    Fail(context + ": expected kind:prob[:min:max[:start:dur[:node]]]");
  }
  GreyFailureSpec spec;
  spec.kind = ParseGreyKind(fields[0], context);
  spec.probability = ParseTime(fields[1], context);
  if (fields.size() >= 4) {
    spec.min_delay = ParseTime(fields[2], context);
    spec.max_delay = ParseTime(fields[3], context);
  }
  if (fields.size() >= 6) {
    spec.start = ParseTime(fields[4], context);
    spec.duration = ParseTime(fields[5], context);
  }
  if (fields.size() == 7) {
    if (fields[6] != "-1") {
      spec.node = NodeId{static_cast<NodeId::rep_type>(
          ParseUint(fields[6], context))};
    }
  }
  GreyFailureModel probe;
  probe.specs.push_back(spec);
  probe.Validate();
  return spec;
}

std::string FormatGreySpec(const GreyFailureSpec& spec) {
  std::string out = ToString(spec.kind);
  auto append = [&out](const std::string& field) {
    out += ':';
    out += field;
  };
  append(FormatTime(spec.probability));
  const bool has_node = spec.node.valid();
  const bool has_window = spec.start != 0.0 || spec.duration != 0.0;
  const bool has_delay = spec.min_delay != 0.0 || spec.max_delay != 0.0;
  if (has_delay || has_window || has_node) {
    append(FormatTime(spec.min_delay));
    append(FormatTime(spec.max_delay));
  }
  if (has_window || has_node) {
    append(FormatTime(spec.start));
    append(FormatTime(spec.duration));
  }
  if (has_node) append(std::to_string(spec.node.value()));
  return out;
}

GreyFailureModel ParseGreyModel(const std::string& text) {
  GreyFailureModel model;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t plus = text.find('+', start);
    const std::string piece =
        text.substr(start, plus == std::string::npos ? std::string::npos
                                                     : plus - start);
    if (!piece.empty()) model.specs.push_back(ParseGreySpec(piece));
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  model.Validate();
  return model;
}

std::string FormatGreyModel(const GreyFailureModel& model) {
  std::string out;
  for (const GreyFailureSpec& spec : model.specs) {
    if (!out.empty()) out += "+";
    out += FormatGreySpec(spec);
  }
  return out;
}

}  // namespace nu::fault
