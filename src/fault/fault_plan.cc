#include "fault/fault_plan.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace nu::fault {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kSwitchDown:
      return "switch-down";
    case FaultKind::kSwitchUp:
      return "switch-up";
  }
  return "?";
}

FaultPlan& FaultPlan::Add(FaultSpec spec) {
  NU_EXPECTS(spec.time >= 0.0);
  NU_EXPECTS(spec.IsLinkFault() ? spec.link.valid() : spec.node.valid());
  // Insert before the first later spec: stable order for equal times.
  const auto it = std::upper_bound(
      specs_.begin(), specs_.end(), spec.time,
      [](Seconds t, const FaultSpec& s) { return t < s.time; });
  specs_.insert(it, spec);
  return *this;
}

FaultPlan& FaultPlan::AddLinkDown(Seconds time, LinkId link) {
  return Add(FaultSpec{time, FaultKind::kLinkDown, link, NodeId::invalid()});
}

FaultPlan& FaultPlan::AddLinkUp(Seconds time, LinkId link) {
  return Add(FaultSpec{time, FaultKind::kLinkUp, link, NodeId::invalid()});
}

FaultPlan& FaultPlan::AddLinkOutage(Seconds time, Seconds outage,
                                    LinkId link) {
  AddLinkDown(time, link);
  if (outage > 0.0) AddLinkUp(time + outage, link);
  return *this;
}

FaultPlan& FaultPlan::AddSwitchDown(Seconds time, NodeId node) {
  return Add(FaultSpec{time, FaultKind::kSwitchDown, LinkId::invalid(), node});
}

FaultPlan& FaultPlan::AddSwitchUp(Seconds time, NodeId node) {
  return Add(FaultSpec{time, FaultKind::kSwitchUp, LinkId::invalid(), node});
}

FaultPlan& FaultPlan::AddSwitchOutage(Seconds time, Seconds outage,
                                      NodeId node) {
  AddSwitchDown(time, node);
  if (outage > 0.0) AddSwitchUp(time + outage, node);
  return *this;
}

std::string FaultPlan::DebugString() const {
  std::ostringstream os;
  os << "fault-plan{";
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const FaultSpec& s = specs_[i];
    if (i > 0) os << ", ";
    os << "t=" << s.time << " " << ToString(s.kind) << " ";
    if (s.IsLinkFault()) {
      os << "link " << s.link;
    } else {
      os << "node " << s.node;
    }
  }
  os << "}";
  return os.str();
}

FaultPlan MakeRandomLinkFaultPlan(const topo::Graph& graph,
                                  const RandomLinkFaultOptions& options,
                                  Rng& rng) {
  // Candidate cables: one direction per pair (skip the reverse twin so a
  // cable is sampled once), optionally fabric-only.
  std::vector<LinkId> candidates;
  for (const topo::Link& l : graph.links()) {
    if (options.fabric_only &&
        (graph.node(l.src).role == topo::NodeRole::kHost ||
         graph.node(l.dst).role == topo::NodeRole::kHost)) {
      continue;
    }
    const LinkId reverse = graph.FindLink(l.dst, l.src);
    if (reverse.valid() && reverse < l.id) continue;  // twin already listed
    candidates.push_back(l.id);
  }
  FaultPlan plan;
  if (candidates.empty()) return plan;
  const std::size_t count = std::min(options.failures, candidates.size());
  const auto picks = rng.SampleWithoutReplacement(candidates.size(), count);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    const Seconds at =
        options.first_failure + static_cast<double>(i) * options.spacing;
    plan.AddLinkOutage(at, options.outage, candidates[picks[i]]);
  }
  return plan;
}

}  // namespace nu::fault
