#include "fault/injector.h"

#include <algorithm>

#include "common/check.h"

namespace nu::fault {

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

InstallTrial FaultInjector::SampleInstall(Seconds attempt_latency) {
  NU_EXPECTS(attempt_latency >= 0.0);
  const FlakyInstallModel& flaky = config_.flaky;
  InstallTrial trial;
  if (!flaky.enabled()) return trial;
  NU_EXPECTS(flaky.failure_probability >= 0.0 &&
             flaky.failure_probability < 1.0);

  const std::size_t max_attempts = std::max<std::size_t>(
      1, config_.retry.max_attempts);
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    const double factor =
        1.0 + flaky.latency_jitter_frac * rng_.Uniform01();
    if (!rng_.Bernoulli(flaky.failure_probability)) {
      trial.attempts = attempt;
      trial.latency_factor = factor;
      return trial;
    }
    // Failed attempt: its (jittered) latency is spent, then the backoff.
    trial.wasted_delay += attempt_latency * factor;
    if (attempt < max_attempts) {
      trial.wasted_delay += config_.retry.BackoffDelay(attempt, rng_);
    }
  }
  trial.attempts = max_attempts;
  trial.success = false;
  return trial;
}

namespace {

/// Links whose failure strands flows under `spec`.
std::vector<LinkId> DeadLinks(const net::Network& network,
                              const FaultSpec& spec) {
  const topo::Graph& graph = network.graph();
  std::vector<LinkId> links;
  if (spec.IsLinkFault()) {
    links.push_back(spec.link);
    const topo::Link& l = graph.link(spec.link);
    const LinkId reverse = graph.FindLink(l.dst, l.src);
    if (reverse.valid()) links.push_back(reverse);
  } else {
    for (LinkId lid : graph.OutLinks(spec.node)) links.push_back(lid);
    for (LinkId lid : graph.InLinks(spec.node)) links.push_back(lid);
  }
  return links;
}

}  // namespace

std::vector<FlowId> AffectedFlows(const net::Network& network,
                                  const FaultSpec& spec) {
  if (!spec.IsDown()) return {};
  std::vector<FlowId> affected;
  for (LinkId lid : DeadLinks(network, spec)) {
    for (std::uint32_t rep : network.LinkFlowIds(lid)) {
      affected.push_back(FlowId{rep});
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

void ApplyFaultState(net::Network& network, const FaultSpec& spec) {
  const bool up = !spec.IsDown();
  if (spec.IsLinkFault()) {
    const topo::Graph& graph = network.graph();
    network.SetLinkUp(spec.link, up);
    const topo::Link& l = graph.link(spec.link);
    const LinkId reverse = graph.FindLink(l.dst, l.src);
    if (reverse.valid()) network.SetLinkUp(reverse, up);
  } else {
    network.SetNodeUp(spec.node, up);
  }
}

}  // namespace nu::fault
