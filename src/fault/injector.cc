#include "fault/injector.h"

#include <algorithm>

#include "common/check.h"

namespace nu::fault {

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

InstallTrial FaultInjector::SampleInstall(Seconds attempt_latency,
                                          Seconds now) {
  NU_EXPECTS(attempt_latency >= 0.0);
  // The active model: a storm window covering `now` overrides the baseline.
  // First-declared storm wins on overlap — deterministic and documented.
  const FlakyInstallModel* flaky = &config_.flaky;
  for (const FlakyStorm& storm : config_.storms) {
    if (storm.Covers(now)) {
      flaky = &storm.model;
      break;
    }
  }
  InstallTrial trial;
  if (!flaky->enabled()) return trial;
  NU_EXPECTS(flaky->failure_probability >= 0.0 &&
             flaky->failure_probability < 1.0);

  const std::size_t max_attempts = std::max<std::size_t>(
      1, config_.retry.max_attempts);
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    const double factor =
        1.0 + flaky->latency_jitter_frac * rng_.Uniform01();
    if (!rng_.Bernoulli(flaky->failure_probability)) {
      trial.attempts = attempt;
      trial.latency_factor = factor;
      return trial;
    }
    // Failed attempt: its (jittered) latency is spent, then the backoff.
    trial.wasted_delay += attempt_latency * factor;
    if (attempt < max_attempts) {
      trial.wasted_delay += config_.retry.BackoffDelay(attempt, rng_);
    }
  }
  trial.attempts = max_attempts;
  trial.success = false;
  return trial;
}

namespace {

/// Adds the cable's both directions to `links`.
void AddCable(const topo::Graph& graph, LinkId link,
              std::vector<LinkId>& links) {
  links.push_back(link);
  const topo::Link& l = graph.link(link);
  const LinkId reverse = graph.FindLink(l.dst, l.src);
  if (reverse.valid()) links.push_back(reverse);
}

/// Adds every link incident to `node` to `links`.
void AddIncident(const topo::Graph& graph, NodeId node,
                 std::vector<LinkId>& links) {
  for (LinkId lid : graph.OutLinks(node)) links.push_back(lid);
  for (LinkId lid : graph.InLinks(node)) links.push_back(lid);
}

/// Links whose failure strands flows under `spec`.
std::vector<LinkId> DeadLinks(const net::Network& network,
                              const FaultSpec& spec,
                              std::span<const SharedRiskGroup> groups) {
  const topo::Graph& graph = network.graph();
  std::vector<LinkId> links;
  if (spec.IsGroupFault()) {
    NU_EXPECTS(spec.group < groups.size());
    const SharedRiskGroup& g = groups[spec.group];
    for (NodeId node : g.nodes) AddIncident(graph, node, links);
    for (LinkId link : g.links) AddCable(graph, link, links);
  } else if (spec.IsLinkFault()) {
    AddCable(graph, spec.link, links);
  } else {
    AddIncident(graph, spec.node, links);
  }
  return links;
}

}  // namespace

std::vector<FlowId> AffectedFlows(const net::Network& network,
                                  const FaultSpec& spec,
                                  std::span<const SharedRiskGroup> groups) {
  if (!spec.IsDown()) return {};
  std::vector<FlowId> affected;
  for (LinkId lid : DeadLinks(network, spec, groups)) {
    for (std::uint32_t rep : network.LinkFlowIds(lid)) {
      affected.push_back(FlowId{rep});
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

std::vector<FlowId> AffectedFlows(const net::Network& network,
                                  const FaultSpec& spec) {
  NU_EXPECTS(!spec.IsGroupFault());
  return AffectedFlows(network, spec, {});
}

void ApplyFaultState(net::Network& network, const FaultSpec& spec,
                     std::span<const SharedRiskGroup> groups) {
  const bool up = !spec.IsDown();
  const topo::Graph& graph = network.graph();
  if (spec.IsGroupFault()) {
    NU_EXPECTS(spec.group < groups.size());
    const SharedRiskGroup& g = groups[spec.group];
    std::vector<LinkId> links;
    links.reserve(g.links.size() * 2);
    for (LinkId link : g.links) AddCable(graph, link, links);
    // One topology transition for the whole group.
    network.SetElementsUp(links, g.nodes, up);
  } else if (spec.IsLinkFault()) {
    network.SetLinkUp(spec.link, up);
    const topo::Link& l = graph.link(spec.link);
    const LinkId reverse = graph.FindLink(l.dst, l.src);
    if (reverse.valid()) network.SetLinkUp(reverse, up);
  } else {
    network.SetNodeUp(spec.node, up);
  }
}

void ApplyFaultState(net::Network& network, const FaultSpec& spec) {
  NU_EXPECTS(!spec.IsGroupFault());
  ApplyFaultState(network, spec, {});
}

}  // namespace nu::fault
