// Scheduler construction by name/kind — shared by benches, examples, and the
// experiment runner so configurations can name the policy textually.
#pragma once

#include <memory>
#include <string>

#include "sched/fifo.h"
#include "sched/lmtf.h"
#include "sched/plmtf.h"
#include "sched/reorder.h"
#include "sched/sjf.h"

namespace nu::sched {

enum class SchedulerKind : std::uint8_t {
  kFifo,
  kReorder,
  kLmtf,
  kPlmtf,
  kSjf,
};

[[nodiscard]] const char* ToString(SchedulerKind kind);

/// Parses "fifo" | "reorder" | "lmtf" | "p-lmtf" (or "plmtf") | "sjf-size"
/// (or "sjf"). Aborts on unknown names.
[[nodiscard]] SchedulerKind ParseSchedulerKind(const std::string& name);

[[nodiscard]] std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind,
                                                       LmtfConfig config = {});

}  // namespace nu::sched
