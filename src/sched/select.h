// Candidate selection shared by the LMTF-family schedulers and the sharded
// engine's distributed argmin. One rule, one implementation: the cheapest
// candidate wins under strict <, so on ties the earlier queue position
// (candidates are listed in ascending arrival order) keeps FIFO order.
// The sharded probe path computes each shard's local minimum with the same
// rule and merges the shard minima; because strict-< with the position
// tie-break is associative over ordered slices, the merge equals the global
// scan — the property the engine NU_CHECKs on every batch.
#pragma once

#include <cstddef>
#include <span>

#include "common/check.h"
#include "common/types.h"

namespace nu::sched {

/// The winning candidate among `candidates` (queue positions in ascending
/// order) with per-candidate `costs`. Returns the candidate value, exactly
/// as LmtfScheduler's inline scan always has: strict <, first-listed wins
/// ties.
[[nodiscard]] inline std::size_t CheapestCandidate(
    std::span<const std::size_t> candidates, std::span<const Mbps> costs) {
  NU_EXPECTS(!candidates.empty());
  NU_EXPECTS(costs.size() >= candidates.size());
  std::size_t cheapest = candidates[0];
  Mbps cheapest_cost = costs[0];
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (costs[i] < cheapest_cost) {
      cheapest = candidates[i];
      cheapest_cost = costs[i];
    }
  }
  return cheapest;
}

/// One shard's local minimum over its slice of the candidate list.
struct ShardMinimum {
  /// Queue position of the slice's cheapest candidate.
  std::size_t candidate = 0;
  Mbps cost = 0.0;
  bool valid = false;
};

/// Folds a shard's (candidate, cost) pair into a running minimum. Merge
/// order must follow ascending candidate position of the slices (the
/// mailbox's canonical order provides it); then strict-< with
/// earlier-position-wins reproduces the global scan exactly.
inline void MergeShardMinimum(ShardMinimum& into, std::size_t candidate,
                              Mbps cost) {
  if (!into.valid || cost < into.cost) {
    into.candidate = candidate;
    into.cost = cost;
    into.valid = true;
  } else if (cost == into.cost && candidate < into.candidate) {
    into.candidate = candidate;
  }
}

}  // namespace nu::sched
