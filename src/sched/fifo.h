// FIFO: strict arrival-order execution — the fairness baseline of the
// paper's evaluation. No probes, so minimal plan time, but suffers
// head-of-line blocking under heavy-tailed event sizes.
#pragma once

#include "sched/scheduler.h"

namespace nu::sched {

class FifoScheduler final : public Scheduler {
 public:
  [[nodiscard]] Decision Decide(SchedulingContext& context) override;
  [[nodiscard]] const char* name() const override { return "fifo"; }
};

}  // namespace nu::sched
