// The "intrinsic" full-reorder scheduler the paper discusses (and rejects):
// each round, compute the update cost of EVERY queued event and execute the
// cheapest. Optimal head-of-line avoidance but O(queue) probes per round —
// the plan-time blow-up that motivates LMTF's sampling. Kept as an upper
// bound for the ablation benches.
#pragma once

#include "sched/scheduler.h"

namespace nu::sched {

class ReorderScheduler final : public Scheduler {
 public:
  [[nodiscard]] Decision Decide(SchedulingContext& context) override;
  [[nodiscard]] const char* name() const override { return "reorder"; }
};

}  // namespace nu::sched
