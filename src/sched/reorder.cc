#include "sched/reorder.h"

#include "common/check.h"

namespace nu::sched {

Decision ReorderScheduler::Decide(SchedulingContext& context) {
  const std::size_t queue_size = context.Queue().size();
  NU_EXPECTS(queue_size > 0);
  std::vector<std::size_t> indices(queue_size);
  for (std::size_t i = 0; i < queue_size; ++i) indices[i] = i;
  std::vector<Mbps> costs(queue_size);
  context.ProbeCosts(indices, costs);
  std::size_t best = 0;
  Mbps best_cost = costs[0];
  for (std::size_t i = 1; i < queue_size; ++i) {
    // Strict < keeps the earliest arrival on ties (fairness tiebreak).
    if (costs[i] < best_cost) {
      best = i;
      best_cost = costs[i];
    }
  }
  return Decision{.selected = {best}};
}

}  // namespace nu::sched
