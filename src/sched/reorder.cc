#include "sched/reorder.h"

#include "common/check.h"

namespace nu::sched {

Decision ReorderScheduler::Decide(SchedulingContext& context) {
  const std::size_t queue_size = context.Queue().size();
  NU_EXPECTS(queue_size > 0);
  std::size_t best = 0;
  Mbps best_cost = context.ProbeCost(0);
  for (std::size_t i = 1; i < queue_size; ++i) {
    const Mbps cost = context.ProbeCost(i);
    // Strict < keeps the earliest arrival on ties (fairness tiebreak).
    if (cost < best_cost) {
      best = i;
      best_cost = cost;
    }
  }
  return Decision{.selected = {best}};
}

}  // namespace nu::sched
