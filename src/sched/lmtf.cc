#include "sched/lmtf.h"

#include <algorithm>

#include "common/check.h"
#include "sched/select.h"

namespace nu::sched {

LmtfScheduler::LmtfScheduler(LmtfConfig config) : config_(config) {
  NU_EXPECTS(config_.alpha >= 1);
}

LmtfScheduler::Pick LmtfScheduler::PickCheapest(SchedulingContext& context,
                                                std::size_t alpha) {
  const std::size_t queue_size = context.Queue().size();
  NU_EXPECTS(queue_size > 0);

  // Candidates: the head plus alpha events sampled without replacement from
  // positions [1, queue_size).
  std::vector<std::size_t> candidates{0};
  if (queue_size > 1) {
    const std::size_t sample_count = std::min(alpha, queue_size - 1);
    auto sampled =
        context.rng().SampleWithoutReplacement(queue_size - 1, sample_count);
    for (std::size_t s : sampled) candidates.push_back(s + 1);
    // Arrival order within the sampled set (deterministic and fairness-
    // friendly for the P-LMTF second phase).
    std::sort(candidates.begin() + 1, candidates.end());
  }

  // Probe all candidates in one batch so a parallel-capable context can
  // evaluate them concurrently; the scan below is unchanged.
  std::vector<Mbps> costs(candidates.size());
  context.ProbeCosts(candidates, costs);
  // Strict < : on ties the earlier arrival (smaller queue index) wins,
  // preserving FIFO order whenever costs are equal. Shared with the sharded
  // engine's distributed argmin (sched/select.h).
  const std::size_t cheapest = CheapestCandidate(candidates, costs);
  return Pick{.candidates = std::move(candidates), .cheapest = cheapest};
}

std::size_t LmtfScheduler::EffectiveAlpha(const SchedulingContext& context,
                                          std::size_t alpha) {
  return context.Pressure().Overloaded() ? 2 * alpha : alpha;
}

Decision LmtfScheduler::Decide(SchedulingContext& context) {
  const Pick pick =
      PickCheapest(context, EffectiveAlpha(context, config_.alpha));
  return Decision{.selected = {pick.cheapest}};
}

}  // namespace nu::sched
