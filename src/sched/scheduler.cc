#include "sched/scheduler.h"

#include <unordered_set>

namespace nu::sched {

bool IsValidDecision(const Decision& decision, std::size_t queue_size) {
  if (decision.selected.empty()) return false;
  std::unordered_set<std::size_t> seen;
  for (std::size_t index : decision.selected) {
    if (index >= queue_size) return false;
    if (!seen.insert(index).second) return false;
  }
  return true;
}

}  // namespace nu::sched
