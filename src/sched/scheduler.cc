#include "sched/scheduler.h"

#include <unordered_set>

#include "common/check.h"

namespace nu::sched {

void SchedulingContext::ProbeCosts(std::span<const std::size_t> indices,
                                   std::span<Mbps> out) {
  NU_EXPECTS(out.size() >= indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = ProbeCost(indices[i]);
  }
}

bool IsValidDecision(const Decision& decision, std::size_t queue_size) {
  if (decision.selected.empty()) return false;
  std::unordered_set<std::size_t> seen;
  for (std::size_t index : decision.selected) {
    if (index >= queue_size) return false;
    if (!seen.insert(index).second) return false;
  }
  return true;
}

}  // namespace nu::sched
