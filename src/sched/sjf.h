// SJF-by-size: LMTF's sampling structure, but candidates are compared by
// flow COUNT (known for free) instead of probed update cost. An ablation
// baseline answering "does LMTF's cost probing earn its plan-time?" — if
// event size alone predicted service time, probing would be wasted; when
// migration cost varies independently of size (congested fabrics, churn),
// cost probing wins.
#pragma once

#include "sched/lmtf.h"

namespace nu::sched {

class SjfScheduler final : public Scheduler {
 public:
  explicit SjfScheduler(LmtfConfig config = {});

  [[nodiscard]] Decision Decide(SchedulingContext& context) override;
  [[nodiscard]] const char* name() const override { return "sjf-size"; }

  [[nodiscard]] const LmtfConfig& config() const { return config_; }

 private:
  LmtfConfig config_;
};

}  // namespace nu::sched
