#include "sched/sjf.h"

#include <algorithm>

#include "common/check.h"

namespace nu::sched {

SjfScheduler::SjfScheduler(LmtfConfig config) : config_(config) {
  NU_EXPECTS(config_.alpha >= 1);
}

Decision SjfScheduler::Decide(SchedulingContext& context) {
  const std::size_t queue_size = context.Queue().size();
  NU_EXPECTS(queue_size > 0);

  std::vector<std::size_t> candidates{0};
  if (queue_size > 1) {
    const std::size_t sample_count =
        std::min(config_.alpha, queue_size - 1);
    auto sampled =
        context.rng().SampleWithoutReplacement(queue_size - 1, sample_count);
    for (std::size_t s : sampled) candidates.push_back(s + 1);
  }

  std::size_t smallest = candidates.front();
  std::size_t smallest_flows =
      context.Queue()[candidates.front()].event->flow_count();
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const std::size_t flows =
        context.Queue()[candidates[i]].event->flow_count();
    // Strict <: ties keep the earlier arrival.
    if (flows < smallest_flows ||
        (flows == smallest_flows && candidates[i] < smallest)) {
      smallest = candidates[i];
      smallest_flows = flows;
    }
  }
  return Decision{.selected = {smallest}};
}

}  // namespace nu::sched
