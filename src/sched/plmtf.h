// P-LMTF — parallel LMTF with opportunistic updating (Section IV-C).
// Step 1 is exactly LMTF: probe the head plus alpha sampled events, make the
// cheapest the new head. Step 2 walks the REMAINING candidates in arrival
// order and co-schedules each one that can be executed simultaneously with
// everything already selected. Earlier arrivals get the first chance, which
// is how the method restores fairness: a heavy event that LMTF displaced is
// the first considered for parallel execution. Only the alpha+1 candidates
// are checked — scanning the whole queue would reintroduce the reorder
// scheduler's overhead.
#pragma once

#include "sched/lmtf.h"

namespace nu::sched {

class PlmtfScheduler final : public Scheduler {
 public:
  explicit PlmtfScheduler(LmtfConfig config = {});

  [[nodiscard]] Decision Decide(SchedulingContext& context) override;
  [[nodiscard]] const char* name() const override { return "p-lmtf"; }

  [[nodiscard]] const LmtfConfig& config() const { return config_; }

 private:
  LmtfConfig config_;
};

}  // namespace nu::sched
