#include "sched/factory.h"

#include "common/check.h"

namespace nu::sched {

const char* ToString(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return "fifo";
    case SchedulerKind::kReorder:
      return "reorder";
    case SchedulerKind::kLmtf:
      return "lmtf";
    case SchedulerKind::kPlmtf:
      return "p-lmtf";
    case SchedulerKind::kSjf:
      return "sjf-size";
  }
  return "?";
}

SchedulerKind ParseSchedulerKind(const std::string& name) {
  if (name == "fifo") return SchedulerKind::kFifo;
  if (name == "reorder") return SchedulerKind::kReorder;
  if (name == "lmtf") return SchedulerKind::kLmtf;
  if (name == "p-lmtf" || name == "plmtf") return SchedulerKind::kPlmtf;
  if (name == "sjf-size" || name == "sjf") return SchedulerKind::kSjf;
  NU_CHECK(false && "unknown scheduler name");
  return SchedulerKind::kFifo;
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind,
                                         LmtfConfig config) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return std::make_unique<FifoScheduler>();
    case SchedulerKind::kReorder:
      return std::make_unique<ReorderScheduler>();
    case SchedulerKind::kLmtf:
      return std::make_unique<LmtfScheduler>(config);
    case SchedulerKind::kPlmtf:
      return std::make_unique<PlmtfScheduler>(config);
    case SchedulerKind::kSjf:
      return std::make_unique<SjfScheduler>(config);
  }
  return nullptr;
}

}  // namespace nu::sched
