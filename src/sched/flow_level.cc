#include "sched/flow_level.h"

namespace nu::sched {

std::vector<FlowLevelItem> InterleaveFlows(
    std::span<const update::UpdateEvent> events) {
  std::vector<FlowLevelItem> queue;
  std::size_t total = 0;
  for (const update::UpdateEvent& e : events) total += e.flow_count();
  queue.reserve(total);

  std::size_t round = 0;
  while (queue.size() < total) {
    for (const update::UpdateEvent& e : events) {
      if (round < e.flow_count()) {
        queue.push_back(FlowLevelItem{&e, round});
      }
    }
    ++round;
  }
  return queue;
}

std::vector<FlowLevelItem> ConcatenateFlows(
    std::span<const update::UpdateEvent> events) {
  std::vector<FlowLevelItem> queue;
  for (const update::UpdateEvent& e : events) {
    for (std::size_t i = 0; i < e.flow_count(); ++i) {
      queue.push_back(FlowLevelItem{&e, i});
    }
  }
  return queue;
}

}  // namespace nu::sched
