#include "sched/plmtf.h"

#include "common/check.h"

namespace nu::sched {

PlmtfScheduler::PlmtfScheduler(LmtfConfig config) : config_(config) {
  NU_EXPECTS(config_.alpha >= 1);
}

Decision PlmtfScheduler::Decide(SchedulingContext& context) {
  // Under backpressure the widened sample also widens the co-scheduling
  // pool, draining the saturated queue with bigger parallel rounds.
  const LmtfScheduler::Pick pick = LmtfScheduler::PickCheapest(
      context, LmtfScheduler::EffectiveAlpha(context, config_.alpha));

  Decision decision;
  decision.selected.push_back(pick.cheapest);

  // Opportunistic updating: try the other candidates in arrival order.
  for (std::size_t candidate : pick.candidates) {
    if (candidate == pick.cheapest) continue;
    if (context.ProbeCoFeasible(decision.selected, candidate)) {
      decision.selected.push_back(candidate);
    }
  }
  return decision;
}

}  // namespace nu::sched
