#include "sched/fifo.h"

#include "common/check.h"

namespace nu::sched {

Decision FifoScheduler::Decide(SchedulingContext& context) {
  NU_EXPECTS(!context.Queue().empty());
  return Decision{.selected = {0}};
}

}  // namespace nu::sched
