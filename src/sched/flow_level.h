// Flow-level baseline (the comparison of Figs. 2, 4, 5): flows are
// scheduled individually in their arrival order, with no notion of which
// update event they belong to. Since all flows of an event arrive together,
// the per-flow queue interleaves events round-robin — the classic
// event-blind behaviour the paper's Fig. 2(a) depicts. The simulator
// consumes this sequence one flow at a time; an event completes when its
// last flow does.
#pragma once

#include <span>
#include <vector>

#include "update/update_event.h"

namespace nu::sched {

/// One entry of the flow-level queue.
struct FlowLevelItem {
  const update::UpdateEvent* event = nullptr;
  std::size_t flow_index = 0;
};

/// Builds the interleaved per-flow queue: round-robin across the events
/// (in arrival order) until all flows are drained — f1 of U1, f1 of U2,
/// f1 of U3, f2 of U1, ... Events with more flows keep contributing after
/// shorter ones drain.
[[nodiscard]] std::vector<FlowLevelItem> InterleaveFlows(
    std::span<const update::UpdateEvent> events);

/// Builds the non-interleaved sequence (all flows of U1, then U2, ...);
/// equivalent to event-level FIFO at flow granularity. Used in tests to
/// isolate the effect of interleaving.
[[nodiscard]] std::vector<FlowLevelItem> ConcatenateFlows(
    std::span<const update::UpdateEvent> events);

}  // namespace nu::sched
