// LMTF — least migration traffic first (Section IV-B). Keeps FIFO's arrival
// order but each round samples alpha random queued events (besides the
// head), probes the update cost of the alpha+1 candidates, and executes the
// cheapest. The power-of-d-choices sampling breaks head-of-line blocking at
// O(alpha) probe cost instead of the full-reorder O(queue). When fewer than
// alpha+1 events are queued, all of them are candidates.
#pragma once

#include "sched/scheduler.h"

namespace nu::sched {

struct LmtfConfig {
  /// Number of sampled candidates besides the head. The paper evaluates
  /// alpha = 4 and notes alpha = 2 already captures most of the gain.
  std::size_t alpha = 4;
};

class LmtfScheduler final : public Scheduler {
 public:
  explicit LmtfScheduler(LmtfConfig config = {});

  [[nodiscard]] Decision Decide(SchedulingContext& context) override;
  [[nodiscard]] const char* name() const override { return "lmtf"; }

  [[nodiscard]] const LmtfConfig& config() const { return config_; }

 protected:
  /// Shared with P-LMTF: returns the candidate indices (head first, then the
  /// alpha samples in arrival order) and the index of the cheapest.
  struct Pick {
    std::vector<std::size_t> candidates;
    std::size_t cheapest;  // index into the queue, not into candidates
  };
  static Pick PickCheapest(SchedulingContext& context, std::size_t alpha);

  /// Backpressure-aware sample width: while the bounded queue is saturated
  /// (guard admission control is shedding), doubling the candidate sample
  /// spends extra probe time to pick better drains — worth it exactly when
  /// queuing delay, not plan time, dominates. No-op without a queue bound.
  static std::size_t EffectiveAlpha(const SchedulingContext& context,
                                    std::size_t alpha);

 private:
  friend class PlmtfScheduler;
  LmtfConfig config_;
};

}  // namespace nu::sched
