// Inter-event scheduling interface (Section III-C / IV). Each round the
// simulator asks the scheduler which queued update event(s) to execute next.
// Schedulers see the queue through SchedulingContext, which also provides
// the two probes the paper's methods use:
//   * ProbeCost        — plan an event against the current network and return
//                        its Cost(U) (LMTF's comparison metric). Expensive;
//                        charged to the run's plan time.
//   * ProbeCoFeasible  — can this event be executed together with the
//                        already-selected ones? (P-LMTF's opportunistic
//                        check). Cheaper; also charged.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "update/update_event.h"

namespace nu::sched {

/// Scheduler's view of one queued event.
struct QueuedEvent {
  const update::UpdateEvent* event = nullptr;
  /// Position is implied by index in the queue span (arrival order).
};

/// Backpressure view of the bounded update queue (guard subsystem). The
/// queue a scheduler sees holds only admitted events — overload shedding
/// already happened — but pressure lets policies adapt while the system is
/// saturated (e.g. LMTF/P-LMTF widen their candidate sample to drain
/// faster). `capacity == 0` means admission control is off.
struct QueuePressure {
  std::size_t capacity = 0;
  std::size_t length = 0;
  /// Events shed by admission control so far this run.
  std::size_t shed_total = 0;

  [[nodiscard]] bool Overloaded() const {
    return capacity > 0 && length >= capacity;
  }
};

class SchedulingContext {
 public:
  virtual ~SchedulingContext() = default;

  /// Queued events in arrival order. Non-empty when Decide is called.
  [[nodiscard]] virtual std::span<const QueuedEvent> Queue() const = 0;

  /// Cost(U) of the event at `index`, planned against the current network.
  virtual Mbps ProbeCost(std::size_t index) = 0;

  /// Batch form of ProbeCost: fills `out[i] = ProbeCost(indices[i])`.
  /// `out.size() >= indices.size()`. The default calls ProbeCost
  /// sequentially; the simulator overrides it to evaluate the candidates on
  /// a worker pool when probe_parallelism is enabled. Results and all
  /// accounting are identical to the sequential calls by contract.
  virtual void ProbeCosts(std::span<const std::size_t> indices,
                          std::span<Mbps> out);

  /// True when the event at `index` can be fully executed simultaneously
  /// with the events at `selected` (what-if against the current network).
  virtual bool ProbeCoFeasible(std::span<const std::size_t> selected,
                               std::size_t index) = 0;

  /// Randomness source for sampling-based schedulers.
  virtual Rng& rng() = 0;

  /// Current backpressure state. Defaults to "no admission control" so
  /// contexts predating the guard subsystem need not override it.
  [[nodiscard]] virtual QueuePressure Pressure() const { return {}; }

  /// Brownout degradation level requested by the serving layer: 0 = full
  /// quality, 1 = shrink the probe candidate sample, >= 2 = cheapest path
  /// (FIFO). Defaults to 0 so contexts predating serve/ need not override
  /// it; only serve::DegradableScheduler reads it.
  [[nodiscard]] virtual int DegradationLevel() const { return 0; }
};

struct Decision {
  /// Queue indices to execute this round; front entry is the (new) head.
  /// Must be non-empty and duplicate-free.
  std::vector<std::size_t> selected;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Picks the events for the next round. The queue is non-empty.
  [[nodiscard]] virtual Decision Decide(SchedulingContext& context) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Validates a decision against a queue size (non-empty, in-range, unique).
[[nodiscard]] bool IsValidDecision(const Decision& decision,
                                   std::size_t queue_size);

}  // namespace nu::sched
