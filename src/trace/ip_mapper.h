// Deterministic mapping from (anonymized) IP address strings to topology
// hosts — the paper "uses a hash function to map the IP addresses of the
// source and destination of each flow into our datacenter network". Used by
// the CSV trace loader so real traces can drive the simulator.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/types.h"

namespace nu::trace {

/// FNV-1a 64-bit over the raw string.
[[nodiscard]] std::uint64_t HashIp(const std::string& ip);

class IpMapper {
 public:
  explicit IpMapper(std::span<const NodeId> hosts);

  /// Host for an IP string; stable across calls and runs.
  [[nodiscard]] NodeId Map(const std::string& ip) const;

  /// Maps a src/dst pair, guaranteeing distinct hosts: when both IPs hash to
  /// the same host, the destination is shifted to the next host.
  [[nodiscard]] std::pair<NodeId, NodeId> MapPair(const std::string& src_ip,
                                                  const std::string& dst_ip) const;

 private:
  std::vector<NodeId> hosts_;
};

}  // namespace nu::trace
