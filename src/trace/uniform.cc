#include "trace/uniform.h"

#include "common/check.h"

namespace nu::trace {

UniformGenerator::UniformGenerator(std::span<const NodeId> hosts, Rng rng,
                                   UniformSpec spec)
    : hosts_(hosts.begin(), hosts.end()), rng_(rng), spec_(spec) {
  NU_EXPECTS(hosts_.size() >= 2);
  NU_EXPECTS(spec_.min_demand > 0.0);
  NU_EXPECTS(spec_.max_demand >= spec_.min_demand);
  NU_EXPECTS(spec_.min_duration > 0.0);
  NU_EXPECTS(spec_.max_duration >= spec_.min_duration);
}

FlowSpec UniformGenerator::Next() {
  const auto [src, dst] = RandomHostPair(hosts_, rng_);
  return FlowSpec{
      .src = src,
      .dst = dst,
      .demand = rng_.Uniform(spec_.min_demand, spec_.max_demand),
      .duration = rng_.Uniform(spec_.min_duration, spec_.max_duration),
  };
}

}  // namespace nu::trace
