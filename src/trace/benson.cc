#include "trace/benson.h"

#include "common/check.h"

namespace nu::trace {

BensonGenerator::BensonGenerator(std::span<const NodeId> hosts, Rng rng,
                                 BensonConfig config, TrafficSpec spec)
    : hosts_(hosts.begin(), hosts.end()),
      rng_(rng),
      config_(config),
      spec_(spec) {
  NU_EXPECTS(hosts_.size() >= 2);
  NU_EXPECTS(config_.rack_size >= 1);
  NU_EXPECTS(config_.rack_locality >= 0.0 && config_.rack_locality <= 1.0);
}

FlowSpec BensonGenerator::Next() {
  const std::size_t src_index = rng_.Index(hosts_.size());
  std::size_t dst_index = src_index;

  const std::size_t rack = src_index / config_.rack_size;
  const std::size_t rack_begin = rack * config_.rack_size;
  const std::size_t rack_end =
      std::min(rack_begin + config_.rack_size, hosts_.size());
  const bool rack_local =
      rack_end - rack_begin >= 2 && rng_.Bernoulli(config_.rack_locality);

  if (rack_local) {
    // Pick a distinct host within the rack.
    dst_index = rack_begin + rng_.Index(rack_end - rack_begin - 1);
    if (dst_index >= src_index) ++dst_index;
  } else {
    dst_index = rng_.Index(hosts_.size() - 1);
    if (dst_index >= src_index) ++dst_index;
  }

  return FlowSpec{
      .src = hosts_[src_index],
      .dst = hosts_[dst_index],
      .demand = spec_.demand.Sample(rng_),
      .duration = spec_.duration.Sample(rng_),
  };
}

}  // namespace nu::trace
