// TrafficGenerator: the interface every workload source implements — the
// Yahoo-like and Benson-style synthetic generators, the uniform generator,
// and the CSV trace replayer all produce FlowSpec streams consumed by the
// background injector and the update-event generators.
#pragma once

#include <span>

#include "common/rng.h"
#include "common/types.h"

namespace nu::trace {

/// One flow demand drawn from a trace: endpoints are hosts of the topology.
struct FlowSpec {
  NodeId src;
  NodeId dst;
  Mbps demand = 0.0;
  Seconds duration = 0.0;
};

class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  /// Produces the next flow. Implementations guarantee src != dst,
  /// demand > 0, duration > 0.
  [[nodiscard]] virtual FlowSpec Next() = 0;

  /// Human-readable generator name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Picks an ordered pair of distinct hosts uniformly at random.
[[nodiscard]] std::pair<NodeId, NodeId> RandomHostPair(
    std::span<const NodeId> hosts, Rng& rng);

}  // namespace nu::trace
