#include "trace/ip_mapper.h"

#include "common/check.h"

namespace nu::trace {

std::uint64_t HashIp(const std::string& ip) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : ip) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

IpMapper::IpMapper(std::span<const NodeId> hosts)
    : hosts_(hosts.begin(), hosts.end()) {
  NU_EXPECTS(hosts_.size() >= 2);
}

NodeId IpMapper::Map(const std::string& ip) const {
  return hosts_[HashIp(ip) % hosts_.size()];
}

std::pair<NodeId, NodeId> IpMapper::MapPair(const std::string& src_ip,
                                            const std::string& dst_ip) const {
  const std::size_t src_index = HashIp(src_ip) % hosts_.size();
  std::size_t dst_index = HashIp(dst_ip) % hosts_.size();
  if (dst_index == src_index) dst_index = (dst_index + 1) % hosts_.size();
  return {hosts_[src_index], hosts_[dst_index]};
}

}  // namespace nu::trace
