#include "trace/distributions.h"

#include <algorithm>
#include <cmath>

namespace nu::trace {

double HeavyTailSpec::Sample(Rng& rng) const {
  double value = 0.0;
  if (rng.Bernoulli(elephant_fraction)) {
    value = rng.Pareto(tail_scale, tail_shape);
  } else {
    value = rng.LogNormal(body_mu, body_sigma);
  }
  return std::clamp(value, min_value, max_value);
}

TrafficSpec YahooLikeSpec() {
  TrafficSpec spec;
  // Demand: body median e^1.0 ~ 2.7 Mbps, sigma 1.2 => long lognormal body;
  // 8% elephants Pareto from 40 Mbps with shape 1.3 (infinite variance),
  // capped at 800 Mbps (80% of a 1 Gbps link).
  spec.demand = HeavyTailSpec{
      .body_mu = 1.0,
      .body_sigma = 1.2,
      .elephant_fraction = 0.08,
      .tail_scale = 40.0,
      .tail_shape = 1.3,
      .min_value = 0.1,
      .max_value = 800.0,
  };
  // Duration: body median e^2.0 ~ 7.4 s; 10% long transfers Pareto from 30 s
  // shape 1.2, capped at 10 minutes.
  spec.duration = HeavyTailSpec{
      .body_mu = 2.0,
      .body_sigma = 1.0,
      .elephant_fraction = 0.10,
      .tail_scale = 30.0,
      .tail_shape = 1.2,
      .min_value = 0.5,
      .max_value = 600.0,
  };
  return spec;
}

TrafficSpec BensonSpec() {
  TrafficSpec spec;
  // Mice-dominated: body median ~1 Mbps, lighter 5% tail from 20 Mbps.
  spec.demand = HeavyTailSpec{
      .body_mu = 0.0,
      .body_sigma = 1.0,
      .elephant_fraction = 0.05,
      .tail_scale = 20.0,
      .tail_shape = 1.6,
      .min_value = 0.05,
      .max_value = 500.0,
  };
  // Short flows: body median ~2 s, 8% tail from 10 s, capped at 3 minutes.
  spec.duration = HeavyTailSpec{
      .body_mu = 0.7,
      .body_sigma = 0.9,
      .elephant_fraction = 0.08,
      .tail_scale = 10.0,
      .tail_shape = 1.4,
      .min_value = 0.1,
      .max_value = 180.0,
  };
  return spec;
}

}  // namespace nu::trace
