// Background-traffic injection: fills the network with existing flows until
// a target utilization is reached — "we inject a large amount of traffic ...
// as background traffic, so that the network utilization grows up to 70%".
// These are the flows the migration optimizer later moves around.
#pragma once

#include "net/admission.h"
#include "net/network.h"
#include "trace/generator.h"

namespace nu::trace {

struct BackgroundOptions {
  /// Stop once the utilization measure reaches this value.
  double target_utilization = 0.7;
  /// When true the target applies to FabricUtilization() (core contention,
  /// the regime the paper's "network utilization" sweeps); otherwise to
  /// AverageUtilization() over all links.
  bool target_fabric_utilization = false;
  /// Give up after this many consecutive flows that fit on no path.
  std::size_t max_consecutive_failures = 200;
  /// Hard cap on placed background flows (safety for tiny topologies).
  std::size_t max_flows = 1'000'000;
  net::PathSelection path_selection = net::PathSelection::kWidest;
  /// Fraction of every link's capacity kept free of background traffic —
  /// the "scratch capacity" congestion-free update systems reserve (SWAN
  /// leaves 10-15%). Zero means background may saturate links, in which
  /// case flows from a saturated host can never be admitted (the regime
  /// the paper's Fig. 1 probes).
  double link_headroom = 0.0;
  /// Headroom for links incident to a host. Benson et al. observe that edge
  /// links run far below core-link utilization (servers rarely saturate
  /// their NICs while the fabric is contended); reserving more on host
  /// links reproduces that shape and keeps single-homed hosts reachable —
  /// a saturated host uplink can never be relieved by migration. Values
  /// below link_headroom are ignored (the larger wins).
  double host_link_headroom = 0.0;
  /// When nonzero, each flow is placed on a uniformly random feasible
  /// candidate path (per-flow ECMP hashing) instead of the widest one.
  /// Hash placement leaves fabric hotspots — the congestion that makes the
  /// paper's local-migration machinery earn its keep.
  std::uint64_t random_path_seed = 0;
};

struct BackgroundResult {
  std::size_t placed_flows = 0;
  std::size_t rejected_flows = 0;
  double achieved_utilization = 0.0;
};

/// Draws flows from `generator` and places each on a feasible path until the
/// utilization target is met. Rejected flows (no feasible path) are skipped;
/// injection also stops after `max_consecutive_failures` rejections in a row,
/// which happens when the target exceeds what admission without migration
/// can reach.
BackgroundResult InjectBackground(net::Network& network,
                                  const topo::PathProvider& paths,
                                  TrafficGenerator& generator,
                                  const BackgroundOptions& options = {});

/// True when every link of `p` keeps its reserved headroom after placing
/// `demand` (host-incident links may reserve more than fabric links).
[[nodiscard]] bool FitsWithHeadroom(const net::Network& network,
                                    const topo::Path& p, Mbps demand,
                                    const BackgroundOptions& options);

/// Uniformly random candidate path satisfying the headroom constraint
/// (per-flow ECMP-hash placement), or nullopt. Used by initial injection and
/// by the simulator's background churn to place replacement flows.
[[nodiscard]] std::optional<topo::Path> FindRandomPathWithHeadroom(
    const net::Network& network, const topo::PathProvider& paths, NodeId src,
    NodeId dst, Mbps demand, const BackgroundOptions& options, Rng& rng);

}  // namespace nu::trace
