// Yahoo!-like synthetic trace generator. Stands in for the (non-public)
// Yahoo! inter-datacenter trace the paper replays; see distributions.h for
// the distribution rationale. Endpoints are drawn uniformly over hosts,
// mirroring the paper's hash-mapping of anonymized IPs onto the Fat-Tree.
#pragma once

#include <vector>

#include "trace/distributions.h"
#include "trace/generator.h"

namespace nu::trace {

class YahooLikeGenerator final : public TrafficGenerator {
 public:
  YahooLikeGenerator(std::span<const NodeId> hosts, Rng rng,
                     TrafficSpec spec = YahooLikeSpec());

  [[nodiscard]] FlowSpec Next() override;
  [[nodiscard]] const char* name() const override { return "yahoo-like"; }

 private:
  std::vector<NodeId> hosts_;
  Rng rng_;
  TrafficSpec spec_;
};

}  // namespace nu::trace
