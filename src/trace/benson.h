// Benson-style intra-datacenter generator: mice-dominated heavy-tailed
// demands plus rack locality — a configurable fraction of flows stay inside
// the source host's "rack" (hosts under the same edge switch), matching the
// locality observation of Benson et al. The update-event flows of the
// paper's workloads are generated "according to the characteristics of
// network traffic mentioned in [12]", i.e. from this generator.
#pragma once

#include <vector>

#include "trace/distributions.h"
#include "trace/generator.h"

namespace nu::trace {

struct BensonConfig {
  /// Probability that a flow's destination is in the source rack.
  double rack_locality = 0.4;
  /// Number of consecutive hosts forming a "rack" (k/2 for a Fat-Tree,
  /// hosts_per_leaf for a leaf-spine).
  std::size_t rack_size = 4;
};

class BensonGenerator final : public TrafficGenerator {
 public:
  BensonGenerator(std::span<const NodeId> hosts, Rng rng,
                  BensonConfig config = {}, TrafficSpec spec = BensonSpec());

  [[nodiscard]] FlowSpec Next() override;
  [[nodiscard]] const char* name() const override { return "benson"; }

 private:
  std::vector<NodeId> hosts_;
  Rng rng_;
  BensonConfig config_;
  TrafficSpec spec_;
};

}  // namespace nu::trace
