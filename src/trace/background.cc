#include "trace/background.h"

#include <limits>
#include <optional>

#include "common/logging.h"
#include "flow/flow.h"

namespace nu::trace {

namespace {

}  // namespace

bool FitsWithHeadroom(const net::Network& network, const topo::Path& p,
                      Mbps demand, const BackgroundOptions& options) {
  for (LinkId lid : p.links) {
    const topo::Link& link = network.graph().link(lid);
    const bool touches_host =
        network.graph().node(link.src).role == topo::NodeRole::kHost ||
        network.graph().node(link.dst).role == topo::NodeRole::kHost;
    const double headroom =
        touches_host
            ? std::max(options.link_headroom, options.host_link_headroom)
            : options.link_headroom;
    const Mbps reserved = headroom * link.capacity;
    if (!ApproxGe(network.Residual(lid) - demand, reserved)) return false;
  }
  return true;
}

namespace {

/// Widest path satisfying the headroom constraint, or nullopt.
std::optional<topo::Path> FindPathWithHeadroom(
    const net::Network& network, const topo::PathProvider& paths, NodeId src,
    NodeId dst, Mbps demand, const BackgroundOptions& options) {
  const topo::Path* best = nullptr;
  Mbps best_bottleneck = 0.0;
  for (const topo::Path& p : paths.Paths(src, dst)) {
    if (!FitsWithHeadroom(network, p, demand, options)) continue;
    Mbps bottleneck = std::numeric_limits<double>::infinity();
    for (LinkId lid : p.links) {
      bottleneck = std::min(bottleneck, network.Residual(lid));
    }
    if (best == nullptr || bottleneck > best_bottleneck) {
      best = &p;
      best_bottleneck = bottleneck;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

}  // namespace

std::optional<topo::Path> FindRandomPathWithHeadroom(
    const net::Network& network, const topo::PathProvider& paths, NodeId src,
    NodeId dst, Mbps demand, const BackgroundOptions& options, Rng& rng) {
  const std::vector<topo::Path>& candidates = paths.Paths(src, dst);
  std::vector<const topo::Path*> feasible;
  feasible.reserve(candidates.size());
  for (const topo::Path& p : candidates) {
    if (FitsWithHeadroom(network, p, demand, options)) {
      feasible.push_back(&p);
    }
  }
  if (feasible.empty()) return std::nullopt;
  return *feasible[rng.Index(feasible.size())];
}

BackgroundResult InjectBackground(net::Network& network,
                                  const topo::PathProvider& paths,
                                  TrafficGenerator& generator,
                                  const BackgroundOptions& options) {
  NU_EXPECTS(options.target_utilization >= 0.0 &&
             options.target_utilization < 1.0);
  NU_EXPECTS(options.link_headroom >= 0.0 && options.link_headroom < 1.0);
  BackgroundResult result;
  std::size_t consecutive_failures = 0;
  Rng path_rng(options.random_path_seed);
  const auto measured_utilization = [&] {
    return options.target_fabric_utilization ? network.FabricUtilization()
                                             : network.AverageUtilization();
  };

  while (measured_utilization() < options.target_utilization &&
         result.placed_flows < options.max_flows &&
         consecutive_failures < options.max_consecutive_failures) {
    const FlowSpec spec = generator.Next();
    std::optional<topo::Path> path;
    if (options.random_path_seed != 0) {
      path = FindRandomPathWithHeadroom(network, paths, spec.src, spec.dst,
                                        spec.demand, options, path_rng);
    } else if (options.link_headroom > 0.0 ||
               options.host_link_headroom > 0.0) {
      path = FindPathWithHeadroom(network, paths, spec.src, spec.dst,
                                  spec.demand, options);
    } else {
      path = net::FindFeasiblePath(network, paths, spec.src, spec.dst,
                                   spec.demand, options.path_selection);
    }
    if (!path) {
      ++result.rejected_flows;
      ++consecutive_failures;
      continue;
    }
    consecutive_failures = 0;
    flow::Flow f;
    f.src = spec.src;
    f.dst = spec.dst;
    f.demand = spec.demand;
    f.duration = spec.duration;
    f.origin = flow::FlowOrigin::kBackground;
    network.Place(std::move(f), *path);
    ++result.placed_flows;
  }

  result.achieved_utilization = measured_utilization();
  if (result.achieved_utilization < options.target_utilization) {
    NU_LOG_INFO << "background injection saturated at "
                << result.achieved_utilization << " (target "
                << options.target_utilization << ") after "
                << result.placed_flows << " flows";
  }
  return result;
}

}  // namespace nu::trace
