// Uniform "random trace" generator — the second trace of the paper's Fig. 1:
// flow demands and durations uniform over configured ranges, endpoints
// uniform over hosts. Serves as a light-tailed control against the
// heavy-tailed generators.
#pragma once

#include <vector>

#include "trace/distributions.h"
#include "trace/generator.h"

namespace nu::trace {

class UniformGenerator final : public TrafficGenerator {
 public:
  UniformGenerator(std::span<const NodeId> hosts, Rng rng,
                   UniformSpec spec = {});

  [[nodiscard]] FlowSpec Next() override;
  [[nodiscard]] const char* name() const override { return "uniform"; }

 private:
  std::vector<NodeId> hosts_;
  Rng rng_;
  UniformSpec spec_;
};

}  // namespace nu::trace
