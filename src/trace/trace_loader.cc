#include "trace/trace_loader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <cstdio>

#include "common/check.h"
#include "common/csv.h"

namespace nu::trace {
namespace {

double ParseDouble(const std::string& cell) {
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  NU_CHECK(end != cell.c_str());
  return value;
}

}  // namespace

std::vector<TraceRecord> ParseTraceCsv(const std::string& text) {
  // Peek at the first non-comment line to detect a header.
  CsvFile headerless = ParseCsv(text, /*has_header=*/false);
  bool has_header = false;
  if (!headerless.rows.empty()) {
    const auto& first = headerless.rows.front();
    for (const std::string& cell : first) {
      if (cell == "src_ip" || cell == "demand_mbps" || cell == "bytes") {
        has_header = true;
        break;
      }
    }
  }
  const CsvFile file = ParseCsv(text, has_header);

  std::size_t src_col = 0, dst_col = 1, size_col = 2, dur_col = 3;
  bool size_is_bytes = false;
  if (has_header) {
    const auto src = file.ColumnIndex("src_ip");
    const auto dst = file.ColumnIndex("dst_ip");
    const auto dur = file.ColumnIndex("duration_s");
    NU_CHECK(src && dst && dur);
    src_col = *src;
    dst_col = *dst;
    dur_col = *dur;
    if (const auto demand = file.ColumnIndex("demand_mbps")) {
      size_col = *demand;
    } else {
      const auto bytes = file.ColumnIndex("bytes");
      NU_CHECK(bytes.has_value());
      size_col = *bytes;
      size_is_bytes = true;
    }
  }

  std::vector<TraceRecord> records;
  records.reserve(file.rows.size());
  for (const auto& row : file.rows) {
    NU_CHECK(row.size() > std::max({src_col, dst_col, size_col, dur_col}));
    TraceRecord rec;
    rec.src_ip = row[src_col];
    rec.dst_ip = row[dst_col];
    rec.duration = ParseDouble(row[dur_col]);
    const double size_value = ParseDouble(row[size_col]);
    if (size_is_bytes) {
      // bytes over duration -> Mbps.
      rec.demand = rec.duration > 0.0
                       ? size_value * 8.0 / 1e6 / rec.duration
                       : 0.0;
    } else {
      rec.demand = size_value;
    }
    if (rec.demand <= 0.0 || rec.duration <= 0.0) continue;
    if (rec.src_ip == rec.dst_ip) continue;
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<TraceRecord> LoadTraceFile(const std::string& path) {
  std::ifstream in(path);
  NU_CHECK(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTraceCsv(buffer.str());
}

void WriteTraceCsv(std::ostream& out, std::span<const TraceRecord> records) {
  CsvWriter writer(out);
  writer.WriteRow({"src_ip", "dst_ip", "demand_mbps", "duration_s"});
  char buf[64];
  for (const TraceRecord& rec : records) {
    std::snprintf(buf, sizeof(buf), "%.6g", rec.demand);
    std::string demand = buf;
    std::snprintf(buf, sizeof(buf), "%.6g", rec.duration);
    writer.WriteRow({rec.src_ip, rec.dst_ip, demand, buf});
  }
}

std::vector<TraceRecord> SampleTrace(TrafficGenerator& generator,
                                     std::size_t count) {
  std::vector<TraceRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const FlowSpec spec = generator.Next();
    TraceRecord rec;
    // Synthesize stable per-host IPs from node ids.
    rec.src_ip = "10.0.0." + std::to_string(spec.src.value());
    rec.dst_ip = "10.0.0." + std::to_string(spec.dst.value());
    rec.demand = spec.demand;
    rec.duration = spec.duration;
    records.push_back(std::move(rec));
  }
  return records;
}

TraceReplayGenerator::TraceReplayGenerator(std::vector<TraceRecord> records,
                                           std::span<const NodeId> hosts)
    : records_(std::move(records)), mapper_(hosts) {
  NU_EXPECTS(!records_.empty());
}

FlowSpec TraceReplayGenerator::Next() {
  const TraceRecord& rec = records_[cursor_];
  cursor_ = (cursor_ + 1) % records_.size();
  const auto [src, dst] = mapper_.MapPair(rec.src_ip, rec.dst_ip);
  return FlowSpec{
      .src = src, .dst = dst, .demand = rec.demand, .duration = rec.duration};
}

}  // namespace nu::trace
