// Parametric flow-size/duration distributions behind the trace generators.
//
// The paper drives its evaluation with two traces:
//   * the Yahoo! inter-datacenter trace [11] (not publicly available), and
//   * synthetic traffic following Benson et al.'s datacenter measurements [12].
// Neither distribution's exact parameters are published, but both works agree
// on the qualitative shape the scheduling results depend on: flow sizes are
// heavy-tailed (most flows are small; a few elephants carry most bytes) and
// durations span several orders of magnitude. We model demand and duration as
// a lognormal body with a Pareto elephant tail; presets below pin parameters
// per trace family. See DESIGN.md "Substitutions".
#pragma once

#include "common/rng.h"
#include "common/types.h"

namespace nu::trace {

/// Mixture: with probability (1 - elephant_fraction) draw
/// LogNormal(body_mu, body_sigma); otherwise draw Pareto(tail_scale,
/// tail_shape). Values are clamped to [min_value, max_value].
struct HeavyTailSpec {
  double body_mu = 0.0;
  double body_sigma = 1.0;
  double elephant_fraction = 0.1;
  double tail_scale = 1.0;
  double tail_shape = 1.5;
  double min_value = 0.0;
  double max_value = 1e18;

  [[nodiscard]] double Sample(Rng& rng) const;
};

/// Demand (Mbps) and duration (seconds) specs for one trace family.
struct TrafficSpec {
  HeavyTailSpec demand;
  HeavyTailSpec duration;
};

/// Yahoo!-like inter-DC traffic: demand body centred around a few Mbps with
/// elephants up to a large fraction of a 1 Gbps link; durations seconds to
/// minutes, heavy-tailed.
[[nodiscard]] TrafficSpec YahooLikeSpec();

/// Benson-style intra-DC traffic: smaller mice-dominated demands, shorter
/// durations, slightly lighter tail.
[[nodiscard]] TrafficSpec BensonSpec();

/// Uniform "random trace" used by the paper's Fig. 1 comparison: demand
/// uniform in [min_demand, max_demand], duration uniform in
/// [min_duration, max_duration].
struct UniformSpec {
  Mbps min_demand = 1.0;
  Mbps max_demand = 100.0;
  Seconds min_duration = 1.0;
  Seconds max_duration = 60.0;
};

}  // namespace nu::trace
