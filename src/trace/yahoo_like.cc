#include "trace/yahoo_like.h"

#include "common/check.h"

namespace nu::trace {

std::pair<NodeId, NodeId> RandomHostPair(std::span<const NodeId> hosts,
                                         Rng& rng) {
  NU_EXPECTS(hosts.size() >= 2);
  const std::size_t a = rng.Index(hosts.size());
  std::size_t b = rng.Index(hosts.size() - 1);
  if (b >= a) ++b;
  return {hosts[a], hosts[b]};
}

YahooLikeGenerator::YahooLikeGenerator(std::span<const NodeId> hosts, Rng rng,
                                       TrafficSpec spec)
    : hosts_(hosts.begin(), hosts.end()), rng_(rng), spec_(spec) {
  NU_EXPECTS(hosts_.size() >= 2);
}

FlowSpec YahooLikeGenerator::Next() {
  const auto [src, dst] = RandomHostPair(hosts_, rng_);
  return FlowSpec{
      .src = src,
      .dst = dst,
      .demand = spec_.demand.Sample(rng_),
      .duration = spec_.duration.Sample(rng_),
  };
}

}  // namespace nu::trace
