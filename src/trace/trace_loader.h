// CSV trace loader + replayer. Accepts records of the form
//     src_ip,dst_ip,demand_mbps,duration_s
// (header optional; alternatively `bytes,duration_s` pairs from which demand
// is derived). This is the hook for replaying a real Yahoo!-style trace when
// one is available; the synthetic generators cover the default case.
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "trace/ip_mapper.h"

namespace nu::trace {

struct TraceRecord {
  std::string src_ip;
  std::string dst_ip;
  Mbps demand = 0.0;
  Seconds duration = 0.0;
};

/// Parses CSV text into records. Columns (by header name when a header row
/// is present, by position otherwise): src_ip, dst_ip, then either
/// demand_mbps or bytes, then duration_s. Records with non-positive demand
/// or duration are skipped. Aborts on structurally malformed rows.
[[nodiscard]] std::vector<TraceRecord> ParseTraceCsv(const std::string& text);

/// Loads ParseTraceCsv from a file path.
[[nodiscard]] std::vector<TraceRecord> LoadTraceFile(const std::string& path);

/// Writes records in the loader's canonical header format
/// (src_ip,dst_ip,demand_mbps,duration_s) — ParseTraceCsv round-trips the
/// output. Lets users snapshot a synthetic workload as a shareable trace.
void WriteTraceCsv(std::ostream& out, std::span<const TraceRecord> records);

/// Samples `count` flows from a generator into records (IPs synthesized
/// from the host ids), e.g. to export a Yahoo-like workload.
[[nodiscard]] std::vector<TraceRecord> SampleTrace(TrafficGenerator& generator,
                                                   std::size_t count);

/// Replays loaded records as a TrafficGenerator (cycling when exhausted),
/// mapping IPs to hosts through IpMapper.
class TraceReplayGenerator final : public TrafficGenerator {
 public:
  TraceReplayGenerator(std::vector<TraceRecord> records,
                       std::span<const NodeId> hosts);

  [[nodiscard]] FlowSpec Next() override;
  [[nodiscard]] const char* name() const override { return "trace-replay"; }

  [[nodiscard]] std::size_t record_count() const { return records_.size(); }

 private:
  std::vector<TraceRecord> records_;
  IpMapper mapper_;
  std::size_t cursor_ = 0;
};

}  // namespace nu::trace
