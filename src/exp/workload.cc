#include "exp/workload.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng_streams.h"
#include "trace/benson.h"
#include "trace/uniform.h"
#include "trace/yahoo_like.h"

namespace nu::exp {

std::unique_ptr<trace::TrafficGenerator> MakeTrafficGenerator(
    TraceFamily family, std::span<const NodeId> hosts, Rng rng) {
  switch (family) {
    case TraceFamily::kYahooLike:
      return std::make_unique<trace::YahooLikeGenerator>(hosts, rng);
    case TraceFamily::kBenson:
      return std::make_unique<trace::BensonGenerator>(hosts, rng);
    case TraceFamily::kUniform:
      return std::make_unique<trace::UniformGenerator>(hosts, rng);
  }
  return nullptr;
}

std::span<const NodeId> Workload::hosts() const {
  if (fat_tree_.has_value()) return fat_tree_->hosts();
  NU_EXPECTS(leaf_spine_.has_value());
  return leaf_spine_->hosts();
}

const topo::FatTree& Workload::fat_tree() const {
  NU_EXPECTS(fat_tree_.has_value());
  return *fat_tree_;
}

const topo::LeafSpine& Workload::leaf_spine() const {
  NU_EXPECTS(leaf_spine_.has_value());
  return *leaf_spine_;
}

Workload::Workload(const ExperimentConfig& config) : config_(config) {
  // Topology + path provider.
  switch (config_.topology) {
    case TopologyKind::kFatTree:
      fat_tree_.emplace(topo::FatTreeConfig{
          .k = config_.fat_tree_k,
          .link_capacity = config_.link_capacity,
          .fabric_capacity_factor = config_.fabric_capacity_factor});
      provider_ = std::make_unique<topo::FatTreePathProvider>(*fat_tree_);
      network_.emplace(fat_tree_->graph());
      break;
    case TopologyKind::kLeafSpine:
      leaf_spine_.emplace(topo::LeafSpineConfig{
          .leaves = config_.leaf_spine_leaves,
          .spines = config_.leaf_spine_spines,
          .hosts_per_leaf = config_.leaf_spine_hosts_per_leaf,
          .host_link_capacity = config_.link_capacity,
          .fabric_link_capacity =
              config_.link_capacity * config_.fabric_capacity_factor *
              static_cast<double>(config_.leaf_spine_hosts_per_leaf) /
              static_cast<double>(config_.leaf_spine_spines)});
      provider_ = std::make_unique<topo::LeafSpinePathProvider>(*leaf_spine_);
      network_.emplace(leaf_spine_->graph());
      break;
  }

  Rng root(config_.seed);
  Rng background_rng = root.Fork();
  Rng event_flow_rng = root.Fork();
  Rng event_shape_rng = root.Fork();

  // Background traffic to the target utilization.
  const auto generator =
      MakeTrafficGenerator(config_.background_trace, hosts(), background_rng);
  background_options_.target_utilization = config_.utilization;
  background_options_.target_fabric_utilization = true;
  background_options_.link_headroom = config_.background_headroom;
  background_options_.host_link_headroom = config_.background_host_headroom;
  // Per-flow ECMP-hash placement: background load lands unevenly across the
  // fabric, so update flows meet congested links that migration can relieve.
  background_options_.random_path_seed =
      StreamSeed(config_.seed, RngStream::kBackgroundPaths);
  background_ = trace::InjectBackground(*network_, *provider_, *generator,
                                        background_options_);

  // Update events: flows follow Benson-style DCN characteristics per the
  // paper's workload description — mice-dominated, but update events also
  // carry real bulk transfers, so the elephant tail reaches the configured
  // cap and contends for fabric capacity.
  trace::TrafficSpec event_spec = trace::BensonSpec();
  event_spec.demand.elephant_fraction = 0.15;
  event_spec.demand.tail_scale = 60.0;
  event_spec.demand.max_value = config_.max_event_flow_demand;
  // Event-flow transmissions drain on the same timescale as update service
  // (seconds): the ECT is then dominated by scheduling and update work, as
  // in the paper's model, rather than by waiting out hour-long elephants.
  event_spec.duration.tail_scale = 8.0;
  event_spec.duration.max_value = config_.max_event_flow_duration;
  trace::BensonGenerator event_flows(hosts(), event_flow_rng,
                                     trace::BensonConfig{}, event_spec);
  update::EventGenerator events(event_flows, event_shape_rng);
  update::SyntheticEventConfig shape;
  shape.min_flows = config_.min_flows_per_event;
  shape.max_flows = config_.max_flows_per_event;
  events_ = events.Batch(config_.event_count, shape,
                         config_.mean_interarrival);
}

}  // namespace nu::exp
