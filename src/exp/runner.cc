#include "exp/runner.h"

#include <algorithm>
#include <future>
#include <map>

#include "common/check.h"

namespace nu::exp {
namespace {

/// Builds a configured simulator (churn wired to the workload's trace).
sim::Simulator MakeSimulator(const Workload& workload,
                             const ckpt::CheckpointConfig* checkpoint =
                                 nullptr) {
  sim::SimConfig sim_config = workload.config().sim;
  if (checkpoint != nullptr) sim_config.checkpoint = *checkpoint;
  sim_config.seed = workload.config().seed ^ 0x5eedULL;
  sim_config.churn.enabled = workload.config().background_churn;
  sim_config.churn.placement = workload.background_options();
  sim::Simulator simulator(workload.network(), workload.paths(), sim_config);
  if (sim_config.churn.enabled) {
    simulator.SetChurnFactory([&workload](std::uint64_t seed) {
      return MakeTrafficGenerator(workload.config().background_trace,
                                  workload.hosts(), Rng(seed));
    });
  }
  return simulator;
}

}  // namespace

sim::SimResult RunScheduler(const Workload& workload,
                            sched::SchedulerKind kind) {
  sim::Simulator simulator = MakeSimulator(workload);
  const auto scheduler = sched::MakeScheduler(
      kind, sched::LmtfConfig{.alpha = workload.config().alpha});
  return simulator.Run(*scheduler, workload.events());
}

sim::SimResult RunSchedulerCheckpointed(
    const Workload& workload, sched::SchedulerKind kind,
    const ckpt::CheckpointConfig& checkpoint, bool resume) {
  sim::Simulator simulator = MakeSimulator(workload, &checkpoint);
  const auto scheduler = sched::MakeScheduler(
      kind, sched::LmtfConfig{.alpha = workload.config().alpha});
  return resume ? simulator.Resume(*scheduler, workload.events())
                : simulator.Run(*scheduler, workload.events());
}

sim::SimResult RunFlowLevel(const Workload& workload) {
  sim::Simulator simulator = MakeSimulator(workload);
  return simulator.RunFlowLevel(workload.events());
}

metrics::Report MeanReport(std::span<const metrics::Report> reports) {
  NU_EXPECTS(!reports.empty());
  metrics::Report mean;
  for (const metrics::Report& r : reports) {
    mean.event_count += r.event_count;
    mean.avg_ect += r.avg_ect;
    mean.tail_ect += r.tail_ect;
    mean.avg_queuing_delay += r.avg_queuing_delay;
    mean.worst_queuing_delay += r.worst_queuing_delay;
    mean.total_cost += r.total_cost;
    mean.total_plan_time += r.total_plan_time;
    mean.makespan += r.makespan;
    mean.total_deferred_flows += r.total_deferred_flows;
    mean.installs_attempted += r.installs_attempted;
    mean.installs_retried += r.installs_retried;
    mean.installs_failed += r.installs_failed;
    mean.events_aborted += r.events_aborted;
    mean.events_replanned += r.events_replanned;
    mean.flows_killed += r.flows_killed;
    mean.recovery_latency_mean += r.recovery_latency_mean;
    mean.recovery_latency_p99 += r.recovery_latency_p99;
    mean.recovery_latency_max += r.recovery_latency_max;
    mean.events_completed += r.events_completed;
    mean.events_shed += r.events_shed;
    mean.deadline_misses += r.deadline_misses;
    mean.events_requeued += r.events_requeued;
    mean.events_quarantined += r.events_quarantined;
    mean.audits_run += r.audits_run;
    mean.audit_violations += r.audit_violations;
    mean.max_queue_length =
        std::max(mean.max_queue_length, r.max_queue_length);
    mean.probe_cache_hits += r.probe_cache_hits;
    mean.probe_cache_misses += r.probe_cache_misses;
    mean.exec_plan_reuses += r.exec_plan_reuses;
    mean.overlay_probes += r.overlay_probes;
    mean.legacy_probe_copies += r.legacy_probe_copies;
    mean.parallel_probe_batches += r.parallel_probe_batches;
    mean.overlay_bytes_saved += r.overlay_bytes_saved;
    mean.probe_wall_seconds += r.probe_wall_seconds;
    mean.ckpt_snapshots += r.ckpt_snapshots;
    mean.ckpt_wal_records += r.ckpt_wal_records;
    mean.ckpt_recoveries += r.ckpt_recoveries;
    mean.ckpt_wal_replayed += r.ckpt_wal_replayed;
    mean.ckpt_snapshot_bytes += r.ckpt_snapshot_bytes;
    mean.ckpt_snapshot_wall_seconds += r.ckpt_snapshot_wall_seconds;
    mean.ckpt_recovery_wall_seconds += r.ckpt_recovery_wall_seconds;
  }
  const auto n = static_cast<double>(reports.size());
  mean.event_count = reports.front().event_count;
  mean.avg_ect /= n;
  mean.tail_ect /= n;
  mean.avg_queuing_delay /= n;
  mean.worst_queuing_delay /= n;
  mean.total_cost /= n;
  mean.total_plan_time /= n;
  mean.makespan /= n;
  mean.total_deferred_flows /= reports.size();
  mean.installs_attempted /= reports.size();
  mean.installs_retried /= reports.size();
  mean.installs_failed /= reports.size();
  mean.events_aborted /= reports.size();
  mean.events_replanned /= reports.size();
  mean.flows_killed /= reports.size();
  mean.recovery_latency_mean /= n;
  mean.recovery_latency_p99 /= n;
  mean.recovery_latency_max /= n;
  mean.events_completed /= reports.size();
  mean.events_shed /= reports.size();
  mean.deadline_misses /= reports.size();
  mean.events_requeued /= reports.size();
  mean.events_quarantined /= reports.size();
  mean.audits_run /= reports.size();
  mean.audit_violations /= reports.size();
  mean.probe_cache_hits /= reports.size();
  mean.probe_cache_misses /= reports.size();
  mean.exec_plan_reuses /= reports.size();
  mean.overlay_probes /= reports.size();
  mean.legacy_probe_copies /= reports.size();
  mean.parallel_probe_batches /= reports.size();
  mean.overlay_bytes_saved /= n;
  mean.probe_wall_seconds /= n;
  mean.ckpt_snapshots /= reports.size();
  mean.ckpt_wal_records /= reports.size();
  mean.ckpt_recoveries /= reports.size();
  mean.ckpt_wal_replayed /= reports.size();
  mean.ckpt_snapshot_bytes /= n;
  mean.ckpt_snapshot_wall_seconds /= n;
  mean.ckpt_recovery_wall_seconds /= n;
  // max_queue_length stays the cross-trial maximum (a bound, not a mean).
  return mean;
}

ComparisonResult CompareSchedulers(
    const ExperimentConfig& config,
    std::span<const sched::SchedulerKind> kinds, bool include_flow_level,
    std::size_t trials) {
  NU_EXPECTS(trials >= 1);
  ComparisonResult result;

  // Trials are fully independent (own workload, own path-provider caches,
  // own RNG streams), so they run concurrently; results are collected in
  // trial order, keeping output identical to a serial run.
  const std::vector<sched::SchedulerKind> kinds_copy(kinds.begin(),
                                                     kinds.end());
  auto run_trial = [&config, kinds_copy,
                    include_flow_level](std::size_t trial) {
    ExperimentConfig trial_config = config;
    trial_config.seed = config.seed + trial;
    const Workload workload(trial_config);
    std::map<std::string, metrics::Report> reports;
    for (sched::SchedulerKind kind : kinds_copy) {
      reports[sched::ToString(kind)] = RunScheduler(workload, kind).report;
    }
    if (include_flow_level) {
      reports[kFlowLevelName] = RunFlowLevel(workload).report;
    }
    return reports;
  };

  std::vector<std::future<std::map<std::string, metrics::Report>>> futures;
  futures.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    futures.push_back(
        std::async(std::launch::async, run_trial, trial));
  }
  for (auto& future : futures) {
    for (auto& [name, report] : future.get()) {
      result.trials_by_name[name].push_back(report);
    }
  }

  for (const auto& [name, reports] : result.trials_by_name) {
    result.mean_by_name[name] = MeanReport(reports);
  }
  return result;
}

}  // namespace nu::exp
