#include "exp/runner.h"

#include <algorithm>
#include <future>
#include <map>

#include "common/check.h"
#include "common/rng_streams.h"
#include "metrics/report_fields.h"

namespace nu::exp {
namespace {

/// Builds a configured simulator (churn wired to the workload's trace).
sim::Simulator MakeSimulator(const Workload& workload,
                             const ckpt::CheckpointConfig* checkpoint =
                                 nullptr) {
  sim::SimConfig sim_config = workload.config().sim;
  if (checkpoint != nullptr) sim_config.checkpoint = *checkpoint;
  sim_config.seed =
      StreamSeed(workload.config().seed, RngStream::kSimFromWorkload);
  sim_config.churn.enabled = workload.config().background_churn;
  sim_config.churn.placement = workload.background_options();
  sim::Simulator simulator(workload.network(), workload.paths(), sim_config);
  if (sim_config.churn.enabled) {
    simulator.SetChurnFactory([&workload](std::uint64_t seed) {
      return MakeTrafficGenerator(workload.config().background_trace,
                                  workload.hosts(), Rng(seed));
    });
  }
  return simulator;
}

}  // namespace

sim::SimResult RunScheduler(const Workload& workload,
                            sched::SchedulerKind kind) {
  sim::Simulator simulator = MakeSimulator(workload);
  const auto scheduler = sched::MakeScheduler(
      kind, sched::LmtfConfig{.alpha = workload.config().alpha});
  return simulator.Run(*scheduler, workload.events());
}

sim::SimResult RunSchedulerCheckpointed(
    const Workload& workload, sched::SchedulerKind kind,
    const ckpt::CheckpointConfig& checkpoint, bool resume) {
  sim::Simulator simulator = MakeSimulator(workload, &checkpoint);
  const auto scheduler = sched::MakeScheduler(
      kind, sched::LmtfConfig{.alpha = workload.config().alpha});
  return resume ? simulator.Resume(*scheduler, workload.events())
                : simulator.Run(*scheduler, workload.events());
}

sim::SimResult RunFlowLevel(const Workload& workload) {
  sim::Simulator simulator = MakeSimulator(workload);
  return simulator.RunFlowLevel(workload.events());
}

metrics::Report MeanReport(std::span<const metrics::Report> reports) {
  NU_EXPECTS(!reports.empty());
  metrics::Report mean;
  // Accumulate then finalize, driven entirely by the shared descriptor
  // table: counters and doubles sum (kMax keeps the running maximum), then
  // kMean fields divide by the trial count and kFirst fields take trial 0.
  for (const metrics::Report& r : reports) {
    for (const metrics::ReportField& field : metrics::kReportFields) {
      if (field.counter != nullptr) {
        if (field.mean == metrics::FieldMean::kMax) {
          mean.*field.counter =
              std::max(mean.*field.counter, r.*field.counter);
        } else {
          mean.*field.counter += r.*field.counter;
        }
      } else {
        mean.*field.real += r.*field.real;
      }
    }
  }
  const auto n = static_cast<double>(reports.size());
  for (const metrics::ReportField& field : metrics::kReportFields) {
    switch (field.mean) {
      case metrics::FieldMean::kFirst:
        if (field.counter != nullptr) {
          mean.*field.counter = reports.front().*field.counter;
        } else {
          mean.*field.real = reports.front().*field.real;
        }
        break;
      case metrics::FieldMean::kMax:
        break;  // already the cross-trial maximum (a bound, not a mean)
      case metrics::FieldMean::kMean:
        if (field.counter != nullptr) {
          mean.*field.counter /= reports.size();
        } else {
          mean.*field.real /= n;
        }
        break;
    }
  }
  return mean;
}

ComparisonResult CompareSchedulers(
    const ExperimentConfig& config,
    std::span<const sched::SchedulerKind> kinds, bool include_flow_level,
    std::size_t trials) {
  NU_EXPECTS(trials >= 1);
  ComparisonResult result;

  // Trials are fully independent (own workload, own path-provider caches,
  // own RNG streams), so they run concurrently; results are collected in
  // trial order, keeping output identical to a serial run.
  const std::vector<sched::SchedulerKind> kinds_copy(kinds.begin(),
                                                     kinds.end());
  auto run_trial = [&config, kinds_copy,
                    include_flow_level](std::size_t trial) {
    ExperimentConfig trial_config = config;
    trial_config.seed = config.seed + trial;
    const Workload workload(trial_config);
    std::map<std::string, metrics::Report> reports;
    for (sched::SchedulerKind kind : kinds_copy) {
      reports[sched::ToString(kind)] = RunScheduler(workload, kind).report;
    }
    if (include_flow_level) {
      reports[kFlowLevelName] = RunFlowLevel(workload).report;
    }
    return reports;
  };

  std::vector<std::future<std::map<std::string, metrics::Report>>> futures;
  futures.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    futures.push_back(
        std::async(std::launch::async, run_trial, trial));
  }
  for (auto& future : futures) {
    for (auto& [name, report] : future.get()) {
      result.trials_by_name[name].push_back(report);
    }
  }

  for (const auto& [name, reports] : result.trials_by_name) {
    result.mean_by_name[name] = MeanReport(reports);
  }
  return result;
}

}  // namespace nu::exp
