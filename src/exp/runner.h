// Multi-trial experiment runner: runs a set of schedulers (plus optionally
// the flow-level baseline) over several seeded workloads and averages the
// per-run reports — the procedure behind every figure bench.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "exp/workload.h"
#include "metrics/report.h"
#include "sched/factory.h"

namespace nu::exp {

/// One scheduler's run on one workload.
[[nodiscard]] sim::SimResult RunScheduler(const Workload& workload,
                                          sched::SchedulerKind kind);

/// RunScheduler with checkpointing wired in (see docs/model.md §11). With
/// `resume` false, runs from scratch writing snapshots/journals into
/// `checkpoint.dir` (and throws fault::ControllerCrash if the workload's
/// crash spec fires); with `resume` true, recovers from the directory and
/// finishes the run instead of starting fresh.
[[nodiscard]] sim::SimResult RunSchedulerCheckpointed(
    const Workload& workload, sched::SchedulerKind kind,
    const ckpt::CheckpointConfig& checkpoint, bool resume);

/// The flow-level baseline on one workload.
[[nodiscard]] sim::SimResult RunFlowLevel(const Workload& workload);

/// Pointwise mean of reports (all must have the same event count shape).
[[nodiscard]] metrics::Report MeanReport(
    std::span<const metrics::Report> reports);

/// Name used for the flow-level baseline in comparison maps.
inline constexpr const char* kFlowLevelName = "flow-level";

struct ComparisonResult {
  /// Mean report per scheduler name ("fifo", "lmtf", "p-lmtf", "reorder",
  /// "flow-level").
  std::map<std::string, metrics::Report> mean_by_name;
  /// Per-trial raw reports, same keys.
  std::map<std::string, std::vector<metrics::Report>> trials_by_name;
};

/// Builds `trials` workloads (seed, seed+1, ...), runs every requested
/// scheduler (and the flow-level baseline when asked) on each, and averages.
[[nodiscard]] ComparisonResult CompareSchedulers(
    const ExperimentConfig& config,
    std::span<const sched::SchedulerKind> kinds, bool include_flow_level,
    std::size_t trials);

}  // namespace nu::exp
