// Deterministic chaos campaigns: sweep randomized scenario x scheduler x
// fault-plan combinations through the simulator, judge each run against a
// set of oracles (auditor violations, recovery errors, report-CSV
// nondeterminism), and shrink every failure ddmin-style to a minimal repro
// artifact that replays bit-identically. The campaign is a pure function of
// its options — same seed, same trials, same failures, same artifacts —
// which is what makes a chaos failure a bug report instead of an anecdote.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "fault/fault_plan.h"
#include "sched/factory.h"

namespace nu::exp {

/// Thrown on malformed repro artifacts (ParseArtifact).
class ChaosError : public std::runtime_error {
 public:
  explicit ChaosError(const std::string& what)
      : std::runtime_error("chaos artifact error: " + what) {}
};

/// One fully pinned chaos trial: everything a failing run needs to be rerun
/// exactly — workload shape, scheduler, fault plan, cascade model, and an
/// optional flaky-install storm window. Serializes to the repro-artifact
/// format (SerializeArtifact / ParseArtifact).
struct ChaosScenario {
  std::uint64_t seed = 1;
  /// Fat-Tree arity of the workload fabric (even, >= 4).
  std::size_t fat_tree_k = 4;
  std::size_t event_count = 6;
  sched::SchedulerKind scheduler = sched::SchedulerKind::kLmtf;
  fault::FaultPlan plan;
  fault::CascadeConfig cascade;
  std::optional<fault::FlakyStorm> storm;
  /// Grey-failure model (silent dataplane divergence — ack-lies,
  /// stragglers, rule loss; docs/model.md §16). A non-empty model also arms
  /// the reconciler and the drift-convergence oracle: a run must end with
  /// zero residual drift beyond what abandonment or quarantine explicitly
  /// excuses. Empty = healthy dataplane; old artifacts parse unchanged.
  fault::GreyFailureModel grey;
  /// Serve-mode trial: > 0 replaces the offline trace with the open-loop
  /// arrival stream at `serve_load` x `serve_rate` events/s and arms the
  /// deadline-miss oracle. `event_count` then doubles as the stream
  /// duration in virtual seconds (so ddmin's trace-halving stage shortens
  /// the stream), and the scheduler field is ignored — serve runs always
  /// use the brownout-degradable P-LMTF ladder. 0 = offline scenario; old
  /// artifacts parse unchanged.
  double serve_load = 0.0;
  /// Pinned arrival base rate (events/s) for serve-mode trials. Pinned
  /// rather than calibrated so judging a scenario never depends on a
  /// calibration run.
  double serve_rate = 1.0;
  /// Pod-sharded engine: >= 2 runs every trial on the sharded simulator
  /// (SimConfig::shards), putting the mailbox, shard audits, and the
  /// round-barrier protocol under the chaos oracles. 0 = unsharded; old
  /// artifacts parse unchanged.
  std::size_t shards = 0;
  /// Worker threads for sharded trials (0 = engine default).
  std::size_t shard_threads = 0;

  friend bool operator==(const ChaosScenario& a, const ChaosScenario& b);
};

/// Verdict of judging one scenario against the oracles.
struct ChaosVerdict {
  bool failed = false;
  /// Which oracle fired: "audit-violation" | "recovery-error" |
  /// "audit-failure" | "deadline-miss" | "drift-residual" |
  /// "nondeterminism" | "injected-bug"; empty when none.
  std::string oracle;
  std::string detail;
};

struct ChaosOptions {
  std::uint64_t seed = 1;
  std::size_t trials = 8;
  /// Workload shape for generated scenarios.
  std::size_t fat_tree_k = 4;
  std::size_t event_count = 6;
  /// Rerun every judged scenario and byte-compare the normalized report
  /// CSVs (the determinism oracle). Doubles the simulation cost.
  bool check_determinism = true;
  /// Planted deterministic defect for exercising the full find -> shrink ->
  /// replay loop end to end: the oracle additionally fails any run in which
  /// a fault killed at least one flow. Shrinking then converges on a
  /// minimal plan that still draws blood.
  bool inject_bug = false;
  /// Budget of oracle evaluations the shrinker may spend per failure.
  std::size_t max_shrink_runs = 64;
  /// Serve-mode campaign: > 0 makes every trial an online-serving run at
  /// this offered load (see ChaosScenario::serve_load) with the
  /// deadline-miss oracle armed — an admitted event missing its tenant SLO
  /// is a finding (admission + brownout should have shed or rejected it).
  double serve_load = 0.0;
  /// Base arrival rate for serve-mode trials (events/s).
  double serve_rate = 1.0;
  /// Run every trial on the pod-sharded engine with this many shards
  /// (>= 2); 0 keeps trials unsharded.
  std::size_t shards = 0;
  /// Worker threads for sharded trials (0 = engine default).
  std::size_t shard_threads = 0;
  /// Grey-failure model pinned onto EVERY trial (the --grey= flag). Empty
  /// lets MakeTrialScenario roll its own model on a fraction of trials.
  fault::GreyFailureModel grey;
};

/// One shrunk failure of a campaign.
struct ChaosFailure {
  /// Trial index (0-based) whose scenario failed.
  std::size_t trial = 0;
  /// The minimized scenario (ShrinkScenario output).
  ChaosScenario scenario;
  /// Verdict of the minimized scenario.
  ChaosVerdict verdict;
  /// Oracle evaluations the shrinker spent.
  std::size_t shrink_runs = 0;
  /// SerializeArtifact(scenario) — ready to write to disk and --replay.
  std::string artifact;
};

struct ChaosCampaignResult {
  std::size_t trials_run = 0;
  std::vector<ChaosFailure> failures;
};

/// Builds the deterministic scenario for campaign trial `trial` (exposed so
/// tests can pin individual trials without running a whole campaign).
[[nodiscard]] ChaosScenario MakeTrialScenario(const ChaosOptions& options,
                                              std::size_t trial);

/// Runs `scenario` once through the simulator. Throws fault::FaultPlanError
/// if the scenario's plan does not validate against its own fabric — a
/// malformed scenario is a harness bug, not a chaos finding.
[[nodiscard]] sim::SimResult RunScenario(const ChaosScenario& scenario);

/// Runs and judges `scenario` against every oracle (twice when
/// options.check_determinism).
[[nodiscard]] ChaosVerdict JudgeScenario(const ChaosScenario& scenario,
                                         const ChaosOptions& options);

/// ddmin-style minimization of a failing scenario: drops fault-plan events
/// (chunk halving down to single specs, unused group declarations pruned),
/// then sheds grey-failure specs, then halves the event count, then steps
/// the fabric arity down — keeping every candidate that still fails the
/// same oracle. Deterministic; spends
/// at most options.max_shrink_runs oracle evaluations. `runs`, when
/// non-null, receives the number spent.
[[nodiscard]] ChaosScenario ShrinkScenario(const ChaosScenario& failing,
                                           const ChaosOptions& options,
                                           std::size_t* runs = nullptr);

/// Campaign driver: for each trial, generate -> judge -> (on failure)
/// shrink and serialize the repro artifact.
[[nodiscard]] ChaosCampaignResult RunChaosCampaign(const ChaosOptions& options);

/// Repro-artifact text format ("netupdate-chaos-repro v1"): key=value
/// scenario lines followed by the embedded fault plan in its own text
/// format. Round-trips exactly and platform-independently (same shortest
/// round-trip number formatting as the fault-plan format).
[[nodiscard]] std::string SerializeArtifact(const ChaosScenario& scenario);
[[nodiscard]] ChaosScenario ParseArtifact(const std::string& text);

/// Report CSV with the wall-clock columns (probe_wall_seconds,
/// ckpt_snapshot_wall_seconds, ckpt_recovery_wall_seconds) zeroed — the
/// byte string the determinism oracle and replay verification compare.
[[nodiscard]] std::string NormalizedReportCsv(const sim::SimResult& result);

}  // namespace nu::exp
