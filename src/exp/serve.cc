#include "exp/serve.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/csv.h"
#include "common/rng_streams.h"
#include "common/table.h"
#include "fault/srlg.h"
#include "sched/plmtf.h"
#include "serve/degradable.h"

namespace nu::exp {
namespace {

/// Serve runs replace the offline event queue with the arrival stream; the
/// flow shape knobs follow the arrival config so calibration batches and
/// served events draw from the same distribution.
ExperimentConfig ServeWorkloadConfig(const ServeCampaignConfig& config) {
  ExperimentConfig exp = config.exp;
  exp.event_count = 0;
  exp.min_flows_per_event = config.serve.arrivals.min_flows;
  exp.max_flows_per_event = config.serve.arrivals.max_flows;
  return exp;
}

/// Simulator wiring shared by serve and calibration runs (mirrors
/// runner.cc's MakeSimulator: seed stream, churn factory).
sim::Simulator MakeServeSimulator(const Workload& workload,
                                  sim::SimConfig sim_config) {
  sim_config.seed =
      StreamSeed(workload.config().seed, RngStream::kSimFromWorkload);
  sim_config.churn.enabled = workload.config().background_churn;
  sim_config.churn.placement = workload.background_options();
  sim::Simulator simulator(workload.network(), workload.paths(), sim_config);
  if (sim_config.churn.enabled) {
    simulator.SetChurnFactory([&workload](std::uint64_t seed) {
      return MakeTrafficGenerator(workload.config().background_trace,
                                  workload.hosts(), Rng(seed));
    });
  }
  return simulator;
}

}  // namespace

ServeCampaignConfig DefaultServeCampaign(double rate) {
  ServeCampaignConfig config;
  config.exp.fat_tree_k = 4;
  config.exp.event_count = 0;

  // Guard: bounded queue with shed-costliest, watchdog + quarantine, and
  // the auditor in log-and-count mode — the acceptance oracles.
  guard::GuardConfig& guard = config.exp.sim.guard;
  guard.overload.max_queue_length = 16;
  guard.overload.policy = guard::OverloadPolicy::kShedCostliest;
  guard.deadline.base_deadline = 20.0;
  guard.deadline.per_flow_deadline = 1.0;
  guard.deadline.max_failures = 3;
  guard.auditor.enabled = true;
  guard.auditor.mode = guard::AuditMode::kLogAndCount;

  // Two tenants: a premium tenant that survives Shedding and a best-effort
  // tenant (priority 0 < shed_min_priority) that absorbs the cuts.
  serve::ArrivalConfig& arrivals = config.serve.arrivals;
  arrivals.process = serve::ArrivalProcess::kPoisson;
  arrivals.rate = rate;
  arrivals.duration = 60.0;
  arrivals.min_flows = 5;
  arrivals.max_flows = 20;
  arrivals.tenants = {
      serve::TenantSpec{
          .name = "premium", .weight = 1.0, .priority = 2, .slo_deadline = 45.0},
      serve::TenantSpec{.name = "besteffort",
                        .weight = 2.0,
                        .priority = 0,
                        .slo_deadline = 60.0},
  };

  config.serve.enabled = true;
  config.serve.brownout.queue_reference =
      static_cast<double>(guard.overload.max_queue_length);
  config.serve.budget.enabled = true;
  config.serve.budget.default_rate = rate;  // per-tenant: scaled by weight
  config.serve.budget.default_burst = 8.0 * std::max(rate, 1.0);
  return config;
}

std::vector<update::UpdateEvent> BuildServeArrivals(
    const ServeCampaignConfig& config, const Workload& workload) {
  serve::ArrivalConfig arrivals = config.serve.arrivals;
  arrivals.rate *= config.offered_load;
  const std::unique_ptr<trace::TrafficGenerator> flow_source =
      MakeTrafficGenerator(
          workload.config().background_trace, workload.hosts(),
          Rng(StreamSeed(workload.config().seed,
                         RngStream::kServeFlowSource)));
  return serve::GenerateArrivals(arrivals, *flow_source,
                                 workload.config().seed);
}

sim::SimResult RunServeCampaign(const ServeCampaignConfig& config) {
  NU_EXPECTS(config.offered_load > 0.0);
  const Workload workload(ServeWorkloadConfig(config));
  const std::vector<update::UpdateEvent> events =
      BuildServeArrivals(config, workload);

  sim::SimConfig sim_config = config.exp.sim;
  sim_config.serve = config.serve;
  sim_config.serve.enabled = true;
  sim_config.serve.arrivals.rate *= config.offered_load;
  if (config.pod_outage) {
    NU_CHECK(config.exp.topology == TopologyKind::kFatTree);
    const std::vector<fault::SharedRiskGroup> groups =
        fault::DeriveFatTreeSrlgs(workload.fat_tree());
    // Pod groups lead the catalog ("pod0".."pod<k-1>", then core planes).
    NU_CHECK(config.pod < workload.config().fat_tree_k);
    const std::size_t group =
        sim_config.faults.plan.AddGroup(groups[config.pod]);
    sim_config.faults.plan.AddGroupOutage(config.pod_outage_time,
                                          config.pod_outage_duration, group);
  }

  sim::Simulator simulator = MakeServeSimulator(workload, sim_config);
  serve::DegradableScheduler scheduler(
      sched::LmtfConfig{.alpha = config.exp.alpha},
      config.serve.brownout.degraded_alpha);
  return simulator.Run(scheduler, events);
}

double EstimateServiceRate(const ServeCampaignConfig& config,
                           std::size_t probe_events) {
  NU_EXPECTS(probe_events >= 1);
  // Closed calibration batch: `probe_events` events all arrive at t=0 and
  // drain at full quality — serve mode, faults, and the bounded queue are
  // all off so nothing is shed and the makespan measures pure capacity.
  ExperimentConfig exp = ServeWorkloadConfig(config);
  exp.event_count = probe_events;
  exp.mean_interarrival = 0.0;
  const Workload workload(exp);

  sim::SimConfig sim_config = exp.sim;
  sim_config.serve = serve::ServeOptions{};
  sim_config.faults = fault::FaultConfig{};
  sim_config.guard = guard::GuardConfig{};
  sim::Simulator simulator = MakeServeSimulator(workload, sim_config);
  sched::PlmtfScheduler scheduler(sched::LmtfConfig{.alpha = exp.alpha});
  const sim::SimResult result = simulator.Run(scheduler, workload.events());

  Seconds makespan = 0.0;
  for (const metrics::EventRecord& record : result.records) {
    makespan = std::max(makespan, record.completion);
  }
  NU_CHECK(makespan > 0.0);
  return static_cast<double>(probe_events) / makespan;
}

std::vector<ServeSweepPoint> RunServeSweep(const ServeCampaignConfig& config,
                                           const std::vector<double>& loads,
                                           bool calibrate) {
  const double base_rate =
      calibrate ? EstimateServiceRate(config) : config.serve.arrivals.rate;
  std::vector<ServeSweepPoint> points;
  points.reserve(loads.size());
  for (const double load : loads) {
    ServeCampaignConfig point_config = config;
    point_config.serve.arrivals.rate = base_rate;
    point_config.offered_load = load;
    ServeSweepPoint point;
    point.offered_load = load;
    point.rate = base_rate * load;
    point.result = RunServeCampaign(point_config);
    points.push_back(std::move(point));
  }
  return points;
}

std::string ServeSweepCsv(const std::vector<ServeSweepPoint>& points) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"offered_load", "rate",         "arrivals",
                   "admitted",     "completed",    "rejected_budget",
                   "rejected_deadline", "rejected_priority", "shed_queue",
                   "quarantined",  "slo_misses",   "ect_p50",
                   "ect_p99",      "ect_p999",     "jain_ect",
                   "jain_admission", "transitions", "final_state",
                   "reached_shedding", "recovered_healthy", "violations"});
  for (const ServeSweepPoint& point : points) {
    const serve::ServeSummary& s = point.result.serve;
    writer.WriteRow({
        FormatDouble(point.offered_load, 3),
        FormatDouble(point.rate, 4),
        std::to_string(s.arrivals),
        std::to_string(s.admitted),
        std::to_string(s.completed),
        std::to_string(s.rejected_budget),
        std::to_string(s.rejected_deadline),
        std::to_string(s.rejected_priority),
        std::to_string(s.shed_queue),
        std::to_string(s.quarantined),
        std::to_string(s.slo_misses),
        FormatDouble(s.ect_p50, 4),
        FormatDouble(s.ect_p99, 4),
        FormatDouble(s.ect_p999, 4),
        FormatDouble(s.jain_ect, 4),
        FormatDouble(s.jain_admission, 4),
        std::to_string(s.transitions),
        serve::ToString(s.final_state),
        s.reached_shedding ? "1" : "0",
        s.recovered_healthy ? "1" : "0",
        std::to_string(point.result.violations.size()),
    });
  }
  return out.str();
}

}  // namespace nu::exp
