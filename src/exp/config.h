// Experiment configuration shared by the bench binaries: one struct captures
// everything the paper's evaluation section varies (topology size, background
// trace and utilization, event count/shape, alpha, seeds).
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "update/event_generator.h"

namespace nu::exp {

enum class TraceFamily : std::uint8_t {
  kYahooLike,
  kBenson,
  kUniform,
};

[[nodiscard]] const char* ToString(TraceFamily family);

enum class TopologyKind : std::uint8_t {
  kFatTree,
  kLeafSpine,
};

[[nodiscard]] const char* ToString(TopologyKind kind);

struct ExperimentConfig {
  /// Fabric family. The paper evaluates on a Fat-Tree; leaf-spine is
  /// provided for generality experiments.
  TopologyKind topology = TopologyKind::kFatTree;
  /// Leaf-spine shape (used when topology == kLeafSpine; capacities are
  /// derived from link_capacity and fabric_capacity_factor).
  std::size_t leaf_spine_leaves = 16;
  std::size_t leaf_spine_spines = 8;
  std::size_t leaf_spine_hosts_per_leaf = 8;

  /// Fat-Tree pods; the paper uses 8.
  std::size_t fat_tree_k = 8;
  /// Per-link capacity in Mbps; the paper uses 1 Gbps.
  Mbps link_capacity = 1000.0;
  /// Fabric oversubscription: fabric links get this fraction of host-link
  /// capacity (0.5 = the common 2:1), concentrating contention in the core
  /// where migration can relieve it. `utilization` targets the fabric.
  double fabric_capacity_factor = 0.5;

  /// Background traffic: trace family and target utilization.
  TraceFamily background_trace = TraceFamily::kYahooLike;
  double utilization = 0.7;
  /// Fabric-link scratch capacity kept free of background traffic, as in
  /// SWAN (which reserves 10-15%).
  double background_headroom = 0.05;
  /// Host-uplink headroom. Benson et al. observe edge links far below core
  /// utilization (servers do not saturate NICs); also a saturated host
  /// uplink could never be relieved by migration, making flows from that
  /// host permanently unplaceable.
  double background_host_headroom = 0.35;

  /// Cap on a single update-event flow's demand (Mbps). Update events carry
  /// real transfers (VM state, re-replication), so elephants up to this
  /// size contend for fabric capacity and exercise migration.
  Mbps max_event_flow_demand = 200.0;
  /// Cap on an update-event flow's transmission duration (seconds), so
  /// freed capacity returns on the scheduling timescale.
  Seconds max_event_flow_duration = 30.0;

  /// Update-event workload. Event flows are Benson-style per the paper
  /// ("according to the characteristics of network traffic mentioned in
  /// [12]").
  std::size_t event_count = 10;
  std::size_t min_flows_per_event = 10;
  std::size_t max_flows_per_event = 100;
  /// Mean exponential inter-arrival gap between events (0 = all at t=0,
  /// forming the initial queue as in the paper's setup).
  Seconds mean_interarrival = 0.0;

  /// LMTF / P-LMTF sample size; the paper evaluates alpha = 4.
  std::size_t alpha = 4;

  /// Background traffic churns during the run (flows end and fresh ones
  /// arrive), keeping update costs in flux as Section III-C describes.
  /// Disable to reproduce the static-background setting of Fig. 7.
  bool background_churn = true;

  /// Simulation cost model, migration strategy, etc.
  sim::SimConfig sim;

  /// Base RNG seed; trials use seed, seed+1, ...
  std::uint64_t seed = 42;
};

}  // namespace nu::exp
