#include "exp/chaos.h"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <string_view>

#include "common/check.h"
#include "exp/serve.h"
#include "fault/srlg.h"
#include "guard/auditor.h"
#include "metrics/export.h"
#include "topo/fat_tree.h"

namespace nu::exp {
namespace {

constexpr std::string_view kArtifactHeader = "netupdate-chaos-repro v1";

[[noreturn]] void Fail(const std::string& what) { throw ChaosError(what); }

/// Shortest round-trip formatting (same discipline as the fault-plan
/// format): artifact bytes must be platform-independent.
std::string FormatNum(double value) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  NU_CHECK(ec == std::errc());
  return std::string(buf, end);
}

double ParseNum(std::string_view token) {
  double value = 0.0;
  const auto [rest, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || rest != token.data() + token.size()) {
    Fail("bad number '" + std::string(token) + "'");
  }
  return value;
}

std::uint64_t ParseU64(std::string_view token) {
  std::uint64_t value = 0;
  const auto [rest, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || rest != token.data() + token.size()) {
    Fail("bad integer '" + std::string(token) + "'");
  }
  return value;
}

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

sched::SchedulerKind ParseSchedulerName(const std::string& name) {
  // ParseSchedulerKind aborts on unknown names; artifacts are hand-editable
  // so pre-validate and throw instead.
  for (const char* known :
       {"fifo", "reorder", "lmtf", "p-lmtf", "plmtf", "sjf-size", "sjf"}) {
    if (name == known) return sched::ParseSchedulerKind(name);
  }
  Fail("unknown scheduler '" + name + "'");
}

/// Rebuilds a plan holding exactly `specs`, pruning group declarations no
/// surviving spec references (and remapping the kept specs' group indices).
fault::FaultPlan RebuildPlan(const fault::FaultPlan& original,
                             const std::vector<fault::FaultSpec>& specs) {
  std::vector<std::size_t> remap(original.groups().size(), fault::kNoGroup);
  fault::FaultPlan plan;
  for (std::size_t gi = 0; gi < original.groups().size(); ++gi) {
    const bool used =
        std::any_of(specs.begin(), specs.end(),
                    [gi](const fault::FaultSpec& s) { return s.group == gi; });
    if (used) remap[gi] = plan.AddGroup(original.groups()[gi]);
  }
  for (const fault::FaultSpec& s : specs) {
    switch (s.kind) {
      case fault::FaultKind::kLinkDown:
        plan.AddLinkDown(s.time, s.link);
        break;
      case fault::FaultKind::kLinkUp:
        plan.AddLinkUp(s.time, s.link);
        break;
      case fault::FaultKind::kSwitchDown:
        plan.AddSwitchDown(s.time, s.node);
        break;
      case fault::FaultKind::kSwitchUp:
        plan.AddSwitchUp(s.time, s.node);
        break;
      case fault::FaultKind::kGroupDown:
        plan.AddGroupDown(s.time, remap[s.group]);
        break;
      case fault::FaultKind::kGroupUp:
        plan.AddGroupUp(s.time, remap[s.group]);
        break;
    }
  }
  return plan;
}

bool PlanValidFor(const fault::FaultPlan& plan, std::size_t k) {
  const topo::FatTree ft(
      topo::FatTreeConfig{.k = k, .link_capacity = 100.0});
  try {
    (void)plan.Validate(ft.graph());
  } catch (const fault::FaultPlanError&) {
    return false;
  }
  return true;
}

}  // namespace

bool operator==(const ChaosScenario& a, const ChaosScenario& b) {
  const bool storm_eq =
      a.storm.has_value() == b.storm.has_value() &&
      (!a.storm.has_value() ||
       (a.storm->start == b.storm->start &&
        a.storm->duration == b.storm->duration &&
        a.storm->model.failure_probability ==
            b.storm->model.failure_probability &&
        a.storm->model.latency_jitter_frac ==
            b.storm->model.latency_jitter_frac));
  return a.seed == b.seed && a.fat_tree_k == b.fat_tree_k &&
         a.event_count == b.event_count && a.scheduler == b.scheduler &&
         a.plan == b.plan &&
         a.cascade.max_secondary_failures == b.cascade.max_secondary_failures &&
         a.cascade.utilization_threshold == b.cascade.utilization_threshold &&
         a.cascade.hold_time == b.cascade.hold_time &&
         a.cascade.outage == b.cascade.outage && storm_eq &&
         a.grey == b.grey && a.serve_load == b.serve_load &&
         a.serve_rate == b.serve_rate && a.shards == b.shards &&
         a.shard_threads == b.shard_threads;
}

ChaosScenario MakeTrialScenario(const ChaosOptions& options,
                                std::size_t trial) {
  ChaosScenario scenario;
  scenario.seed = options.seed ^ (0x9E3779B97F4A7C15ULL * (trial + 1));
  scenario.fat_tree_k = options.fat_tree_k;
  scenario.event_count = options.event_count;
  constexpr sched::SchedulerKind kRotation[] = {sched::SchedulerKind::kFifo,
                                                sched::SchedulerKind::kLmtf,
                                                sched::SchedulerKind::kPlmtf};
  scenario.scheduler = kRotation[trial % 3];

  // The plan rng is independent of the run's streams: generating a harder
  // plan never perturbs what the simulator itself draws.
  Rng rng(options.seed ^ (0xC0DEULL + trial));
  const topo::FatTree ft(topo::FatTreeConfig{.k = scenario.fat_tree_k,
                                             .link_capacity = 100.0});
  switch (rng.Index(3)) {
    case 0: {
      fault::RandomLinkFaultOptions lo;
      lo.failures = 2;
      lo.outage = 2.0;
      scenario.plan = fault::MakeRandomLinkFaultPlan(ft.graph(), lo, rng);
      break;
    }
    case 1: {
      fault::RandomSrlgFaultOptions so;
      so.incidents = 1;
      so.outage = 2.0;
      scenario.plan = fault::MakeRandomSrlgFaultPlan(
          fault::DeriveFatTreeSrlgs(ft), so, rng);
      break;
    }
    default: {
      // Correlated group incident with the overload cascade armed on top.
      fault::RandomSrlgFaultOptions so;
      so.incidents = 1;
      so.outage = 2.0;
      scenario.plan = fault::MakeRandomSrlgFaultPlan(
          fault::DeriveFatTreeSrlgs(ft), so, rng);
      scenario.cascade.max_secondary_failures = 2;
      scenario.cascade.utilization_threshold = 0.9;
      scenario.cascade.hold_time = 0.3;
      scenario.cascade.outage = 2.0;
      break;
    }
  }
  if (rng.Bernoulli(0.3)) {
    scenario.storm = fault::FlakyStorm{1.0, 1.5, {0.8, 0.2}};
  }
  if (options.grey.enabled()) {
    scenario.grey = options.grey;
  } else if (rng.Bernoulli(0.35)) {
    // A lying dataplane on roughly a third of trials; the failure mode
    // rotates so campaigns cover every repair path (immediate re-issue,
    // deferred apply, silent re-eviction).
    fault::GreyFailureSpec spec;
    switch (rng.Index(3)) {
      case 0:
        spec.kind = fault::GreyKind::kAckLie;
        spec.probability = 0.08;
        break;
      case 1:
        spec.kind = fault::GreyKind::kStraggler;
        spec.probability = 0.15;
        spec.min_delay = 0.2;
        spec.max_delay = 1.0;
        break;
      default:
        spec.kind = fault::GreyKind::kRuleLoss;
        spec.probability = 0.08;
        spec.min_delay = 0.5;
        spec.max_delay = 2.0;
        break;
    }
    scenario.grey.specs.push_back(spec);
  }
  scenario.serve_load = options.serve_load;
  scenario.serve_rate = options.serve_rate;
  scenario.shards = options.shards;
  scenario.shard_threads = options.shard_threads;
  return scenario;
}

sim::SimResult RunScenario(const ChaosScenario& scenario) {
  if (scenario.serve_load > 0.0) {
    // Online-serving trial: the scenario's fault plan lands under the
    // open-loop arrival stream with the full serve stack (admission,
    // brownout ladder, bounded queue) armed. event_count doubles as the
    // stream duration so the shrinker's trace-halving stage applies.
    ServeCampaignConfig campaign = DefaultServeCampaign(scenario.serve_rate);
    campaign.exp.fat_tree_k = scenario.fat_tree_k;
    campaign.exp.seed = scenario.seed;
    campaign.offered_load = scenario.serve_load;
    campaign.serve.arrivals.duration =
        static_cast<Seconds>(scenario.event_count);
    campaign.exp.sim.faults.plan = scenario.plan;
    campaign.exp.sim.faults.cascade = scenario.cascade;
    if (scenario.storm.has_value()) {
      campaign.exp.sim.faults.storms.push_back(*scenario.storm);
    }
    campaign.exp.sim.faults.retry.max_attempts = 3;
    campaign.exp.sim.faults.retry.base_delay = 0.05;
    campaign.exp.sim.faults.grey = scenario.grey;
    // A grey model without the reconciler drifts forever by design; chaos
    // trials always pair them so the convergence oracle is meaningful.
    campaign.exp.sim.recon.enabled = scenario.grey.enabled();
    campaign.exp.sim.shards = scenario.shards;
    campaign.exp.sim.shard_threads = scenario.shard_threads;
    return RunServeCampaign(campaign);
  }

  ExperimentConfig config;
  config.fat_tree_k = scenario.fat_tree_k;
  config.utilization = 0.6;
  config.event_count = scenario.event_count;
  config.min_flows_per_event = 4;
  config.max_flows_per_event = 12;
  config.alpha = 4;
  config.background_churn = true;
  config.seed = scenario.seed;

  config.sim.faults.plan = scenario.plan;
  config.sim.faults.cascade = scenario.cascade;
  if (scenario.storm.has_value()) {
    config.sim.faults.storms.push_back(*scenario.storm);
  }
  config.sim.faults.flaky.failure_probability = 0.1;
  config.sim.faults.flaky.latency_jitter_frac = 0.1;
  config.sim.faults.retry.max_attempts = 3;
  config.sim.faults.retry.base_delay = 0.05;
  config.sim.faults.grey = scenario.grey;
  config.sim.recon.enabled = scenario.grey.enabled();

  config.sim.guard.overload.max_queue_length = 8;
  config.sim.guard.deadline.base_deadline = 6.0;
  config.sim.guard.deadline.per_flow_deadline = 1.0;
  config.sim.guard.deadline.requeue_backoff = 0.5;
  config.sim.guard.deadline.max_failures = 3;
  config.sim.guard.auditor.enabled = true;
  config.sim.guard.auditor.mode = guard::AuditMode::kLogAndCount;
  config.sim.guard.auditor.cadence = 8;

  config.sim.shards = scenario.shards;
  config.sim.shard_threads = scenario.shard_threads;

  const Workload workload(config);
  return RunScheduler(workload, scenario.scheduler);
}

std::string NormalizedReportCsv(const sim::SimResult& result) {
  metrics::Report report = result.report;
  report.probe_wall_seconds = 0.0;
  report.ckpt_snapshot_wall_seconds = 0.0;
  report.ckpt_recovery_wall_seconds = 0.0;
  std::ostringstream out;
  metrics::WriteReportCsv(out, report);
  return out.str();
}

ChaosVerdict JudgeScenario(const ChaosScenario& scenario,
                           const ChaosOptions& options) {
  ChaosVerdict verdict;
  auto run_once = [&](sim::SimResult& out) -> bool {
    try {
      out = RunScenario(scenario);
    } catch (const sim::RecoveryError& e) {
      verdict.failed = true;
      verdict.oracle = "recovery-error";
      verdict.detail = e.what();
      return false;
    } catch (const guard::AuditFailure& e) {
      verdict.failed = true;
      verdict.oracle = "audit-failure";
      verdict.detail = e.what();
      return false;
    }
    return true;
  };
  sim::SimResult first;
  if (!run_once(first)) return verdict;
  if (!first.violations.empty()) {
    const guard::AuditViolation& v = first.violations.front();
    verdict.failed = true;
    verdict.oracle = "audit-violation";
    verdict.detail = "[" + v.invariant + "] round " + std::to_string(v.round) +
                     " epoch " + std::to_string(v.topology_epoch) + ": " +
                     v.detail;
    return verdict;
  }
  if (scenario.serve_load > 0.0 && first.serve.slo_misses > 0) {
    // Deadline-miss oracle: an ADMITTED event blew its tenant SLO. The
    // admission gates and brownout ladder exist precisely so overload is
    // absorbed by rejection/shedding instead of tail latency — a miss means
    // the stack let something through it could not serve in time.
    verdict.failed = true;
    verdict.oracle = "deadline-miss";
    verdict.detail = std::to_string(first.serve.slo_misses) +
                     " admitted event(s) missed their tenant SLO deadline";
    return verdict;
  }
  if (scenario.grey.enabled()) {
    // Drift-convergence oracle: a campaign run must end reconciled. The
    // only excused residual divergence is rules the reconciler explicitly
    // ABANDONED (repair budget exhausted) — quarantined switches drop
    // their divergence when drained, so anything beyond the abandonment
    // count is live drift the run finished on top of.
    const metrics::Report& rep = first.report;
    if (rep.drift_residual_rules > rep.drift_rules_abandoned) {
      verdict.failed = true;
      verdict.oracle = "drift-residual";
      std::string detail = std::to_string(rep.drift_residual_rules);
      detail += " residual divergent rule(s) at end of run, only ";
      detail += std::to_string(rep.drift_rules_abandoned);
      detail += " excused by abandonment";
      verdict.detail = std::move(detail);
      return verdict;
    }
  }
  if (options.check_determinism) {
    sim::SimResult second;
    if (!run_once(second)) return verdict;
    if (NormalizedReportCsv(first) != NormalizedReportCsv(second)) {
      verdict.failed = true;
      verdict.oracle = "nondeterminism";
      verdict.detail = "normalized report CSVs differ across identical runs";
      return verdict;
    }
    if (first.serve_timeseries_csv != second.serve_timeseries_csv) {
      verdict.failed = true;
      verdict.oracle = "nondeterminism";
      verdict.detail = "serve timeseries CSVs differ across identical runs";
      return verdict;
    }
  }
  if (options.inject_bug && first.report.flows_killed > 0) {
    verdict.failed = true;
    verdict.oracle = "injected-bug";
    verdict.detail =
        std::to_string(first.report.flows_killed) + " flows killed by faults";
  }
  return verdict;
}

ChaosScenario ShrinkScenario(const ChaosScenario& failing,
                             const ChaosOptions& options, std::size_t* runs) {
  std::size_t spent = 0;
  const ChaosVerdict original = JudgeScenario(failing, options);
  ++spent;
  ChaosScenario best = failing;
  if (!original.failed) {
    // Nothing to hold on to — the caller handed us a passing scenario.
    if (runs != nullptr) *runs = spent;
    return best;
  }
  // A candidate counts only if it fails the SAME oracle: shrinking must not
  // wander from one bug to a different one.
  auto still_fails = [&](const ChaosScenario& candidate) -> bool {
    if (spent >= options.max_shrink_runs) return false;
    ++spent;
    const ChaosVerdict v = JudgeScenario(candidate, options);
    return v.failed && v.oracle == original.oracle;
  };

  // Stage 1: ddmin over the fault plan's specs — drop complement chunks,
  // halving granularity, until no single-spec removal preserves the
  // failure. An empty plan is tried first (the bug may not need faults).
  if (!best.plan.empty()) {
    ChaosScenario bare = best;
    bare.plan = fault::FaultPlan();
    if (still_fails(bare)) {
      best = bare;
    } else {
      std::vector<fault::FaultSpec> specs = best.plan.specs();
      std::size_t granularity = 2;
      while (specs.size() >= 2) {
        const std::size_t chunk = (specs.size() + granularity - 1) /
                                  granularity;
        bool reduced = false;
        for (std::size_t start = 0; start < specs.size(); start += chunk) {
          std::vector<fault::FaultSpec> rest;
          rest.reserve(specs.size());
          for (std::size_t i = 0; i < specs.size(); ++i) {
            if (i < start || i >= start + chunk) rest.push_back(specs[i]);
          }
          if (rest.empty()) continue;
          ChaosScenario candidate = best;
          candidate.plan = RebuildPlan(best.plan, rest);
          if (still_fails(candidate)) {
            specs = std::move(rest);
            best = std::move(candidate);
            granularity = std::max<std::size_t>(granularity - 1, 2);
            reduced = true;
            break;
          }
        }
        if (!reduced) {
          if (granularity >= specs.size()) break;
          granularity = std::min(specs.size(), granularity * 2);
        }
      }
    }
  }

  // Stage 2: shed grey-failure specs — the whole model first (the bug may
  // not need a lying dataplane at all), then one spec at a time.
  if (best.grey.enabled()) {
    ChaosScenario honest = best;
    honest.grey = fault::GreyFailureModel();
    if (still_fails(honest)) {
      best = std::move(honest);
    } else if (best.grey.specs.size() >= 2) {
      for (std::size_t i = 0; i < best.grey.specs.size();) {
        ChaosScenario candidate = best;
        candidate.grey.specs.erase(candidate.grey.specs.begin() +
                                   static_cast<std::ptrdiff_t>(i));
        if (still_fails(candidate)) {
          best = std::move(candidate);
        } else {
          ++i;
        }
      }
    }
  }

  // Stage 3: halve the trace length while the failure survives.
  while (best.event_count > 2) {
    ChaosScenario candidate = best;
    candidate.event_count = best.event_count / 2;
    if (!still_fails(candidate)) break;
    best = std::move(candidate);
  }

  // Stage 4: step the fabric arity down. Candidates whose plan references
  // ids outside the smaller fabric are skipped, not judged — an invalid
  // plan is a harness error, never a finding.
  while (best.fat_tree_k > 4) {
    ChaosScenario candidate = best;
    candidate.fat_tree_k = best.fat_tree_k - 2;
    if (!PlanValidFor(candidate.plan, candidate.fat_tree_k)) break;
    if (!still_fails(candidate)) break;
    best = std::move(candidate);
  }

  if (runs != nullptr) *runs = spent;
  return best;
}

ChaosCampaignResult RunChaosCampaign(const ChaosOptions& options) {
  ChaosCampaignResult result;
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const ChaosScenario scenario = MakeTrialScenario(options, trial);
    const ChaosVerdict verdict = JudgeScenario(scenario, options);
    ++result.trials_run;
    if (!verdict.failed) continue;
    ChaosFailure failure;
    failure.trial = trial;
    failure.scenario = ShrinkScenario(scenario, options, &failure.shrink_runs);
    failure.verdict = JudgeScenario(failure.scenario, options);
    failure.artifact = SerializeArtifact(failure.scenario);
    result.failures.push_back(std::move(failure));
  }
  return result;
}

std::string SerializeArtifact(const ChaosScenario& scenario) {
  std::ostringstream out;
  out << kArtifactHeader << "\n";
  out << "seed " << scenario.seed << "\n";
  out << "k " << scenario.fat_tree_k << "\n";
  out << "events " << scenario.event_count << "\n";
  out << "scheduler " << sched::ToString(scenario.scheduler) << "\n";
  out << "cascade " << scenario.cascade.max_secondary_failures << " "
      << FormatNum(scenario.cascade.utilization_threshold) << " "
      << FormatNum(scenario.cascade.hold_time) << " "
      << FormatNum(scenario.cascade.outage) << "\n";
  if (scenario.storm.has_value()) {
    out << "storm " << FormatNum(scenario.storm->start) << " "
        << FormatNum(scenario.storm->duration) << " "
        << FormatNum(scenario.storm->model.failure_probability) << " "
        << FormatNum(scenario.storm->model.latency_jitter_frac) << "\n";
  }
  if (scenario.grey.enabled()) {
    // Absent on healthy-dataplane scenarios so pre-grey artifacts stay
    // byte-stable. The compact model form contains no spaces.
    out << "grey " << fault::FormatGreyModel(scenario.grey) << "\n";
  }
  if (scenario.serve_load > 0.0) {
    // Absent on offline scenarios so pre-serve artifacts stay byte-stable.
    out << "serve " << FormatNum(scenario.serve_load) << " "
        << FormatNum(scenario.serve_rate) << "\n";
  }
  if (scenario.shards >= 2) {
    // Absent on unsharded scenarios so pre-shard artifacts stay byte-stable.
    out << "shards " << scenario.shards << " " << scenario.shard_threads
        << "\n";
  }
  out << "plan\n";
  scenario.plan.SaveText(out);
  return out.str();
}

ChaosScenario ParseArtifact(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Tokens(line) != Tokens(std::string(
                                                     kArtifactHeader))) {
    Fail("missing header '" + std::string(kArtifactHeader) + "'");
  }
  ChaosScenario scenario;
  bool saw_seed = false;
  bool saw_plan = false;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = Tokens(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& key = tokens[0];
    if (key == "plan") {
      // Everything after the 'plan' line is the embedded fault plan; a
      // malformed one is a malformed ARTIFACT, so surface it as ChaosError.
      try {
        scenario.plan = fault::FaultPlan::LoadText(in);
      } catch (const fault::FaultPlanError& e) {
        Fail(std::string("embedded plan: ") + e.what());
      }
      saw_plan = true;
      break;
    }
    if (key == "seed" && tokens.size() == 2) {
      scenario.seed = ParseU64(tokens[1]);
      saw_seed = true;
    } else if (key == "k" && tokens.size() == 2) {
      scenario.fat_tree_k = static_cast<std::size_t>(ParseU64(tokens[1]));
    } else if (key == "events" && tokens.size() == 2) {
      scenario.event_count = static_cast<std::size_t>(ParseU64(tokens[1]));
    } else if (key == "scheduler" && tokens.size() == 2) {
      scenario.scheduler = ParseSchedulerName(tokens[1]);
    } else if (key == "cascade" && tokens.size() == 5) {
      scenario.cascade.max_secondary_failures =
          static_cast<std::size_t>(ParseU64(tokens[1]));
      scenario.cascade.utilization_threshold = ParseNum(tokens[2]);
      scenario.cascade.hold_time = ParseNum(tokens[3]);
      scenario.cascade.outage = ParseNum(tokens[4]);
    } else if (key == "grey" && tokens.size() == 2) {
      try {
        scenario.grey = fault::ParseGreyModel(tokens[1]).Validate();
      } catch (const fault::FaultPlanError& e) {
        Fail(std::string("grey model: ") + e.what());
      }
    } else if (key == "serve" && tokens.size() == 3) {
      scenario.serve_load = ParseNum(tokens[1]);
      scenario.serve_rate = ParseNum(tokens[2]);
    } else if (key == "shards" && tokens.size() == 3) {
      scenario.shards = static_cast<std::size_t>(ParseU64(tokens[1]));
      scenario.shard_threads = static_cast<std::size_t>(ParseU64(tokens[2]));
    } else if (key == "storm" && tokens.size() == 5) {
      fault::FlakyStorm storm;
      storm.start = ParseNum(tokens[1]);
      storm.duration = ParseNum(tokens[2]);
      storm.model.failure_probability = ParseNum(tokens[3]);
      storm.model.latency_jitter_frac = ParseNum(tokens[4]);
      scenario.storm = storm;
    } else {
      Fail("unrecognized line '" + line + "'");
    }
  }
  if (!saw_seed) Fail("missing 'seed' line");
  if (!saw_plan) Fail("missing 'plan' section");
  return scenario;
}

}  // namespace nu::exp
