// Workload construction: builds the fabric (Fat-Tree or leaf-spine),
// injects background traffic to the target utilization, and generates the
// update-event queue — one self-owned bundle the simulator runs against.
// All randomness derives from the config seed, so identical configs give
// identical workloads.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "exp/config.h"
#include "net/network.h"
#include "topo/fat_tree.h"
#include "topo/leaf_spine.h"
#include "topo/path_provider.h"
#include "trace/background.h"

namespace nu::exp {

/// Owns everything a simulation run needs: topology, path provider, loaded
/// network, and the event queue. Non-copyable.
class Workload {
 public:
  explicit Workload(const ExperimentConfig& config);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const topo::PathProvider& paths() const { return *provider_; }
  [[nodiscard]] const net::Network& network() const { return *network_; }
  [[nodiscard]] const std::vector<update::UpdateEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const trace::BackgroundResult& background() const {
    return background_;
  }
  /// The placement constraints used for background injection — reused by
  /// the simulator's churn so replacement flows keep the same shape.
  [[nodiscard]] const trace::BackgroundOptions& background_options() const {
    return background_options_;
  }
  /// Hosts of whichever fabric was built.
  [[nodiscard]] std::span<const NodeId> hosts() const;

  /// The Fat-Tree instance; requires topology == kFatTree.
  [[nodiscard]] const topo::FatTree& fat_tree() const;
  /// The leaf-spine instance; requires topology == kLeafSpine.
  [[nodiscard]] const topo::LeafSpine& leaf_spine() const;

 private:
  ExperimentConfig config_;
  std::optional<topo::FatTree> fat_tree_;
  std::optional<topo::LeafSpine> leaf_spine_;
  std::unique_ptr<topo::PathProvider> provider_;
  std::optional<net::Network> network_;
  trace::BackgroundOptions background_options_;
  trace::BackgroundResult background_;
  std::vector<update::UpdateEvent> events_;
};

/// Builds the configured background generator over `hosts` (exposed for
/// benches that need a raw generator, e.g. Fig. 1).
[[nodiscard]] std::unique_ptr<trace::TrafficGenerator> MakeTrafficGenerator(
    TraceFamily family, std::span<const NodeId> hosts, Rng rng);

}  // namespace nu::exp
