// Serve-mode campaigns: the experiment harness for the online-serving
// layer. One ServeCampaignConfig bundles a fabric/background workload
// (ExperimentConfig, its offline event queue unused), an open-loop arrival
// stream, the serve knobs (brownout, budgets, telemetry), and an optional
// mid-run correlated failure (SRLG pod outage) — everything tools/nu_serve,
// bench_serve, and the chaos deadline-miss oracle need to run the brownout
// loop deterministically.
//
// The capacity anchor: EstimateServiceRate measures how fast the fabric
// drains events at the campaign's shape (a short calibration run), so an
// offered-load sweep can express rates as multiples of capacity ("2x
// overload") instead of absolute events/second that drift with topology
// size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/config.h"
#include "exp/workload.h"
#include "serve/arrivals.h"
#include "serve/runtime.h"
#include "sim/simulator.h"

namespace nu::exp {

struct ServeCampaignConfig {
  /// Fabric + background workload. `event_count` is ignored (the arrival
  /// stream replaces the offline queue); everything else — topology,
  /// utilization, churn, alpha, sim cost model — applies as usual.
  ExperimentConfig exp;
  /// Serve knobs. `serve.enabled` is forced on; `serve.arrivals.rate` is
  /// scaled by `offered_load` before the run.
  serve::ServeOptions serve;
  /// Offered load as a multiplier on serve.arrivals.rate (1.0 = as
  /// configured). Sweeps typically span [0.5, 3.0] x capacity.
  double offered_load = 1.0;
  /// Mid-run correlated failure: Fat-Tree pod `pod` loses power at
  /// `pod_outage_time` for `pod_outage_duration` seconds (SRLG group
  /// outage). Requires exp.topology == kFatTree when enabled.
  bool pod_outage = false;
  std::size_t pod = 0;
  Seconds pod_outage_time = 20.0;
  Seconds pod_outage_duration = 10.0;
};

/// A campaign config with the guard + serve defaults the acceptance story
/// assumes: bounded queue (shed-costliest), watchdog with quarantine,
/// auditor in log-and-count mode, two tenants (one premium, one best-effort
/// sheddable), and a Poisson stream at `rate` events/second.
[[nodiscard]] ServeCampaignConfig DefaultServeCampaign(double rate);

/// Generates the campaign's arrival stream against `workload`'s hosts
/// (flow draws ride RngStream::kServeFlows of the workload seed; arrival
/// times ride kServeArrivals). Exposed so tests and the chaos oracle can
/// inspect the stream the run will see.
[[nodiscard]] std::vector<update::UpdateEvent> BuildServeArrivals(
    const ServeCampaignConfig& config, const Workload& workload);

/// Runs one serve campaign: builds the workload, generates arrivals at the
/// configured offered load, wires the optional pod outage, and runs the
/// DegradableScheduler under the brownout controller. Deterministic in
/// `config` (bit-identical timeseries across same-config runs).
[[nodiscard]] sim::SimResult RunServeCampaign(const ServeCampaignConfig& config);

/// Calibrates the fabric's service rate (events/second drained) for the
/// campaign's shape: runs a closed batch of `probe_events` events through
/// the same scheduler/fabric with serve mode off and divides by the
/// makespan. The sweep multiplies this by the offered-load factors.
[[nodiscard]] double EstimateServiceRate(const ServeCampaignConfig& config,
                                         std::size_t probe_events = 16);

/// One offered-load sweep point.
struct ServeSweepPoint {
  double offered_load = 0.0;
  /// Absolute arrival rate this point ran at (events/second).
  double rate = 0.0;
  sim::SimResult result;
};

/// Sweeps offered load over `loads` (multipliers on the calibrated service
/// rate when `calibrate`, else on config.serve.arrivals.rate).
[[nodiscard]] std::vector<ServeSweepPoint> RunServeSweep(
    const ServeCampaignConfig& config, const std::vector<double>& loads,
    bool calibrate = true);

/// Summary CSV over sweep points: one row per offered load with admission,
/// SLO, brownout, and fairness columns (stable column set — golden-testable).
[[nodiscard]] std::string ServeSweepCsv(
    const std::vector<ServeSweepPoint>& points);

}  // namespace nu::exp
