#include "exp/config.h"

namespace nu::exp {

const char* ToString(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFatTree:
      return "fat-tree";
    case TopologyKind::kLeafSpine:
      return "leaf-spine";
  }
  return "?";
}

const char* ToString(TraceFamily family) {
  switch (family) {
    case TraceFamily::kYahooLike:
      return "yahoo-like";
    case TraceFamily::kBenson:
      return "benson";
    case TraceFamily::kUniform:
      return "uniform";
  }
  return "?";
}

}  // namespace nu::exp
