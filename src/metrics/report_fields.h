// Field-descriptor table for metrics::Report: the single source of truth
// for the report CSV schema (column names, order, formatting) and for
// cross-trial aggregation (exp::MeanReport). Adding a member to Report
// means adding exactly one descriptor here; the tiling test in
// tests/metrics/report_fields_test.cc fails otherwise.
#pragma once

#include <array>
#include <cstddef>

#include "metrics/report.h"

namespace nu::metrics {

/// How MeanReport aggregates a field across trials.
enum class FieldMean {
  kMean,   ///< Sum over trials divided by trial count.
  kFirst,  ///< Taken from the first trial (identical across trials).
  kMax,    ///< Cross-trial maximum (a bound, not a mean).
};

/// One Report member. Exactly one of `counter`/`real` is non-null; the
/// other pointer-to-member is nullptr.
struct ReportField {
  const char* csv_name;
  std::size_t Report::* counter;
  double Report::* real;
  /// FormatDouble precision for real fields; unused for counters.
  int csv_precision;
  FieldMean mean;
};

/// Every Report member, in declaration order — which is also the report-CSV
/// column order.
inline constexpr std::array<ReportField, 59> kReportFields = {{
    {"events", &Report::event_count, nullptr, 0, FieldMean::kFirst},
    {"avg_ect", nullptr, &Report::avg_ect, 4, FieldMean::kMean},
    {"tail_ect", nullptr, &Report::tail_ect, 4, FieldMean::kMean},
    {"avg_qdelay", nullptr, &Report::avg_queuing_delay, 4, FieldMean::kMean},
    {"worst_qdelay", nullptr, &Report::worst_queuing_delay, 4,
     FieldMean::kMean},
    {"total_cost", nullptr, &Report::total_cost, 2, FieldMean::kMean},
    {"plan_time", nullptr, &Report::total_plan_time, 4, FieldMean::kMean},
    {"makespan", nullptr, &Report::makespan, 4, FieldMean::kMean},
    {"deferred", &Report::total_deferred_flows, nullptr, 0, FieldMean::kMean},
    {"installs_attempted", &Report::installs_attempted, nullptr, 0,
     FieldMean::kMean},
    {"installs_retried", &Report::installs_retried, nullptr, 0,
     FieldMean::kMean},
    {"installs_failed", &Report::installs_failed, nullptr, 0,
     FieldMean::kMean},
    {"events_aborted", &Report::events_aborted, nullptr, 0, FieldMean::kMean},
    {"events_replanned", &Report::events_replanned, nullptr, 0,
     FieldMean::kMean},
    {"group_faults", &Report::group_faults, nullptr, 0, FieldMean::kMean},
    {"cascade_failures", &Report::cascade_failures, nullptr, 0,
     FieldMean::kMean},
    {"cascade_depth_max", &Report::cascade_depth_max, nullptr, 0,
     FieldMean::kMax},
    {"flows_killed", &Report::flows_killed, nullptr, 0, FieldMean::kMean},
    {"recovery_mean", nullptr, &Report::recovery_latency_mean, 4,
     FieldMean::kMean},
    {"recovery_p99", nullptr, &Report::recovery_latency_p99, 4,
     FieldMean::kMean},
    {"recovery_max", nullptr, &Report::recovery_latency_max, 4,
     FieldMean::kMean},
    {"srlg_recovery_mean", nullptr, &Report::srlg_recovery_latency_mean, 4,
     FieldMean::kMean},
    {"srlg_recovery_p99", nullptr, &Report::srlg_recovery_latency_p99, 4,
     FieldMean::kMean},
    {"events_completed", &Report::events_completed, nullptr, 0,
     FieldMean::kMean},
    {"events_shed", &Report::events_shed, nullptr, 0, FieldMean::kMean},
    {"deadline_misses", &Report::deadline_misses, nullptr, 0,
     FieldMean::kMean},
    {"events_requeued", &Report::events_requeued, nullptr, 0,
     FieldMean::kMean},
    {"events_quarantined", &Report::events_quarantined, nullptr, 0,
     FieldMean::kMean},
    {"audits_run", &Report::audits_run, nullptr, 0, FieldMean::kMean},
    {"audit_violations", &Report::audit_violations, nullptr, 0,
     FieldMean::kMean},
    {"max_queue_length", &Report::max_queue_length, nullptr, 0,
     FieldMean::kMax},
    {"probe_cache_hits", &Report::probe_cache_hits, nullptr, 0,
     FieldMean::kMean},
    {"probe_cache_misses", &Report::probe_cache_misses, nullptr, 0,
     FieldMean::kMean},
    {"exec_plan_reuses", &Report::exec_plan_reuses, nullptr, 0,
     FieldMean::kMean},
    {"overlay_probes", &Report::overlay_probes, nullptr, 0, FieldMean::kMean},
    {"legacy_probe_copies", &Report::legacy_probe_copies, nullptr, 0,
     FieldMean::kMean},
    {"parallel_probe_batches", &Report::parallel_probe_batches, nullptr, 0,
     FieldMean::kMean},
    {"overlay_bytes_saved", nullptr, &Report::overlay_bytes_saved, 0,
     FieldMean::kMean},
    {"probe_wall_seconds", nullptr, &Report::probe_wall_seconds, 6,
     FieldMean::kMean},
    {"ckpt_snapshots", &Report::ckpt_snapshots, nullptr, 0, FieldMean::kMean},
    {"ckpt_wal_records", &Report::ckpt_wal_records, nullptr, 0,
     FieldMean::kMean},
    {"ckpt_recoveries", &Report::ckpt_recoveries, nullptr, 0,
     FieldMean::kMean},
    {"ckpt_wal_replayed", &Report::ckpt_wal_replayed, nullptr, 0,
     FieldMean::kMean},
    {"ckpt_snapshot_bytes", nullptr, &Report::ckpt_snapshot_bytes, 0,
     FieldMean::kMean},
    {"ckpt_snapshot_wall_seconds", nullptr, &Report::ckpt_snapshot_wall_seconds,
     6, FieldMean::kMean},
    {"ckpt_recovery_wall_seconds", nullptr, &Report::ckpt_recovery_wall_seconds,
     6, FieldMean::kMean},
    {"drift_checks", &Report::drift_checks, nullptr, 0, FieldMean::kMean},
    {"drift_rules_detected", &Report::drift_rules_detected, nullptr, 0,
     FieldMean::kMean},
    {"grey_ack_lies", &Report::grey_ack_lies, nullptr, 0, FieldMean::kMean},
    {"grey_stragglers", &Report::grey_stragglers, nullptr, 0,
     FieldMean::kMean},
    {"grey_rules_lost", &Report::grey_rules_lost, nullptr, 0,
     FieldMean::kMean},
    {"drift_repairs", &Report::drift_repairs, nullptr, 0, FieldMean::kMean},
    {"drift_repair_failures", &Report::drift_repair_failures, nullptr, 0,
     FieldMean::kMean},
    {"drift_rules_abandoned", &Report::drift_rules_abandoned, nullptr, 0,
     FieldMean::kMean},
    {"switches_degraded", &Report::switches_degraded, nullptr, 0,
     FieldMean::kMean},
    {"switches_quarantined", &Report::switches_quarantined, nullptr, 0,
     FieldMean::kMean},
    {"drift_residual_rules", &Report::drift_residual_rules, nullptr, 0,
     FieldMean::kMean},
    {"drift_repair_mean", nullptr, &Report::drift_repair_mean, 4,
     FieldMean::kMean},
    {"drift_repair_p99", nullptr, &Report::drift_repair_p99, 4,
     FieldMean::kMean},
}};

}  // namespace nu::metrics
