// Per-shard execution counters for the sharded simulation engine. Two
// strictly separated groups:
//
//   * Logical counters (fan-outs, tasks, mailbox messages, cross-shard
//     events) — functions of the configuration and workload only. They are
//     identical across thread counts and machines, land in snapshots, and
//     the shard determinism test relies on that.
//   * Wall-clock measurements (busy seconds per shard, fan-out wall,
//     modeled critical-path seconds) — host-dependent. They never enter
//     snapshots, reports, or CSVs; bench_scale reads them to compute the
//     thread-count sweep.
//
// The modeled critical path: every fan-out measures each shard task's busy
// seconds; with T workers and the deterministic assignment shard s ->
// worker s % T, the fan-out's modeled makespan is the busiest worker's
// total. Accumulating that per fan-out for T in {1,2,4,8} yields the
// parallel-region time a T-core host would see, without requiring T
// physical cores to measure it — the serial remainder of the run is the
// same either way.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace nu::metrics {

/// Thread counts the modeled critical path is accumulated for.
inline constexpr std::array<std::size_t, 4> kShardModelThreads = {1, 2, 4, 8};

struct ShardStats {
  /// True when the run executed on the sharded engine (shards >= 2).
  bool enabled = false;
  std::size_t shards = 0;
  /// Worker threads the run actually used.
  std::size_t threads = 0;

  // --- Logical counters (deterministic; serialized in snapshots) ---
  /// Parallel probe batches routed through the shard runtime.
  std::uint64_t probe_fanouts = 0;
  /// Per-shard probe tasks dispatched (<= probe_fanouts * shards).
  std::uint64_t probe_tasks = 0;
  /// Audit passes fanned out across shards.
  std::uint64_t audit_fanouts = 0;
  /// Per-shard audit tasks dispatched.
  std::uint64_t audit_tasks = 0;
  /// Messages posted through the inter-shard mailbox.
  std::uint64_t mailbox_messages = 0;
  /// Admitted events whose flows touch more than one shard (cross-pod).
  std::uint64_t cross_shard_events = 0;
  /// Distributed-argmin merges cross-checked against the global scan.
  std::uint64_t argmin_merges = 0;
  /// Reconcile read-back passes fanned out across shards.
  std::uint64_t recon_fanouts = 0;
  /// Per-shard drift read-back tasks dispatched.
  std::uint64_t recon_tasks = 0;

  // --- Wall-clock measurements (host-dependent; never serialized) ---
  /// Wall seconds spent inside parallel regions (coordinator view).
  double fanout_wall_seconds = 0.0;
  /// Sum of per-task busy seconds across all fan-outs.
  double fanout_busy_seconds = 0.0;
  /// Modeled parallel-region seconds for kShardModelThreads[i] workers.
  std::array<double, kShardModelThreads.size()> modeled_parallel_seconds{};
  /// Cumulative busy seconds per shard (size == shards when enabled).
  std::vector<double> per_shard_busy_seconds;

  /// Folds one fan-out's measurements in: `per_shard_seconds[s]` is shard
  /// s's task busy time (0.0 for shards with no task), `wall` the region's
  /// coordinator wall time.
  void OnFanout(std::span<const double> per_shard_seconds, double wall) {
    fanout_wall_seconds += wall;
    if (per_shard_busy_seconds.size() < per_shard_seconds.size()) {
      per_shard_busy_seconds.resize(per_shard_seconds.size(), 0.0);
    }
    for (std::size_t s = 0; s < per_shard_seconds.size(); ++s) {
      fanout_busy_seconds += per_shard_seconds[s];
      per_shard_busy_seconds[s] += per_shard_seconds[s];
    }
    for (std::size_t i = 0; i < kShardModelThreads.size(); ++i) {
      const std::size_t workers = kShardModelThreads[i];
      double busiest = 0.0;
      for (std::size_t w = 0; w < workers; ++w) {
        double total = 0.0;
        for (std::size_t s = w; s < per_shard_seconds.size(); s += workers) {
          total += per_shard_seconds[s];
        }
        busiest = std::max(busiest, total);
      }
      modeled_parallel_seconds[i] += busiest;
    }
  }
};

}  // namespace nu::metrics
