#include "metrics/tenant.h"

#include "common/check.h"
#include "metrics/fairness.h"

namespace nu::metrics {

void TenantAccountant::SetTenants(std::vector<std::string> names) {
  tenants_.clear();
  tenants_.reserve(names.size());
  for (std::string& name : names) {
    TenantCounters counters;
    counters.name = std::move(name);
    tenants_.push_back(std::move(counters));
  }
}

TenantCounters& TenantAccountant::Of(TenantId tenant) {
  NU_EXPECTS(tenant.valid() && tenant.value() < tenants_.size());
  return tenants_[tenant.value()];
}

const TenantCounters& TenantAccountant::Of(TenantId tenant) const {
  NU_EXPECTS(tenant.valid() && tenant.value() < tenants_.size());
  return tenants_[tenant.value()];
}

double TenantAccountant::JainEct() const {
  std::vector<double> means;
  means.reserve(tenants_.size());
  for (const TenantCounters& t : tenants_) {
    if (!t.ect.empty()) means.push_back(t.ect.mean());
  }
  return JainIndex(means);
}

double TenantAccountant::JainAdmission() const {
  std::vector<double> fractions;
  fractions.reserve(tenants_.size());
  for (const TenantCounters& t : tenants_) {
    if (t.arrivals > 0) {
      fractions.push_back(static_cast<double>(t.admitted) /
                          static_cast<double>(t.arrivals));
    }
  }
  return JainIndex(fractions);
}

void TenantAccountant::SaveState(BinWriter& w) const {
  w.Size(tenants_.size());
  for (const TenantCounters& t : tenants_) {
    w.Str(t.name);
    w.U64(t.arrivals);
    w.U64(t.admitted);
    w.U64(t.completed);
    w.U64(t.rejected_budget);
    w.U64(t.rejected_deadline);
    w.U64(t.rejected_priority);
    w.U64(t.shed_queue);
    w.U64(t.quarantined);
    w.U64(t.slo_misses);
    w.Size(t.ect.count());
    for (double v : t.ect.values()) w.F64(v);
  }
}

void TenantAccountant::LoadState(BinReader& r) {
  tenants_.clear();
  const std::size_t n = r.Size();
  tenants_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TenantCounters t;
    t.name = r.Str();
    t.arrivals = r.U64();
    t.admitted = r.U64();
    t.completed = r.U64();
    t.rejected_budget = r.U64();
    t.rejected_deadline = r.U64();
    t.rejected_priority = r.U64();
    t.shed_queue = r.U64();
    t.quarantined = r.U64();
    t.slo_misses = r.U64();
    const std::size_t samples = r.Size();
    for (std::size_t s = 0; s < samples; ++s) t.ect.Add(r.F64());
    tenants_.push_back(std::move(t));
  }
}

}  // namespace nu::metrics
