#include "metrics/gantt.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/check.h"

namespace nu::metrics {

std::string RenderGantt(std::span<const EventRecord> records,
                        const GanttOptions& options) {
  NU_EXPECTS(!records.empty());
  NU_EXPECTS(options.width >= 8);

  double t0 = records.front().arrival;
  double t1 = records.front().completion;
  for (const EventRecord& r : records) {
    t0 = std::min(t0, r.arrival);
    t1 = std::max(t1, r.completion);
  }
  const double span = std::max(t1 - t0, 1e-9);
  const auto column = [&](double t) {
    const auto c = static_cast<std::size_t>((t - t0) / span *
                                            static_cast<double>(options.width));
    return std::min(c, options.width - 1);
  };

  std::vector<const EventRecord*> rows;
  rows.reserve(records.size());
  for (const EventRecord& r : records) rows.push_back(&r);
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const EventRecord* a, const EventRecord* b) {
                     return options.sort_by_arrival
                                ? a->arrival < b->arrival
                                : a->exec_start < b->exec_start;
                   });

  std::string out;
  char buf[96];
  for (const EventRecord* r : rows) {
    std::string bar(options.width, ' ');
    const std::size_t wait_begin = column(r->arrival);
    const std::size_t run_begin = column(r->exec_start);
    const std::size_t run_end = column(r->completion);
    for (std::size_t c = wait_begin; c < run_begin; ++c) bar[c] = '.';
    for (std::size_t c = run_begin; c <= run_end; ++c) bar[c] = '#';
    std::snprintf(buf, sizeof(buf), "ev %3llu |",
                  static_cast<unsigned long long>(r->event.value()));
    out += buf;
    out += bar;
    std::snprintf(buf, sizeof(buf), "|  wait %6.1fs  ect %6.1fs\n",
                  r->QueuingDelay(), r->Ect());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "time axis: %.1fs .. %.1fs ('.' queued, '#' executing)\n", t0,
                t1);
  out += buf;
  return out;
}

}  // namespace nu::metrics
