// Machine-readable export of simulation results: per-event records and
// aggregate reports as CSV, so bench output can be re-plotted and runs can
// be diffed outside the repo.
#pragma once

#include <ostream>
#include <span>

#include "metrics/collector.h"
#include "metrics/report.h"

namespace nu::metrics {

/// Writes one row per event:
///   event,arrival,exec_start,completion,queuing_delay,ect,cost,flow_count,
///   deferred_flows,aborts,replans,deadline_misses,status
/// `status` is the terminal state (completed|shed|aborted|quarantined;
/// non-completed events carry -1 exec_start/completion sentinels).
void WriteRecordsCsv(std::ostream& out, std::span<const EventRecord> records);

/// Writes a single-row aggregate (with header):
///   events,avg_ect,tail_ect,avg_qdelay,worst_qdelay,total_cost,plan_time,
///   makespan,deferred,installs_attempted,installs_retried,installs_failed,
///   events_aborted,events_replanned,flows_killed,recovery_mean,
///   recovery_p99,recovery_max,events_completed,events_shed,
///   deadline_misses,events_requeued,events_quarantined,audits_run,
///   audit_violations,max_queue_length
void WriteReportCsv(std::ostream& out, const Report& report);

}  // namespace nu::metrics
