// Machine-readable export of simulation results: per-event records and
// aggregate reports as CSV, so bench output can be re-plotted and runs can
// be diffed outside the repo.
#pragma once

#include <ostream>
#include <span>

#include "metrics/collector.h"
#include "metrics/report.h"

namespace nu::metrics {

/// Writes one row per event:
///   event,arrival,exec_start,completion,queuing_delay,ect,cost,flow_count,
///   deferred_flows
void WriteRecordsCsv(std::ostream& out, std::span<const EventRecord> records);

/// Writes a single-row aggregate (with header):
///   events,avg_ect,tail_ect,avg_qdelay,worst_qdelay,total_cost,plan_time,
///   makespan,deferred
void WriteReportCsv(std::ostream& out, const Report& report);

}  // namespace nu::metrics
