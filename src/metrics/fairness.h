// Fairness quantification. The paper argues qualitatively that LMTF
// "relaxes fairness slightly" and that P-LMTF's opportunistic updating
// "improves fairness to some extent" — this module makes those claims
// measurable:
//
//   * Kendall-tau order violation: fraction of event pairs executed out of
//     arrival order (0 = strict FIFO fairness, 1 = fully reversed).
//   * Mean displacement: average |execution rank - arrival rank|, in
//     positions.
//   * Jain's fairness index over queuing delays: 1 = perfectly equal
//     delays, -> 1/n as one event absorbs all waiting.
//   * Worst displacement: the most positions any single event was pushed
//     back (how badly the least-lucky event was treated).
#pragma once

#include <span>

#include "metrics/collector.h"

namespace nu::metrics {

struct FairnessReport {
  /// Fraction of event pairs whose execution order inverts arrival order.
  double order_violation = 0.0;
  /// Mean |execution rank - arrival rank|.
  double mean_displacement = 0.0;
  /// Max over events of (execution rank - arrival rank): positions a single
  /// event was pushed *back* (delayed beyond its fair turn).
  std::size_t worst_pushback = 0;
  /// Jain's index over queuing delays (shifted by +1s so zero delays do not
  /// degenerate the index).
  double jain_queuing_delay = 1.0;

  /// Scalar summary in [0, 1]: 1 = FIFO-strict. Defined as
  /// (1 - order_violation).
  [[nodiscard]] double OrderFairness() const { return 1.0 - order_violation; }
};

/// Computes fairness over completed event records. Events are ranked by
/// arrival time (ties by record order — the queue order) and by execution
/// start. Requires every record to have started execution.
[[nodiscard]] FairnessReport ComputeFairness(
    std::span<const EventRecord> records);

/// Jain's fairness index over arbitrary non-negative samples:
/// (sum x)^2 / (n * sum x^2); 1 when all equal. Returns 1 for empty input.
[[nodiscard]] double JainIndex(std::span<const double> values);

}  // namespace nu::metrics
