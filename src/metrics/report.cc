#include "metrics/report.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace nu::metrics {

std::string Report::DebugString() const {
  std::ostringstream os;
  os << "report{events=" << event_count << " avg_ect=" << avg_ect
     << " tail_ect=" << tail_ect << " avg_qdelay=" << avg_queuing_delay
     << " worst_qdelay=" << worst_queuing_delay << " cost=" << total_cost
     << " plan_time=" << total_plan_time << " makespan=" << makespan;
  if (installs_attempted > 0 || flows_killed > 0) {
    os << " installs=" << installs_attempted << "/" << installs_retried
       << "r/" << installs_failed << "f aborted=" << events_aborted
       << " replanned=" << events_replanned << " killed=" << flows_killed
       << " recovery_mean=" << recovery_latency_mean;
  }
  if (events_shed > 0 || deadline_misses > 0 || events_quarantined > 0 ||
      audits_run > 0) {
    os << " completed=" << events_completed << " shed=" << events_shed
       << " deadline_misses=" << deadline_misses
       << " quarantined=" << events_quarantined << " audits=" << audits_run
       << "/" << audit_violations << "v max_queue=" << max_queue_length;
  }
  if (overlay_probes > 0 || legacy_probe_copies > 0 || probe_cache_hits > 0) {
    os << " probes{overlay=" << overlay_probes
       << " legacy=" << legacy_probe_copies << " cache=" << probe_cache_hits
       << "h/" << probe_cache_misses << "m reuse=" << exec_plan_reuses
       << " par_batches=" << parallel_probe_batches
       << " bytes_saved=" << overlay_bytes_saved
       << " wall=" << probe_wall_seconds << "s}";
  }
  if (ckpt_snapshots > 0 || ckpt_recoveries > 0) {
    os << " ckpt{snapshots=" << ckpt_snapshots
       << " wal_records=" << ckpt_wal_records
       << " recoveries=" << ckpt_recoveries
       << " replayed=" << ckpt_wal_replayed
       << " snapshot_bytes=" << ckpt_snapshot_bytes
       << " snapshot_wall=" << ckpt_snapshot_wall_seconds
       << "s recovery_wall=" << ckpt_recovery_wall_seconds << "s}";
  }
  if (drift_checks > 0 || grey_ack_lies > 0 || grey_stragglers > 0 ||
      grey_rules_lost > 0) {
    os << " drift{checks=" << drift_checks
       << " detected=" << drift_rules_detected << " lies=" << grey_ack_lies
       << " stragglers=" << grey_stragglers << " lost=" << grey_rules_lost
       << " repaired=" << drift_repairs << "/" << drift_repair_failures
       << "f abandoned=" << drift_rules_abandoned
       << " degraded=" << switches_degraded
       << " quarantined=" << switches_quarantined
       << " residual=" << drift_residual_rules
       << " repair_mean=" << drift_repair_mean << "s}";
  }
  os << "}";
  return os.str();
}

Report BuildReport(const Collector& collector, double total_plan_time,
                   double tail_percentile) {
  NU_EXPECTS(tail_percentile > 0.0 && tail_percentile <= 1.0);
  Report report;
  const Samples ects = collector.EctSamples();
  const Samples delays = collector.QueuingDelaySamples();
  report.event_count = collector.records().size();
  report.avg_ect = ects.mean();
  report.tail_ect = tail_percentile >= 1.0 ? ects.max()
                                           : ects.Percentile(tail_percentile);
  report.avg_queuing_delay = delays.mean();
  report.worst_queuing_delay = delays.max();
  report.total_cost = collector.TotalCost();
  report.total_plan_time = total_plan_time;
  for (const EventRecord& r : collector.records()) {
    report.makespan = std::max(report.makespan, r.completion);
    report.total_deferred_flows += r.deferred_flows;
  }
  for (const EventRecord& r : collector.records()) {
    if (r.status == TerminalStatus::kCompleted) ++report.events_completed;
  }
  const GuardStats& guard = collector.guard_stats();
  report.events_shed = guard.events_shed;
  report.deadline_misses = guard.deadline_misses;
  report.events_requeued = guard.events_requeued;
  report.events_quarantined = guard.events_quarantined;
  report.audits_run = guard.audits_run;
  report.audit_violations = guard.audit_violations;
  report.max_queue_length = guard.max_queue_length;
  const FaultStats& faults = collector.fault_stats();
  report.installs_attempted = faults.installs_attempted;
  report.installs_retried = faults.installs_retried;
  report.installs_failed = faults.installs_failed;
  report.events_aborted = faults.events_aborted;
  report.events_replanned = faults.events_replanned;
  report.group_faults = faults.group_faults;
  report.cascade_failures = faults.cascade_failures;
  report.cascade_depth_max = faults.cascade_depth_max;
  report.flows_killed = faults.flows_killed;
  if (!faults.recovery_latency.empty()) {
    report.recovery_latency_mean = faults.recovery_latency.mean();
    report.recovery_latency_p99 = faults.recovery_latency.Percentile(0.99);
    report.recovery_latency_max = faults.recovery_latency.max();
  }
  if (!faults.srlg_recovery_latency.empty()) {
    report.srlg_recovery_latency_mean = faults.srlg_recovery_latency.mean();
    report.srlg_recovery_latency_p99 =
        faults.srlg_recovery_latency.Percentile(0.99);
  }
  const ProbeStats& probes = collector.probe_stats();
  report.probe_cache_hits = probes.probe_cache_hits;
  report.probe_cache_misses = probes.probe_cache_misses;
  report.exec_plan_reuses = probes.exec_plan_reuses;
  report.overlay_probes = probes.overlay_probes;
  report.legacy_probe_copies = probes.legacy_probe_copies;
  report.parallel_probe_batches = probes.parallel_probe_batches;
  report.overlay_bytes_saved = probes.overlay_bytes_saved;
  report.probe_wall_seconds = probes.probe_wall_seconds;
  const CkptStats& ckpt = collector.ckpt_stats();
  report.ckpt_snapshots = ckpt.snapshots_taken;
  report.ckpt_wal_records = ckpt.wal_records;
  // The per-process recovery fields (ckpt_recoveries, ckpt_wal_replayed,
  // byte/wall totals) are filled in by the simulator, which owns that
  // bookkeeping.
  return report;
}

ReductionReport Reductions(const Report& baseline, const Report& ours) {
  ReductionReport result;
  result.avg_ect = ReductionVs(baseline.avg_ect, ours.avg_ect);
  result.tail_ect = ReductionVs(baseline.tail_ect, ours.tail_ect);
  result.total_cost = ReductionVs(baseline.total_cost, ours.total_cost);
  result.avg_queuing_delay =
      ReductionVs(baseline.avg_queuing_delay, ours.avg_queuing_delay);
  result.worst_queuing_delay =
      ReductionVs(baseline.worst_queuing_delay, ours.worst_queuing_delay);
  result.plan_time_ratio = baseline.total_plan_time == 0.0
                               ? 0.0
                               : ours.total_plan_time / baseline.total_plan_time;
  return result;
}

}  // namespace nu::metrics
