// ASCII Gantt rendering of event lifecycles: one row per event showing
// queue-wait ('.') and execution-to-completion ('#') against virtual time.
// Makes scheduler behavior legible in terminal output — FIFO's staircase,
// LMTF's reordering, P-LMTF's parallel rounds.
#pragma once

#include <span>
#include <string>

#include "metrics/collector.h"

namespace nu::metrics {

struct GanttOptions {
  /// Character columns used for the time axis.
  std::size_t width = 72;
  /// Sort rows by arrival (true) or by execution start (false).
  bool sort_by_arrival = true;
};

/// Renders completed records as a multi-line chart:
///
///   ev  3 |....######            |  wait 1.2s  ect 4.5s
///   ev  7 |......##              |  wait 2.0s  ect 2.8s
///
/// Requires at least one record; rows cover [min arrival, max completion].
[[nodiscard]] std::string RenderGantt(std::span<const EventRecord> records,
                                      const GanttOptions& options = {});

}  // namespace nu::metrics
