#include "metrics/collector.h"

#include <algorithm>

#include "common/check.h"

namespace nu::metrics {

const char* ToString(TerminalStatus status) {
  switch (status) {
    case TerminalStatus::kPending:
      return "pending";
    case TerminalStatus::kCompleted:
      return "completed";
    case TerminalStatus::kShed:
      return "shed";
    case TerminalStatus::kAborted:
      return "aborted";
    case TerminalStatus::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

EventRecord& Collector::Find(EventId event) {
  const auto it =
      std::find_if(records_.begin(), records_.end(),
                   [event](const EventRecord& r) { return r.event == event; });
  NU_EXPECTS(it != records_.end());
  return *it;
}

void Collector::OnArrival(EventId event, Seconds time,
                          std::size_t flow_count) {
  EventRecord record;
  record.event = event;
  record.arrival = time;
  record.exec_start = -1.0;
  record.completion = -1.0;
  record.flow_count = flow_count;
  records_.push_back(record);
}

void Collector::OnExecutionStart(EventId event, Seconds time) {
  EventRecord& record = Find(event);
  NU_EXPECTS(time >= record.arrival);
  // A watchdog-aborted event can execute again after requeueing; queuing
  // delay is measured to the FIRST execution start, so later attempts keep
  // the original timestamp.
  if (record.exec_start < 0.0) record.exec_start = time;
}

void Collector::OnCost(EventId event, Mbps added_cost) {
  NU_EXPECTS(added_cost >= 0.0);
  Find(event).cost += added_cost;
}

void Collector::OnDeferredFlow(EventId event) { ++Find(event).deferred_flows; }

void Collector::OnCompletion(EventId event, Seconds time) {
  EventRecord& record = Find(event);
  NU_EXPECTS(record.completion < 0.0);
  NU_EXPECTS(record.exec_start >= 0.0);
  NU_EXPECTS(time >= record.exec_start);
  NU_EXPECTS(!record.terminal());
  record.completion = time;
  record.status = TerminalStatus::kCompleted;
}

void Collector::OnInstallBatch(std::size_t attempts, bool failed) {
  NU_EXPECTS(attempts >= 1);
  fault_stats_.installs_attempted += attempts;
  fault_stats_.installs_retried += attempts - 1;
  if (failed) ++fault_stats_.installs_failed;
}

void Collector::OnInstallAborted(EventId event) {
  ++Find(event).aborts;
  ++fault_stats_.events_aborted;
}

void Collector::OnEventReplanned(EventId event) {
  ++Find(event).replans;
  ++fault_stats_.events_replanned;
}

void Collector::OnFault(bool link_fault) {
  link_fault ? ++fault_stats_.link_failures : ++fault_stats_.switch_failures;
}

void Collector::OnGroupFault() { ++fault_stats_.group_faults; }

void Collector::OnCascadeFailure(std::size_t depth) {
  ++fault_stats_.cascade_failures;
  fault_stats_.cascade_depth_max =
      std::max(fault_stats_.cascade_depth_max, depth);
}

void Collector::OnFlowKilled() { ++fault_stats_.flows_killed; }

void Collector::OnRecovery(Seconds latency, bool srlg) {
  NU_EXPECTS(latency >= 0.0);
  fault_stats_.recovery_latency.Add(latency);
  if (srlg) fault_stats_.srlg_recovery_latency.Add(latency);
}

void Collector::OnShed(EventId event, Seconds time) {
  EventRecord& record = Find(event);
  NU_EXPECTS(!record.terminal());
  NU_EXPECTS(time >= record.arrival);
  record.status = record.exec_start >= 0.0 ? TerminalStatus::kAborted
                                           : TerminalStatus::kShed;
  ++guard_stats_.events_shed;
}

void Collector::OnDeadlineMiss(EventId event) {
  ++Find(event).deadline_misses;
  ++guard_stats_.deadline_misses;
}

void Collector::OnRequeued(EventId event) {
  NU_EXPECTS(!Find(event).terminal());
  ++guard_stats_.events_requeued;
}

void Collector::OnQuarantined(EventId event, Seconds time) {
  EventRecord& record = Find(event);
  NU_EXPECTS(!record.terminal());
  NU_EXPECTS(time >= record.arrival);
  NU_EXPECTS(record.deadline_misses > 0);
  record.status = TerminalStatus::kQuarantined;
  ++guard_stats_.events_quarantined;
}

void Collector::OnAudit(std::size_t violations) {
  ++guard_stats_.audits_run;
  guard_stats_.audit_violations += violations;
}

void Collector::OnQueueDepth(std::size_t length) {
  guard_stats_.max_queue_length =
      std::max(guard_stats_.max_queue_length, length);
}

void Collector::OnProbeStats(const ProbeStats& stats) {
  probe_stats_.probe_cache_hits += stats.probe_cache_hits;
  probe_stats_.probe_cache_misses += stats.probe_cache_misses;
  probe_stats_.exec_plan_reuses += stats.exec_plan_reuses;
  probe_stats_.overlay_probes += stats.overlay_probes;
  probe_stats_.legacy_probe_copies += stats.legacy_probe_copies;
  probe_stats_.parallel_probe_batches += stats.parallel_probe_batches;
  probe_stats_.overlay_bytes_saved += stats.overlay_bytes_saved;
  probe_stats_.probe_wall_seconds += stats.probe_wall_seconds;
}

bool Collector::AllTerminal() const {
  return std::all_of(records_.begin(), records_.end(),
                     [](const EventRecord& r) { return r.terminal(); });
}

bool Collector::AllComplete() const {
  return std::all_of(records_.begin(), records_.end(),
                     [](const EventRecord& r) { return r.completion >= 0.0; });
}

Samples Collector::EctSamples() const {
  Samples samples;
  for (const EventRecord& r : records_) {
    if (r.completion >= 0.0) samples.Add(r.Ect());
  }
  return samples;
}

Samples Collector::QueuingDelaySamples() const {
  Samples samples;
  for (const EventRecord& r : records_) {
    if (r.exec_start >= 0.0) samples.Add(r.QueuingDelay());
  }
  return samples;
}

Mbps Collector::TotalCost() const {
  Mbps total = 0.0;
  for (const EventRecord& r : records_) total += r.cost;
  return total;
}

namespace {

void SaveSamples(BinWriter& w, const Samples& samples) {
  w.Size(samples.count());
  for (double v : samples.values()) w.F64(v);
}

Samples LoadSamples(BinReader& r) {
  const std::size_t count = r.Size();
  std::vector<double> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) values.push_back(r.F64());
  return Samples(std::move(values));
}

}  // namespace

void Collector::SaveState(BinWriter& w) const {
  w.Size(records_.size());
  for (const EventRecord& rec : records_) {
    w.U64(rec.event.value());
    w.F64(rec.arrival);
    w.F64(rec.exec_start);
    w.F64(rec.completion);
    w.F64(rec.cost);
    w.U64(rec.flow_count);
    w.U64(rec.deferred_flows);
    w.U64(rec.aborts);
    w.U64(rec.replans);
    w.U64(rec.deadline_misses);
    w.U8(static_cast<std::uint8_t>(rec.status));
  }
  w.U64(fault_stats_.installs_attempted);
  w.U64(fault_stats_.installs_retried);
  w.U64(fault_stats_.installs_failed);
  w.U64(fault_stats_.events_aborted);
  w.U64(fault_stats_.events_replanned);
  w.U64(fault_stats_.link_failures);
  w.U64(fault_stats_.switch_failures);
  w.U64(fault_stats_.group_faults);
  w.U64(fault_stats_.cascade_failures);
  w.U64(fault_stats_.cascade_depth_max);
  w.U64(fault_stats_.flows_killed);
  SaveSamples(w, fault_stats_.recovery_latency);
  SaveSamples(w, fault_stats_.srlg_recovery_latency);
  w.U64(guard_stats_.events_shed);
  w.U64(guard_stats_.deadline_misses);
  w.U64(guard_stats_.events_requeued);
  w.U64(guard_stats_.events_quarantined);
  w.U64(guard_stats_.audits_run);
  w.U64(guard_stats_.audit_violations);
  w.U64(guard_stats_.max_queue_length);
  w.U64(probe_stats_.probe_cache_hits);
  w.U64(probe_stats_.probe_cache_misses);
  w.U64(probe_stats_.exec_plan_reuses);
  w.U64(probe_stats_.overlay_probes);
  w.U64(probe_stats_.legacy_probe_copies);
  w.U64(probe_stats_.parallel_probe_batches);
  w.F64(probe_stats_.overlay_bytes_saved);
  w.F64(probe_stats_.probe_wall_seconds);
  w.U64(ckpt_stats_.snapshots_taken);
  w.U64(ckpt_stats_.wal_records);
}

void Collector::LoadState(BinReader& r) {
  records_.clear();
  const std::size_t count = r.Size();
  records_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    EventRecord rec;
    rec.event = EventId{r.U64()};
    rec.arrival = r.F64();
    rec.exec_start = r.F64();
    rec.completion = r.F64();
    rec.cost = r.F64();
    rec.flow_count = r.U64();
    rec.deferred_flows = r.U64();
    rec.aborts = r.U64();
    rec.replans = r.U64();
    rec.deadline_misses = r.U64();
    rec.status = static_cast<TerminalStatus>(r.U8());
    records_.push_back(rec);
  }
  fault_stats_.installs_attempted = r.U64();
  fault_stats_.installs_retried = r.U64();
  fault_stats_.installs_failed = r.U64();
  fault_stats_.events_aborted = r.U64();
  fault_stats_.events_replanned = r.U64();
  fault_stats_.link_failures = r.U64();
  fault_stats_.switch_failures = r.U64();
  fault_stats_.group_faults = r.U64();
  fault_stats_.cascade_failures = r.U64();
  fault_stats_.cascade_depth_max = r.U64();
  fault_stats_.flows_killed = r.U64();
  fault_stats_.recovery_latency = LoadSamples(r);
  fault_stats_.srlg_recovery_latency = LoadSamples(r);
  guard_stats_.events_shed = r.U64();
  guard_stats_.deadline_misses = r.U64();
  guard_stats_.events_requeued = r.U64();
  guard_stats_.events_quarantined = r.U64();
  guard_stats_.audits_run = r.U64();
  guard_stats_.audit_violations = r.U64();
  guard_stats_.max_queue_length = r.U64();
  probe_stats_.probe_cache_hits = r.U64();
  probe_stats_.probe_cache_misses = r.U64();
  probe_stats_.exec_plan_reuses = r.U64();
  probe_stats_.overlay_probes = r.U64();
  probe_stats_.legacy_probe_copies = r.U64();
  probe_stats_.parallel_probe_batches = r.U64();
  probe_stats_.overlay_bytes_saved = r.F64();
  probe_stats_.probe_wall_seconds = r.F64();
  ckpt_stats_.snapshots_taken = r.U64();
  ckpt_stats_.wal_records = r.U64();
}

}  // namespace nu::metrics
