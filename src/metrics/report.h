// Aggregate report over a simulation run: the exact quantities the paper's
// figures plot, plus helpers to express one run relative to a baseline run
// (the "reduction vs FIFO" framing of Figs. 6-9).
#pragma once

#include <string>

#include "metrics/collector.h"

namespace nu::metrics {

struct Report {
  std::size_t event_count = 0;
  double avg_ect = 0.0;
  /// Tail ECT at the configured percentile (1.0 = max).
  double tail_ect = 0.0;
  double avg_queuing_delay = 0.0;
  double worst_queuing_delay = 0.0;
  /// Total update cost: migrated traffic summed over events (Mbps).
  double total_cost = 0.0;
  /// Modeled control-plane planning time (seconds).
  double total_plan_time = 0.0;
  /// Virtual time when the last event completed.
  double makespan = 0.0;
  std::size_t total_deferred_flows = 0;

  // Fault-and-recovery aggregates (all zero when fault injection is off);
  // see metrics::FaultStats for the counters' exact meanings.
  std::size_t installs_attempted = 0;
  std::size_t installs_retried = 0;
  std::size_t installs_failed = 0;
  std::size_t events_aborted = 0;
  std::size_t events_replanned = 0;
  /// Correlated (SRLG) group incidents that fired.
  std::size_t group_faults = 0;
  /// Secondary failures injected by the overload cascade engine.
  std::size_t cascade_failures = 0;
  /// Deepest cascade chain observed (primary = 1; 0 when no faults fired).
  std::size_t cascade_depth_max = 0;
  std::size_t flows_killed = 0;
  /// Disruption -> reinstall latency stats (0 when nothing was disrupted).
  double recovery_latency_mean = 0.0;
  double recovery_latency_p99 = 0.0;
  double recovery_latency_max = 0.0;
  /// Same stats over flows stranded by GROUP incidents only (per-SRLG
  /// recovery story; 0 when no group incident stranded a flow).
  double srlg_recovery_latency_mean = 0.0;
  double srlg_recovery_latency_p99 = 0.0;

  // Overload-guard and auditor aggregates (all zero when the guard
  // subsystem is off); see metrics::GuardStats for exact meanings. With the
  // guard on, ECT/queuing-delay averages cover completed events only —
  // events_completed says how many that is.
  std::size_t events_completed = 0;
  std::size_t events_shed = 0;
  std::size_t deadline_misses = 0;
  std::size_t events_requeued = 0;
  std::size_t events_quarantined = 0;
  std::size_t audits_run = 0;
  std::size_t audit_violations = 0;
  std::size_t max_queue_length = 0;

  // Probe fast-path aggregates (all zero with the fast path off); see
  // metrics::ProbeStats. These measure the real control plane, never the
  // modeled plan time.
  std::size_t probe_cache_hits = 0;
  std::size_t probe_cache_misses = 0;
  std::size_t exec_plan_reuses = 0;
  std::size_t overlay_probes = 0;
  std::size_t legacy_probe_copies = 0;
  std::size_t parallel_probe_batches = 0;
  double overlay_bytes_saved = 0.0;
  double probe_wall_seconds = 0.0;

  // Checkpoint & crash-recovery aggregates (all zero with checkpointing
  // off). snapshots/wal_records are deterministic run totals (see
  // metrics::CkptStats); the remaining fields describe what THIS process
  // did — snapshot bytes/wall it wrote, journal records it replay-verified
  // after a restore — so they legitimately differ between an uninterrupted
  // run and a crash+recover run and are excluded by the determinism oracle.
  std::size_t ckpt_snapshots = 0;
  std::size_t ckpt_wal_records = 0;
  std::size_t ckpt_recoveries = 0;
  std::size_t ckpt_wal_replayed = 0;
  double ckpt_snapshot_bytes = 0.0;
  double ckpt_snapshot_wall_seconds = 0.0;
  double ckpt_recovery_wall_seconds = 0.0;

  // Grey-failure / reconciliation aggregates (all zero when both the grey
  // model and the reconciler are off); see recon::ReconStats for exact
  // meanings. drift_residual_rules counts divergence left at end of run —
  // abandoned repairs only, unless the reconciler was off while grey
  // failures were on.
  std::size_t drift_checks = 0;
  std::size_t drift_rules_detected = 0;
  std::size_t grey_ack_lies = 0;
  std::size_t grey_stragglers = 0;
  std::size_t grey_rules_lost = 0;
  std::size_t drift_repairs = 0;
  std::size_t drift_repair_failures = 0;
  std::size_t drift_rules_abandoned = 0;
  std::size_t switches_degraded = 0;
  std::size_t switches_quarantined = 0;
  std::size_t drift_residual_rules = 0;
  /// Divergence-onset -> repair latency (virtual seconds; 0 = no repairs).
  double drift_repair_mean = 0.0;
  double drift_repair_p99 = 0.0;

  [[nodiscard]] std::string DebugString() const;
};

/// Builds a report from collected records. `tail_percentile` in (0, 1]:
/// 1.0 yields the maximum (the paper's "tail").
[[nodiscard]] Report BuildReport(const Collector& collector,
                                 double total_plan_time,
                                 double tail_percentile = 1.0);

/// Relative reductions of `ours` against `baseline` for the four headline
/// metrics, as fractions (0.75 = "75% reduction").
struct ReductionReport {
  double avg_ect = 0.0;
  double tail_ect = 0.0;
  double total_cost = 0.0;
  double avg_queuing_delay = 0.0;
  double worst_queuing_delay = 0.0;
  /// Ratio (not reduction) of plan time: ours / baseline.
  double plan_time_ratio = 0.0;
};

[[nodiscard]] ReductionReport Reductions(const Report& baseline,
                                         const Report& ours);

}  // namespace nu::metrics
