#include "metrics/export.h"

#include "common/csv.h"
#include "common/table.h"

namespace nu::metrics {

void WriteRecordsCsv(std::ostream& out,
                     std::span<const EventRecord> records) {
  CsvWriter writer(out);
  writer.WriteRow({"event", "arrival", "exec_start", "completion",
                   "queuing_delay", "ect", "cost", "flow_count",
                   "deferred_flows", "aborts", "replans", "deadline_misses",
                   "status"});
  for (const EventRecord& r : records) {
    // Events that never started/completed carry -1 sentinels; derived
    // delays are meaningless for them and exported as -1 too.
    const double qdelay = r.exec_start >= 0.0 ? r.QueuingDelay() : -1.0;
    const double ect = r.completion >= 0.0 ? r.Ect() : -1.0;
    writer.WriteRow({std::to_string(r.event.value()),
                     FormatDouble(r.arrival, 4), FormatDouble(r.exec_start, 4),
                     FormatDouble(r.completion, 4),
                     FormatDouble(qdelay, 4),
                     FormatDouble(ect, 4), FormatDouble(r.cost, 2),
                     std::to_string(r.flow_count),
                     std::to_string(r.deferred_flows),
                     std::to_string(r.aborts), std::to_string(r.replans),
                     std::to_string(r.deadline_misses), ToString(r.status)});
  }
}

void WriteReportCsv(std::ostream& out, const Report& report) {
  CsvWriter writer(out);
  writer.WriteRow({"events", "avg_ect", "tail_ect", "avg_qdelay",
                   "worst_qdelay", "total_cost", "plan_time", "makespan",
                   "deferred", "installs_attempted", "installs_retried",
                   "installs_failed", "events_aborted", "events_replanned",
                   "flows_killed", "recovery_mean", "recovery_p99",
                   "recovery_max", "events_completed", "events_shed",
                   "deadline_misses", "events_requeued", "events_quarantined",
                   "audits_run", "audit_violations", "max_queue_length",
                   "probe_cache_hits", "probe_cache_misses",
                   "exec_plan_reuses", "overlay_probes", "legacy_probe_copies",
                   "parallel_probe_batches", "overlay_bytes_saved",
                   "probe_wall_seconds", "ckpt_snapshots", "ckpt_wal_records",
                   "ckpt_recoveries", "ckpt_wal_replayed",
                   "ckpt_snapshot_bytes", "ckpt_snapshot_wall_seconds",
                   "ckpt_recovery_wall_seconds"});
  writer.WriteRow({std::to_string(report.event_count),
                   FormatDouble(report.avg_ect, 4),
                   FormatDouble(report.tail_ect, 4),
                   FormatDouble(report.avg_queuing_delay, 4),
                   FormatDouble(report.worst_queuing_delay, 4),
                   FormatDouble(report.total_cost, 2),
                   FormatDouble(report.total_plan_time, 4),
                   FormatDouble(report.makespan, 4),
                   std::to_string(report.total_deferred_flows),
                   std::to_string(report.installs_attempted),
                   std::to_string(report.installs_retried),
                   std::to_string(report.installs_failed),
                   std::to_string(report.events_aborted),
                   std::to_string(report.events_replanned),
                   std::to_string(report.flows_killed),
                   FormatDouble(report.recovery_latency_mean, 4),
                   FormatDouble(report.recovery_latency_p99, 4),
                   FormatDouble(report.recovery_latency_max, 4),
                   std::to_string(report.events_completed),
                   std::to_string(report.events_shed),
                   std::to_string(report.deadline_misses),
                   std::to_string(report.events_requeued),
                   std::to_string(report.events_quarantined),
                   std::to_string(report.audits_run),
                   std::to_string(report.audit_violations),
                   std::to_string(report.max_queue_length),
                   std::to_string(report.probe_cache_hits),
                   std::to_string(report.probe_cache_misses),
                   std::to_string(report.exec_plan_reuses),
                   std::to_string(report.overlay_probes),
                   std::to_string(report.legacy_probe_copies),
                   std::to_string(report.parallel_probe_batches),
                   FormatDouble(report.overlay_bytes_saved, 0),
                   FormatDouble(report.probe_wall_seconds, 6),
                   std::to_string(report.ckpt_snapshots),
                   std::to_string(report.ckpt_wal_records),
                   std::to_string(report.ckpt_recoveries),
                   std::to_string(report.ckpt_wal_replayed),
                   FormatDouble(report.ckpt_snapshot_bytes, 0),
                   FormatDouble(report.ckpt_snapshot_wall_seconds, 6),
                   FormatDouble(report.ckpt_recovery_wall_seconds, 6)});
}

}  // namespace nu::metrics
