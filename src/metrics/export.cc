#include "metrics/export.h"

#include "common/csv.h"
#include "common/table.h"
#include "metrics/report_fields.h"

namespace nu::metrics {

void WriteRecordsCsv(std::ostream& out,
                     std::span<const EventRecord> records) {
  CsvWriter writer(out);
  writer.WriteRow({"event", "arrival", "exec_start", "completion",
                   "queuing_delay", "ect", "cost", "flow_count",
                   "deferred_flows", "aborts", "replans", "deadline_misses",
                   "status"});
  for (const EventRecord& r : records) {
    // Events that never started/completed carry -1 sentinels; derived
    // delays are meaningless for them and exported as -1 too.
    const double qdelay = r.exec_start >= 0.0 ? r.QueuingDelay() : -1.0;
    const double ect = r.completion >= 0.0 ? r.Ect() : -1.0;
    writer.WriteRow({std::to_string(r.event.value()),
                     FormatDouble(r.arrival, 4), FormatDouble(r.exec_start, 4),
                     FormatDouble(r.completion, 4),
                     FormatDouble(qdelay, 4),
                     FormatDouble(ect, 4), FormatDouble(r.cost, 2),
                     std::to_string(r.flow_count),
                     std::to_string(r.deferred_flows),
                     std::to_string(r.aborts), std::to_string(r.replans),
                     std::to_string(r.deadline_misses), ToString(r.status)});
  }
}

void WriteReportCsv(std::ostream& out, const Report& report) {
  CsvWriter writer(out);
  std::vector<std::string> header;
  std::vector<std::string> row;
  header.reserve(kReportFields.size());
  row.reserve(kReportFields.size());
  for (const ReportField& field : kReportFields) {
    header.emplace_back(field.csv_name);
    row.push_back(field.counter != nullptr
                      ? std::to_string(report.*field.counter)
                      : FormatDouble(report.*field.real,
                                     field.csv_precision));
  }
  writer.WriteRow(header);
  writer.WriteRow(row);
}

}  // namespace nu::metrics
