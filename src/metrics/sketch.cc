#include "metrics/sketch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nu::metrics {

PercentileSketch::PercentileSketch(Options options) : options_(options) {
  NU_EXPECTS(options_.growth > 1.0);
  NU_EXPECTS(options_.min_value > 0.0);
}

void PercentileSketch::Add(double value) {
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (!bucketed_) {
    exact_.push_back(value);
    if (exact_.size() > options_.exact_capacity) MigrateToBuckets();
    return;
  }
  const std::size_t index = BucketIndex(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
}

double PercentileSketch::min() const {
  NU_EXPECTS(count_ > 0);
  return min_;
}

double PercentileSketch::max() const {
  NU_EXPECTS(count_ > 0);
  return max_;
}

double PercentileSketch::mean() const {
  NU_EXPECTS(count_ > 0);
  return sum_ / static_cast<double>(count_);
}

std::size_t PercentileSketch::BucketIndex(double value) const {
  if (value <= options_.min_value) return 0;
  // Bucket b >= 1 covers (min_value * growth^(b-1), min_value * growth^b].
  const double ratio = value / options_.min_value;
  const auto b = static_cast<std::size_t>(
      std::ceil(std::log(ratio) / std::log(options_.growth) - 1e-12));
  return b == 0 ? 1 : b;
}

double PercentileSketch::BucketMid(std::size_t index) const {
  if (index == 0) return options_.min_value;
  // Geometric midpoint of (min_value * growth^(i-1), min_value * growth^i].
  return options_.min_value *
         std::pow(options_.growth, static_cast<double>(index) - 0.5);
}

void PercentileSketch::MigrateToBuckets() {
  bucketed_ = true;
  for (double v : exact_) {
    const std::size_t index = BucketIndex(v);
    if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
    ++buckets_[index];
  }
  exact_.clear();
  exact_.shrink_to_fit();
}

double PercentileSketch::Quantile(double q) const {
  NU_EXPECTS(count_ > 0);
  q = std::clamp(q, 0.0, 1.0);
  if (!bucketed_) {
    // Same interpolation as Samples::Percentile: rank q * (n - 1) between
    // order statistics.
    std::vector<double> sorted = exact_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    // Identical formula to Samples::Percentile (bitwise agreement matters
    // for the exact-phase unit tests).
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Walk bucket counts to the target rank; answer the bucket midpoint,
  // clamped to the observed range so tails never overshoot max.
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return std::clamp(BucketMid(i), min_, max_);
  }
  return max_;
}

void PercentileSketch::Reset() {
  bucketed_ = false;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  exact_.clear();
  buckets_.clear();
}

void PercentileSketch::SaveState(BinWriter& w) const {
  w.Bool(bucketed_);
  w.U64(count_);
  w.F64(sum_);
  w.F64(min_);
  w.F64(max_);
  w.Vec(exact_, [](BinWriter& out, double v) { out.F64(v); });
  w.Vec(buckets_, [](BinWriter& out, std::uint64_t c) { out.U64(c); });
}

void PercentileSketch::LoadState(BinReader& r) {
  bucketed_ = r.Bool();
  count_ = r.U64();
  sum_ = r.F64();
  min_ = r.F64();
  max_ = r.F64();
  exact_ = r.Vec<double>([](BinReader& in) { return in.F64(); });
  buckets_ = r.Vec<std::uint64_t>([](BinReader& in) { return in.U64(); });
}

}  // namespace nu::metrics
