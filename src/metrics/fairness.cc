#include "metrics/fairness.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace nu::metrics {

double JainIndex(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    NU_EXPECTS(v >= 0.0);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

FairnessReport ComputeFairness(std::span<const EventRecord> records) {
  FairnessReport report;
  const std::size_t n = records.size();
  if (n < 2) return report;

  // Ranks by arrival (stable: queue order breaks ties) and by execution.
  std::vector<std::size_t> by_arrival(n);
  std::iota(by_arrival.begin(), by_arrival.end(), 0);
  std::stable_sort(by_arrival.begin(), by_arrival.end(),
                   [&](std::size_t a, std::size_t b) {
                     return records[a].arrival < records[b].arrival;
                   });
  std::vector<std::size_t> by_execution(n);
  std::iota(by_execution.begin(), by_execution.end(), 0);
  std::stable_sort(by_execution.begin(), by_execution.end(),
                   [&](std::size_t a, std::size_t b) {
                     return records[a].exec_start < records[b].exec_start;
                   });

  std::vector<std::size_t> arrival_rank(n);
  std::vector<std::size_t> execution_rank(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    arrival_rank[by_arrival[rank]] = rank;
    execution_rank[by_execution[rank]] = rank;
  }

  // Kendall-tau style pair inversions between the two rankings.
  std::size_t inversions = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool arrival_before = arrival_rank[i] < arrival_rank[j];
      const bool executed_before = execution_rank[i] < execution_rank[j];
      if (arrival_before != executed_before) ++inversions;
    }
  }
  const double pairs = static_cast<double>(n * (n - 1)) / 2.0;
  report.order_violation = static_cast<double>(inversions) / pairs;

  double displacement_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = static_cast<std::ptrdiff_t>(arrival_rank[i]);
    const auto e = static_cast<std::ptrdiff_t>(execution_rank[i]);
    displacement_sum += static_cast<double>(std::abs(e - a));
    if (e > a) {
      report.worst_pushback =
          std::max(report.worst_pushback, static_cast<std::size_t>(e - a));
    }
  }
  report.mean_displacement = displacement_sum / static_cast<double>(n);

  // Jain over (queuing delay + 1s): without the shift, all-zero delays (an
  // idle system) would be undefined, and near-zero denominators unstable.
  std::vector<double> delays;
  delays.reserve(n);
  for (const EventRecord& r : records) {
    delays.push_back(r.QueuingDelay() + 1.0);
  }
  report.jain_queuing_delay = JainIndex(delays);
  return report;
}

}  // namespace nu::metrics
