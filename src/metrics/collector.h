// Per-event measurement records and their collection. The five metrics of
// the paper's Section V-A are all derived from these records: total update
// cost, average ECT, tail ECT, total plan time, and event queuing delay.
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace nu::metrics {

/// One update event's lifecycle measurements.
struct EventRecord {
  EventId event = EventId::invalid();
  /// When the event entered the update queue.
  Seconds arrival = 0.0;
  /// When its execution started (after the scheduling decision and plan).
  Seconds exec_start = 0.0;
  /// When its last flow completed.
  Seconds completion = 0.0;
  /// Cost(U): migrated traffic attributed to this event (Mbps).
  Mbps cost = 0.0;
  /// Number of flows in the event.
  std::size_t flow_count = 0;
  /// Flows that could not be placed at execution time and were deferred.
  std::size_t deferred_flows = 0;

  /// Queuing delay: arrival -> execution start.
  [[nodiscard]] Seconds QueuingDelay() const { return exec_start - arrival; }
  /// Event completion time: arrival -> last flow done (includes queuing).
  [[nodiscard]] Seconds Ect() const { return completion - arrival; }
};

class Collector {
 public:
  void OnArrival(EventId event, Seconds time, std::size_t flow_count);
  void OnExecutionStart(EventId event, Seconds time);
  void OnCost(EventId event, Mbps added_cost);
  void OnDeferredFlow(EventId event);
  void OnCompletion(EventId event, Seconds time);

  /// All records; complete once every event has a completion time.
  [[nodiscard]] const std::vector<EventRecord>& records() const {
    return records_;
  }

  [[nodiscard]] bool AllComplete() const;

  [[nodiscard]] Samples EctSamples() const;
  [[nodiscard]] Samples QueuingDelaySamples() const;
  [[nodiscard]] Mbps TotalCost() const;

 private:
  EventRecord& Find(EventId event);

  std::vector<EventRecord> records_;
};

}  // namespace nu::metrics
