// Per-event measurement records and their collection. The five metrics of
// the paper's Section V-A are all derived from these records: total update
// cost, average ECT, tail ECT, total plan time, and event queuing delay.
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace nu::metrics {

/// One update event's lifecycle measurements.
struct EventRecord {
  EventId event = EventId::invalid();
  /// When the event entered the update queue.
  Seconds arrival = 0.0;
  /// When its execution started (after the scheduling decision and plan).
  Seconds exec_start = 0.0;
  /// When its last flow completed.
  Seconds completion = 0.0;
  /// Cost(U): migrated traffic attributed to this event (Mbps).
  Mbps cost = 0.0;
  /// Number of flows in the event.
  std::size_t flow_count = 0;
  /// Flows that could not be placed at execution time and were deferred.
  std::size_t deferred_flows = 0;
  /// Install batches of this event aborted after exhausting retries.
  std::size_t aborts = 0;
  /// Times a fault forced this event's in-flight flows back to replanning.
  std::size_t replans = 0;

  /// Queuing delay: arrival -> execution start.
  [[nodiscard]] Seconds QueuingDelay() const { return exec_start - arrival; }
  /// Event completion time: arrival -> last flow done (includes queuing).
  [[nodiscard]] Seconds Ect() const { return completion - arrival; }
};

/// Run-wide fault-and-recovery counters (zero when fault injection is
/// off). Attempt counting covers every install batch once the fault layer
/// is active, so attempted == batches when nothing flakes.
struct FaultStats {
  std::size_t installs_attempted = 0;
  std::size_t installs_retried = 0;
  /// Batches whose retries were exhausted (each triggers an abort+rollback).
  std::size_t installs_failed = 0;
  /// Install-batch aborts (rolled back, flows re-deferred for replanning).
  std::size_t events_aborted = 0;
  /// (event, fault) replanning hits: a fault stranded in-flight flows of an
  /// active event, which were re-planned on surviving paths.
  std::size_t events_replanned = 0;
  std::size_t link_failures = 0;
  std::size_t switch_failures = 0;
  /// Placed flows removed because a fault killed their path.
  std::size_t flows_killed = 0;
  /// Disruption -> successful reinstall latencies (seconds), per recovered
  /// flow. Mean/percentiles feed the report; raw samples feed histograms.
  Samples recovery_latency;
};

class Collector {
 public:
  void OnArrival(EventId event, Seconds time, std::size_t flow_count);
  void OnExecutionStart(EventId event, Seconds time);
  void OnCost(EventId event, Mbps added_cost);
  void OnDeferredFlow(EventId event);
  void OnCompletion(EventId event, Seconds time);

  // --- Fault lifecycle ---------------------------------------------------
  /// One install batch went through the flaky pipeline with `attempts`
  /// tries; `failed` when retries were exhausted.
  void OnInstallBatch(std::size_t attempts, bool failed);
  /// A batch of `event` aborted (rolled back) after exhausted retries.
  void OnInstallAborted(EventId event);
  /// A fault stranded in-flight flows of `event`; they were re-deferred.
  void OnEventReplanned(EventId event);
  /// A scheduled fault fired.
  void OnFault(bool link_fault);
  /// A placed flow was removed by a fault.
  void OnFlowKilled();
  /// A disrupted flow reinstalled `latency` seconds after its disruption.
  void OnRecovery(Seconds latency);

  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

  /// All records; complete once every event has a completion time.
  [[nodiscard]] const std::vector<EventRecord>& records() const {
    return records_;
  }

  [[nodiscard]] bool AllComplete() const;

  [[nodiscard]] Samples EctSamples() const;
  [[nodiscard]] Samples QueuingDelaySamples() const;
  [[nodiscard]] Mbps TotalCost() const;

 private:
  EventRecord& Find(EventId event);

  std::vector<EventRecord> records_;
  FaultStats fault_stats_;
};

}  // namespace nu::metrics
