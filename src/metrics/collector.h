// Per-event measurement records and their collection. The five metrics of
// the paper's Section V-A are all derived from these records: total update
// cost, average ECT, tail ECT, total plan time, and event queuing delay.
#pragma once

#include <vector>

#include "common/binio.h"
#include "common/stats.h"
#include "common/types.h"

namespace nu::metrics {

/// How an update event's lifecycle ended. Every admitted event reaches
/// exactly one terminal state by the end of a run:
///   kCompleted   — all flows installed (the only state with an ECT).
///   kShed        — dropped by overload admission control before it ever
///                  started executing.
///   kAborted     — started executing at least once, was rolled back by the
///                  watchdog, and was then shed from a full queue while
///                  waiting to retry.
///   kQuarantined — missed its deadline max_failures times (poison event);
///                  removed from the round loop permanently.
enum class TerminalStatus : std::uint8_t {
  kPending,  // still in flight (non-terminal)
  kCompleted,
  kShed,
  kAborted,
  kQuarantined,
};

[[nodiscard]] const char* ToString(TerminalStatus status);

/// One update event's lifecycle measurements.
struct EventRecord {
  EventId event = EventId::invalid();
  /// When the event entered the update queue.
  Seconds arrival = 0.0;
  /// When its FIRST execution started (after the scheduling decision and
  /// plan); -1 while the event has never executed.
  Seconds exec_start = -1.0;
  /// When its last flow completed; -1 unless kCompleted.
  Seconds completion = -1.0;
  /// Cost(U): migrated traffic attributed to this event (Mbps).
  Mbps cost = 0.0;
  /// Number of flows in the event.
  std::size_t flow_count = 0;
  /// Flows that could not be placed at execution time and were deferred.
  std::size_t deferred_flows = 0;
  /// Install batches of this event aborted after exhausting retries.
  std::size_t aborts = 0;
  /// Times a fault forced this event's in-flight flows back to replanning.
  std::size_t replans = 0;
  /// Watchdog deadline misses (each one aborted an execution attempt).
  std::size_t deadline_misses = 0;
  /// How the event's lifecycle ended (kPending only mid-run).
  TerminalStatus status = TerminalStatus::kPending;

  [[nodiscard]] bool terminal() const {
    return status != TerminalStatus::kPending;
  }

  /// Queuing delay: arrival -> execution start.
  [[nodiscard]] Seconds QueuingDelay() const { return exec_start - arrival; }
  /// Event completion time: arrival -> last flow done (includes queuing).
  [[nodiscard]] Seconds Ect() const { return completion - arrival; }
};

/// Run-wide fault-and-recovery counters (zero when fault injection is
/// off). Attempt counting covers every install batch once the fault layer
/// is active, so attempted == batches when nothing flakes.
struct FaultStats {
  std::size_t installs_attempted = 0;
  std::size_t installs_retried = 0;
  /// Batches whose retries were exhausted (each triggers an abort+rollback).
  std::size_t installs_failed = 0;
  /// Install-batch aborts (rolled back, flows re-deferred for replanning).
  std::size_t events_aborted = 0;
  /// (event, fault) replanning hits: a fault stranded in-flight flows of an
  /// active event, which were re-planned on surviving paths.
  std::size_t events_replanned = 0;
  std::size_t link_failures = 0;
  std::size_t switch_failures = 0;
  /// Correlated (SRLG) group incidents that fired — a pod power event or
  /// core-plane loss counts once here, however many elements it took down.
  std::size_t group_faults = 0;
  /// Secondary failures injected by the overload cascade engine.
  std::size_t cascade_failures = 0;
  /// Deepest cascade chain observed (primary fault = 1, each
  /// overload-triggered secondary adds one).
  std::size_t cascade_depth_max = 0;
  /// Placed flows removed because a fault killed their path.
  std::size_t flows_killed = 0;
  /// Disruption -> successful reinstall latencies (seconds), per recovered
  /// flow. Mean/percentiles feed the report; raw samples feed histograms.
  Samples recovery_latency;
  /// Recovery latencies of flows stranded by GROUP incidents specifically —
  /// the per-SRLG recovery story, separate from single-element faults.
  Samples srlg_recovery_latency;
};

/// Run-wide overload-guard and auditor counters (all zero when the guard
/// subsystem is disabled).
struct GuardStats {
  /// Events dropped by admission control (terminal kShed or kAborted).
  std::size_t events_shed = 0;
  /// Watchdog firings: an execution attempt overran its soft deadline and
  /// was aborted + rolled back.
  std::size_t deadline_misses = 0;
  /// Aborted events re-admitted to the queue after their backoff.
  std::size_t events_requeued = 0;
  /// Poison events moved to quarantine after max_failures misses.
  std::size_t events_quarantined = 0;
  /// Invariant-auditor passes run and total violations they found.
  std::size_t audits_run = 0;
  std::size_t audit_violations = 0;
  /// High-water mark of the update queue length.
  std::size_t max_queue_length = 0;
};

/// Run-wide probe fast-path counters (all zero with the fast path off).
/// Wall-clock quantities here measure the real control plane running the
/// simulation, not the modeled plan time — the fast path never changes
/// modeled time, only how fast it is computed.
struct ProbeStats {
  /// Cost probes answered from the per-event epoch-keyed cache.
  std::size_t probe_cache_hits = 0;
  /// Cost probes that had to plan (and then populated the cache).
  std::size_t probe_cache_misses = 0;
  /// Winner executions that replayed the cached probe plan instead of
  /// re-planning the event at commit time.
  std::size_t exec_plan_reuses = 0;
  /// What-if plans evaluated on a copy-on-write overlay.
  std::size_t overlay_probes = 0;
  /// What-if plans evaluated on a full deep copy (legacy baseline).
  std::size_t legacy_probe_copies = 0;
  /// ProbeCosts batches dispatched to the worker pool.
  std::size_t parallel_probe_batches = 0;
  /// Bytes of network state NOT copied thanks to overlays (approximate:
  /// deep-copy footprint at probe time, summed over overlay probes).
  double overlay_bytes_saved = 0.0;
  /// Real wall-clock seconds spent inside cost probes.
  double probe_wall_seconds = 0.0;
};

/// Run-wide checkpointing counters (all zero with checkpointing off).
/// Both counters are deterministic and are themselves serialized into
/// snapshots, so an uninterrupted run and a crash+recover run report the
/// same totals: a recovered process inherits the counts up to the restored
/// snapshot and re-counts replayed journal records as it verifies them.
struct CkptStats {
  /// Snapshots written since the run started (cumulative across recovery).
  std::size_t snapshots_taken = 0;
  /// Committed operations journaled since the run started (cumulative).
  std::size_t wal_records = 0;
};

class Collector {
 public:
  void OnArrival(EventId event, Seconds time, std::size_t flow_count);
  void OnExecutionStart(EventId event, Seconds time);
  void OnCost(EventId event, Mbps added_cost);
  void OnDeferredFlow(EventId event);
  void OnCompletion(EventId event, Seconds time);

  // --- Fault lifecycle ---------------------------------------------------
  /// One install batch went through the flaky pipeline with `attempts`
  /// tries; `failed` when retries were exhausted.
  void OnInstallBatch(std::size_t attempts, bool failed);
  /// A batch of `event` aborted (rolled back) after exhausted retries.
  void OnInstallAborted(EventId event);
  /// A fault stranded in-flight flows of `event`; they were re-deferred.
  void OnEventReplanned(EventId event);
  /// A scheduled fault fired.
  void OnFault(bool link_fault);
  /// A correlated group (SRLG) incident fired — one call per incident, on
  /// top of the element-level counting its members may add.
  void OnGroupFault();
  /// The cascade engine injected a secondary failure at `depth`.
  void OnCascadeFailure(std::size_t depth);
  /// A placed flow was removed by a fault.
  void OnFlowKilled();
  /// A disrupted flow reinstalled `latency` seconds after its disruption.
  /// `srlg` marks flows stranded by a group incident (their latencies also
  /// feed the per-SRLG recovery columns).
  void OnRecovery(Seconds latency, bool srlg = false);

  // --- Guard lifecycle ---------------------------------------------------
  /// Admission control shed `event` at `time`. Events that never executed
  /// terminate kShed; events with a past execution start (watchdog-aborted,
  /// shed while requeued) terminate kAborted.
  void OnShed(EventId event, Seconds time);
  /// The watchdog aborted an execution attempt of `event` (deadline miss).
  void OnDeadlineMiss(EventId event);
  /// A watchdog-aborted event re-entered the queue after its backoff.
  void OnRequeued(EventId event);
  /// `event` exhausted its deadline-failure budget and was quarantined.
  void OnQuarantined(EventId event, Seconds time);
  /// One auditor pass ran and found `violations` invariant violations.
  void OnAudit(std::size_t violations);
  /// Update-queue length observed after an admission; keeps the high-water
  /// mark.
  void OnQueueDepth(std::size_t length);

  // --- Probe fast path ---------------------------------------------------
  /// Accumulates a run's probe fast-path counters into this collector.
  void OnProbeStats(const ProbeStats& stats);

  // --- Checkpointing -----------------------------------------------------
  /// A snapshot is being taken (counted before the payload is serialized,
  /// so the snapshot includes its own count — see CkptStats).
  void OnSnapshotTaken() { ++ckpt_stats_.snapshots_taken; }
  /// One committed operation was journaled (or replay-verified).
  void OnWalRecord() { ++ckpt_stats_.wal_records; }

  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }
  [[nodiscard]] const GuardStats& guard_stats() const { return guard_stats_; }
  [[nodiscard]] const ProbeStats& probe_stats() const { return probe_stats_; }
  [[nodiscard]] const CkptStats& ckpt_stats() const { return ckpt_stats_; }

  /// All records; complete once every event has a completion time.
  [[nodiscard]] const std::vector<EventRecord>& records() const {
    return records_;
  }

  /// Every record reached a terminal state (completed, or — with the guard
  /// subsystem on — shed, aborted, or quarantined).
  [[nodiscard]] bool AllTerminal() const;

  [[nodiscard]] bool AllComplete() const;

  [[nodiscard]] Samples EctSamples() const;
  [[nodiscard]] Samples QueuingDelaySamples() const;
  [[nodiscard]] Mbps TotalCost() const;

  /// Serializes every record and counter for checkpointing (records in
  /// insertion order — that order is part of the run's observable output).
  void SaveState(BinWriter& w) const;

  /// Restores state serialized by SaveState, replacing all contents.
  void LoadState(BinReader& r);

 private:
  EventRecord& Find(EventId event);

  std::vector<EventRecord> records_;
  FaultStats fault_stats_;
  GuardStats guard_stats_;
  ProbeStats probe_stats_;
  CkptStats ckpt_stats_;
};

}  // namespace nu::metrics
