// Deterministic streaming-percentile sketch for SLO telemetry.
//
// The serving layer needs p50/p90/p99/p999 of admitted-event latency over an
// unbounded stream, sampled periodically into a timeseries — so percentiles
// must be cheap to query mid-run and the memory footprint must not grow with
// the stream. metrics::Samples keeps every value (exact but O(n) memory);
// this sketch is the streaming counterpart:
//
//   * Up to `exact_capacity` values it stores them verbatim, so small-N
//     quantiles agree EXACTLY with Samples::Percentile (same interpolation).
//   * Past that it migrates to logarithmically spaced buckets (growth factor
//     `growth` per bucket): a value v maps to bucket floor(log(v/min_value) /
//     log(growth)), and a quantile answer is the geometric midpoint of its
//     bucket — relative error bounded by sqrt(growth) - 1 (~2.5% at the
//     default 1.05), independent of stream length.
//
// Unlike sampling-based sketches there is no randomness anywhere: the same
// value sequence produces the same sketch state and the same answers on
// every run and platform, which is what makes serve-mode timeseries
// byte-reproducible. State serializes with SaveState/LoadState so the sketch
// rides in simulator snapshots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/binio.h"

namespace nu::metrics {

class PercentileSketch {
 public:
  struct Options {
    /// Values kept verbatim before migrating to buckets. 0 = bucketed from
    /// the first value.
    std::size_t exact_capacity = 256;
    /// Smallest resolvable positive value; everything at or below it shares
    /// the underflow bucket (reported as min_value).
    double min_value = 1e-6;
    /// Per-bucket growth factor (> 1). Relative quantile error is bounded
    /// by sqrt(growth) - 1.
    double growth = 1.05;
  };

  PercentileSketch() : PercentileSketch(Options{}) {}
  explicit PercentileSketch(Options options);

  /// Adds one sample. Negative values are clamped to zero (latencies).
  void Add(double value);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;

  /// Quantile in [0, 1]. Exact (Samples-compatible interpolation) while in
  /// the exact phase; bucket geometric midpoint afterwards, with the true
  /// observed min/max returned for q touching either end. Requires a
  /// non-empty sketch.
  [[nodiscard]] double Quantile(double q) const;

  /// True once the sketch has spilled from exact storage into buckets.
  [[nodiscard]] bool bucketed() const { return bucketed_; }

  [[nodiscard]] const Options& options() const { return options_; }

  void Reset();

  // Snapshot support: full sketch state (phase, exact values in insertion
  // order, bucket counts) round-trips bitwise.
  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

 private:
  [[nodiscard]] std::size_t BucketIndex(double value) const;
  [[nodiscard]] double BucketMid(std::size_t index) const;
  void MigrateToBuckets();

  Options options_;
  bool bucketed_ = false;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  /// Exact phase: raw values in insertion order (sorted lazily per query).
  std::vector<double> exact_;
  /// Bucket phase: counts per log-spaced bucket; index 0 is the underflow
  /// bucket for values <= min_value.
  std::vector<std::uint64_t> buckets_;
};

}  // namespace nu::metrics
