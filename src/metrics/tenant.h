// Per-tenant accounting for the online-serving layer: every served update
// event is tagged with a TenantId, and this module keeps the per-tenant
// ledgers the serve-mode report is built from — admission outcomes, SLO
// misses, and ECT distributions — plus Jain's fairness index across tenants
// (the production counterpart of the paper's event-level fairness story).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/stats.h"
#include "common/types.h"

namespace nu::metrics {

/// One tenant's ledger. Every event the arrival process emits for a tenant
/// lands in exactly one of: admitted (then completed / shed_queue /
/// quarantined / still in flight at run end) or rejected_* (never entered
/// the queue).
struct TenantCounters {
  std::string name;
  /// Events the arrival process emitted for this tenant.
  std::size_t arrivals = 0;
  /// Events that passed serve admission (budget/deadline/priority gates).
  std::size_t admitted = 0;
  std::size_t completed = 0;
  /// Rejected at admission: token-bucket budget exhausted.
  std::size_t rejected_budget = 0;
  /// Rejected at admission: predicted to miss its deadline anyway.
  std::size_t rejected_deadline = 0;
  /// Rejected at admission: brownout Shedding floor above this tenant's
  /// priority.
  std::size_t rejected_priority = 0;
  /// Admitted but later shed from a full queue (overload guard victim).
  std::size_t shed_queue = 0;
  /// Admitted but quarantined as poison by the watchdog.
  std::size_t quarantined = 0;
  /// Completions whose ECT exceeded the event's soft deadline.
  std::size_t slo_misses = 0;
  /// ECT samples of this tenant's completed events.
  Samples ect;
};

/// The tenant ledger collection. Tenants are dense (index = TenantId value)
/// and declared up front, so lookups are O(1) and iteration order is the
/// declaration order — deterministic output.
class TenantAccountant {
 public:
  TenantAccountant() = default;

  /// Declares the tenant roster (index = TenantId value). Resets all
  /// counters.
  void SetTenants(std::vector<std::string> names);

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  [[nodiscard]] const std::vector<TenantCounters>& tenants() const {
    return tenants_;
  }

  TenantCounters& Of(TenantId tenant);
  [[nodiscard]] const TenantCounters& Of(TenantId tenant) const;

  /// Jain's index over per-tenant mean ECTs (completed events only; tenants
  /// with no completions are skipped). 1 = all tenants see equal latency.
  [[nodiscard]] double JainEct() const;

  /// Jain's index over per-tenant admitted fractions (admitted / arrivals;
  /// tenants with no arrivals are skipped). 1 = admission treats all
  /// tenants alike.
  [[nodiscard]] double JainAdmission() const;

  // Snapshot support: full ledger state, ECT samples in insertion order.
  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

 private:
  std::vector<TenantCounters> tenants_;
};

}  // namespace nu::metrics
