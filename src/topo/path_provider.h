// PathProvider abstracts "the feasible path set P(f) of a flow" from the
// paper's model. The planner and migration optimizer only see this interface,
// so they work identically on Fat-Trees (analytic equal-cost enumeration),
// leaf-spines, and arbitrary graphs (Yen's KSP), with an LRU-less
// memoization cache since path sets are static for a fixed topology.
// Memo caches are mutex-guarded: parallel cost probes call Paths()
// concurrently, and unordered_map mapped references stay valid across
// rehashes, so returned references are safe to read lock-free afterwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "topo/fat_tree.h"
#include "topo/ksp.h"
#include "topo/leaf_spine.h"

namespace nu::topo {

class PathProvider {
 public:
  virtual ~PathProvider() = default;

  /// The candidate path set P(f) for an (src, dst) host pair, deterministic
  /// order. Must return at least one path for connected pairs.
  [[nodiscard]] virtual const std::vector<Path>& Paths(NodeId src,
                                                       NodeId dst) const = 0;

  [[nodiscard]] virtual const Graph& graph() const = 0;
};

/// Equal-cost shortest paths of a Fat-Tree, memoized per host pair.
class FatTreePathProvider final : public PathProvider {
 public:
  explicit FatTreePathProvider(const FatTree& fat_tree);

  [[nodiscard]] const std::vector<Path>& Paths(NodeId src,
                                               NodeId dst) const override;
  [[nodiscard]] const Graph& graph() const override;

 private:
  const FatTree& fat_tree_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, std::vector<Path>> cache_;
};

/// Equal-cost shortest paths of a leaf-spine fabric, memoized per host pair.
class LeafSpinePathProvider final : public PathProvider {
 public:
  explicit LeafSpinePathProvider(const LeafSpine& leaf_spine);

  [[nodiscard]] const std::vector<Path>& Paths(NodeId src,
                                               NodeId dst) const override;
  [[nodiscard]] const Graph& graph() const override;

 private:
  const LeafSpine& leaf_spine_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, std::vector<Path>> cache_;
};

/// K-shortest paths on an arbitrary graph via Yen's algorithm, memoized.
class KspPathProvider final : public PathProvider {
 public:
  KspPathProvider(const Graph& graph, std::size_t k);

  [[nodiscard]] const std::vector<Path>& Paths(NodeId src,
                                               NodeId dst) const override;
  [[nodiscard]] const Graph& graph() const override { return graph_; }

 private:
  const Graph& graph_;
  std::size_t k_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, std::vector<Path>> cache_;
};

/// Filters another provider's path sets down to paths avoiding one node —
/// e.g. "all paths not crossing the switch being upgraded". Pairs whose
/// every candidate path crosses the node get an empty set.
class NodeAvoidingPathProvider final : public PathProvider {
 public:
  NodeAvoidingPathProvider(const PathProvider& base, NodeId avoided);

  [[nodiscard]] const std::vector<Path>& Paths(NodeId src,
                                               NodeId dst) const override;
  [[nodiscard]] const Graph& graph() const override { return base_.graph(); }

  [[nodiscard]] NodeId avoided() const { return avoided_; }

 private:
  const PathProvider& base_;
  NodeId avoided_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, std::vector<Path>> cache_;
};

/// Filters another provider's path sets down to paths avoiding one link and
/// its reverse — e.g. "all paths not crossing the failed cable". Pairs whose
/// every candidate crosses the link get an empty set.
class LinkAvoidingPathProvider final : public PathProvider {
 public:
  /// Avoids `link` and, when present in the graph, its reverse direction
  /// (a cable failure kills both).
  LinkAvoidingPathProvider(const PathProvider& base, LinkId link);

  [[nodiscard]] const std::vector<Path>& Paths(NodeId src,
                                               NodeId dst) const override;
  [[nodiscard]] const Graph& graph() const override { return base_.graph(); }

  [[nodiscard]] LinkId avoided() const { return avoided_; }
  [[nodiscard]] LinkId avoided_reverse() const { return avoided_reverse_; }

 private:
  const PathProvider& base_;
  LinkId avoided_;
  LinkId avoided_reverse_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, std::vector<Path>> cache_;
};

/// Filters another provider's path sets through an arbitrary keep-predicate
/// with epoch-based cache invalidation: filtered sets are cached per host
/// pair while `epoch()` is stable and recomputed when it changes. This is
/// how the planner sees only surviving paths under fault injection — the
/// predicate is net::Network::PathAlive and the epoch is the network's
/// topology epoch, without topo depending on net. Pairs whose every
/// candidate is rejected get an empty set (the flow must wait for repair).
class PredicatePathProvider final : public PathProvider {
 public:
  using Predicate = std::function<bool(const Path&)>;
  using EpochFn = std::function<std::uint64_t()>;

  PredicatePathProvider(const PathProvider& base, Predicate keep,
                        EpochFn epoch);

  [[nodiscard]] const std::vector<Path>& Paths(NodeId src,
                                               NodeId dst) const override;
  [[nodiscard]] const Graph& graph() const override { return base_.graph(); }

  /// The unfiltered provider (deadlock-breaking force placement falls back
  /// to it when no surviving path exists).
  [[nodiscard]] const PathProvider& base() const { return base_; }

 private:
  const PathProvider& base_;
  Predicate keep_;
  EpochFn epoch_;
  mutable std::uint64_t cached_epoch_ = 0;
  mutable bool cache_valid_ = false;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, std::vector<Path>> cache_;
};

/// Packs an (src, dst) pair into a cache key.
[[nodiscard]] inline std::uint64_t PairKey(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
}

}  // namespace nu::topo
