// Random connected graph builders (Erdos-Renyi and Waxman-flavoured) for
// property tests: algorithms that must work on "a graph", not just a
// Fat-Tree (Yen's KSP, Dijkstra, migration planning) get fuzzed on these.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "topo/graph.h"

namespace nu::topo {

struct RandomGraphConfig {
  std::size_t nodes = 16;
  /// Probability of each undirected pair being connected (on top of the
  /// random spanning tree that guarantees connectivity).
  double edge_probability = 0.2;
  Mbps min_capacity = 100.0;
  Mbps max_capacity = 1000.0;
};

/// Builds a connected graph: a random spanning tree plus Bernoulli extra
/// edges, all bidirectional, with capacities uniform in [min, max].
/// Every node has role kGeneric.
[[nodiscard]] Graph BuildRandomConnectedGraph(const RandomGraphConfig& config,
                                              Rng& rng);

}  // namespace nu::topo
