// PathRegistry: content-addressed, append-only interning store for
// topo::Path. Hot network state (Network placements, overlay patches,
// migration moves, flow actions) keeps a 32-bit PathRef instead of a deep
// Path copy; the registry owns each distinct path exactly once.
//
// Concurrency contract (parallel cost probes intern while other probe
// threads resolve):
//   * Intern() is mutex-guarded; duplicate content returns the existing ref.
//   * Get()/size() are lock-free: paths live in fixed-capacity chunks whose
//     pointers are published with release stores, and the interned count is
//     published last, also with release semantics. A reader that obtained a
//     ref (through Intern's return value or any value published after it)
//     therefore always observes a fully constructed Path.
//   * Entries are never mutated or removed, so `const Path&` returned by
//     Get() stays valid for the registry's lifetime — including across
//     Network copies, which share the registry by shared_ptr.
//
// Ref VALUES are allocation-order dependent (parallel probing may intern in
// nondeterministic order), so they must never be serialized raw or compared
// across registries; snapshots write path contents and re-intern on load.
#pragma once

#include <atomic>
#include <array>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/check.h"
#include "common/types.h"
#include "topo/graph.h"

namespace nu::topo {

class PathRegistry {
 public:
  PathRegistry() = default;
  PathRegistry(const PathRegistry&) = delete;
  PathRegistry& operator=(const PathRegistry&) = delete;

  /// Interns `path`, returning a stable ref; content already present
  /// returns the existing ref (no growth).
  PathRef Intern(const Path& path);

  /// Resolves a ref issued by this registry. Lock-free.
  [[nodiscard]] const Path& Get(PathRef ref) const {
    NU_EXPECTS(ref.value() < size_.load(std::memory_order_acquire));
    const Path* chunk =
        chunks_[ref.value() >> kChunkShift].load(std::memory_order_acquire);
    return chunk[ref.value() & (kChunkCapacity - 1)];
  }

  /// Number of distinct paths interned so far. Lock-free.
  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

  /// Honest byte footprint: chunk storage, the heap blocks of each interned
  /// path's node/link vectors, and the dedup index (node + bucket costs).
  [[nodiscard]] std::size_t ApproxBytes() const;

 private:
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkCapacity = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMaxChunks = 4096;  // 4M distinct paths

  mutable std::mutex mutex_;
  /// Content hash -> refs with that hash (collisions resolved by compare).
  std::unordered_multimap<std::uint64_t, std::uint32_t> index_;
  std::array<std::atomic<Path*>, kMaxChunks> chunks_{};
  std::array<std::unique_ptr<Path[]>, kMaxChunks> chunk_owner_;
  std::atomic<std::uint32_t> size_{0};
};

}  // namespace nu::topo
