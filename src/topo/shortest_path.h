// Shortest-path primitives over the graph substrate: BFS for hop counts and
// Dijkstra for weighted searches. Both accept a link filter so higher layers
// can search "the graph minus congested links" or "links with >= d residual
// bandwidth" without materializing subgraphs.
#pragma once

#include <functional>
#include <optional>

#include "topo/graph.h"

namespace nu::topo {

/// Predicate deciding whether a link may be used. Empty means "all links".
using LinkFilter = std::function<bool(const Link&)>;

/// Per-link cost for weighted searches. Must be >= 0. Empty means hop count.
using LinkWeight = std::function<double(const Link&)>;

/// Hop-count shortest path via BFS. Returns nullopt when unreachable.
/// Ties are broken deterministically by link insertion order.
[[nodiscard]] std::optional<Path> BfsShortestPath(
    const Graph& graph, NodeId src, NodeId dst,
    const LinkFilter& filter = {});

/// Weighted shortest path via Dijkstra (binary heap). Returns nullopt when
/// unreachable. Requires non-negative weights.
[[nodiscard]] std::optional<Path> DijkstraShortestPath(
    const Graph& graph, NodeId src, NodeId dst, const LinkWeight& weight = {},
    const LinkFilter& filter = {});

/// Total weight of a path under `weight` (hop count when empty).
[[nodiscard]] double PathWeight(const Graph& graph, const Path& path,
                                const LinkWeight& weight = {});

/// Hop distances from `src` to every node (SIZE_MAX when unreachable).
[[nodiscard]] std::vector<std::size_t> BfsDistances(
    const Graph& graph, NodeId src, const LinkFilter& filter = {});

/// Network diameter (max finite pairwise hop distance). O(V * (V + E)).
[[nodiscard]] std::size_t Diameter(const Graph& graph);

/// True when every node can reach every other node.
[[nodiscard]] bool IsStronglyConnected(const Graph& graph);

}  // namespace nu::topo
