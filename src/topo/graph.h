// Directed multigraph with link capacities — the substrate every other layer
// builds on. Nodes carry a role (host / edge / aggregation / core switch) so
// topology builders and path providers can reason about tiers; links are
// directed so that the two directions of a cable are tracked independently,
// as datacenter traffic is asymmetric.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace nu::topo {

enum class NodeRole : std::uint8_t {
  kHost,
  kEdgeSwitch,
  kAggSwitch,
  kCoreSwitch,
  kGeneric,
};

[[nodiscard]] const char* ToString(NodeRole role);

struct Node {
  NodeId id;
  NodeRole role = NodeRole::kGeneric;
  std::string name;
};

struct Link {
  LinkId id;
  NodeId src;
  NodeId dst;
  Mbps capacity = 0.0;
};

/// A loop-free directed path: the node sequence and the link sequence
/// (links.size() == nodes.size() - 1; empty path has one node).
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hop_count() const { return links.size(); }
  [[nodiscard]] bool empty() const { return links.empty(); }
  [[nodiscard]] NodeId source() const {
    NU_EXPECTS(!nodes.empty());
    return nodes.front();
  }
  [[nodiscard]] NodeId destination() const {
    NU_EXPECTS(!nodes.empty());
    return nodes.back();
  }

  friend bool operator==(const Path& a, const Path& b) {
    return a.nodes == b.nodes && a.links == b.links;
  }
};

class Graph {
 public:
  Graph() = default;

  /// Adds a node; returns its id. Ids are dense and start at 0.
  NodeId AddNode(NodeRole role, std::string name = {});

  /// Adds one directed link src -> dst. Requires capacity > 0.
  LinkId AddLink(NodeId src, NodeId dst, Mbps capacity);

  /// Adds both directions with the same capacity; returns {forward, reverse}.
  std::pair<LinkId, LinkId> AddBidirectional(NodeId a, NodeId b, Mbps capacity);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const {
    NU_EXPECTS(id.value() < nodes_.size());
    return nodes_[id.value()];
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    NU_EXPECTS(id.value() < links_.size());
    return links_[id.value()];
  }

  [[nodiscard]] std::span<const Node> nodes() const { return nodes_; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  /// Out-links of `node` (link ids).
  [[nodiscard]] std::span<const LinkId> OutLinks(NodeId node) const;
  /// In-links of `node` (link ids).
  [[nodiscard]] std::span<const LinkId> InLinks(NodeId node) const;

  /// First link src -> dst, or invalid id when absent.
  [[nodiscard]] LinkId FindLink(NodeId src, NodeId dst) const;

  /// All nodes with the given role (e.g. the hosts of a Fat-Tree).
  [[nodiscard]] std::vector<NodeId> NodesWithRole(NodeRole role) const;

  /// Validates that `path` is a contiguous src->dst walk over existing links
  /// with no repeated node (simple path).
  [[nodiscard]] bool IsValidPath(const Path& path) const;

  /// Builds the Path object for a node sequence; aborts if any consecutive
  /// pair lacks a link. Convenience for tests and topology builders.
  [[nodiscard]] Path MakePath(std::span<const NodeId> node_sequence) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;
};

}  // namespace nu::topo
