// Two-tier leaf-spine (Clos) builder. Not used by the paper's headline
// evaluation (which is a Fat-Tree) but included so the scheduling algorithms
// can be exercised on a second realistic datacenter fabric in tests and
// generality experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "topo/graph.h"

namespace nu::topo {

struct LeafSpineConfig {
  std::size_t leaves = 8;
  std::size_t spines = 4;
  std::size_t hosts_per_leaf = 8;
  Mbps host_link_capacity = 1000.0;
  Mbps fabric_link_capacity = 4000.0;
};

class LeafSpine {
 public:
  explicit LeafSpine(LeafSpineConfig config);

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const LeafSpineConfig& config() const { return config_; }

  [[nodiscard]] NodeId leaf(std::size_t index) const;
  [[nodiscard]] NodeId spine(std::size_t index) const;
  [[nodiscard]] NodeId host(std::size_t index) const;
  [[nodiscard]] std::span<const NodeId> hosts() const { return hosts_; }

  [[nodiscard]] std::size_t LeafOfHost(NodeId host) const;

  /// All shortest host-to-host paths: 1 for same-leaf pairs, one per spine
  /// otherwise, in a deterministic order.
  [[nodiscard]] std::vector<Path> HostPaths(NodeId src, NodeId dst) const;

 private:
  LeafSpineConfig config_;
  Graph graph_;
  std::vector<NodeId> leaves_;
  std::vector<NodeId> spines_;
  std::vector<NodeId> hosts_;
};

}  // namespace nu::topo
