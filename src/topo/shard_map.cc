#include "topo/shard_map.h"

#include <numeric>

namespace nu::topo {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void FnvMix(std::uint64_t& hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xFF;
    hash *= kFnvPrime;
  }
}

/// Union-find over node ids (path-halving + union by smaller root, so the
/// representative of each component is its smallest node id).
class Components {
 public:
  explicit Components(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

ShardMap::ShardMap(const Graph& graph, std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {
  const std::size_t n = graph.node_count();
  node_shard_.assign(n, 0);
  shard_sizes_.assign(shards_, 0);

  // Components of the core-less subgraph. Each union uses the link's two
  // endpoints; links touching a core switch are skipped, so pods (or rack
  // subtrees) stay separate.
  Components components(n);
  auto is_core = [&graph](NodeId id) {
    return graph.node(id).role == NodeRole::kCoreSwitch;
  };
  for (const Link& link : graph.links()) {
    if (is_core(link.src) || is_core(link.dst)) continue;
    components.Union(link.src.value(), link.dst.value());
  }

  // Number the components by smallest member id (the union-find
  // representative), counting only non-core components.
  std::vector<std::size_t> component_index(n, 0);
  std::size_t component_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (is_core(NodeId{static_cast<NodeId::rep_type>(v)})) continue;
    const std::size_t root = components.Find(v);
    if (root == v) component_index[v] = component_count++;
  }

  if (component_count >= shards_) {
    // Pod partition: component c -> shard c % shards, cores striped by
    // their position among the core switches.
    std::size_t core_seen = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const NodeId id{static_cast<NodeId::rep_type>(v)};
      node_shard_[v] = is_core(id)
                           ? core_seen++ % shards_
                           : component_index[components.Find(v)] % shards_;
    }
  } else {
    // Too few components (e.g. a random graph with no core layer): stripe
    // every node by id so the map is total and balanced.
    for (std::size_t v = 0; v < n; ++v) node_shard_[v] = v % shards_;
  }
  for (std::size_t v = 0; v < n; ++v) ++shard_sizes_[node_shard_[v]];

  // Boundary-link ownership: the pod (non-core) side owns the link.
  link_owner_.assign(graph.link_count(), 0);
  link_boundary_.assign(graph.link_count(), 0);
  for (const Link& link : graph.links()) {
    const std::size_t src_shard = node_shard_[link.src.value()];
    const std::size_t dst_shard = node_shard_[link.dst.value()];
    std::size_t owner = src_shard;
    if (src_shard != dst_shard) {
      link_boundary_[link.id.value()] = 1;
      ++boundary_links_;
      if (is_core(link.src) && !is_core(link.dst)) owner = dst_shard;
    }
    link_owner_[link.id.value()] = owner;
  }

  fingerprint_ = kFnvOffset;
  FnvMix(fingerprint_, shards_);
  for (std::size_t v = 0; v < n; ++v) FnvMix(fingerprint_, node_shard_[v]);
  for (std::size_t l = 0; l < link_owner_.size(); ++l) {
    FnvMix(fingerprint_, link_owner_[l]);
  }
}

}  // namespace nu::topo
