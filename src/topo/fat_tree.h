// k-ary Fat-Tree builder (Leiserson / Al-Fares form), the topology of the
// paper's evaluation (k = 8, 1 Gbps links).
//
// Structure for even k:
//   - k pods, each with k/2 edge switches and k/2 aggregation switches;
//   - each edge switch connects k/2 hosts and all k/2 agg switches of its pod;
//   - (k/2)^2 core switches; core switch c (0-based) connects to the
//     (c / (k/2))-th aggregation switch of every pod.
// Totals: 5k^2/4 switches, k^3/4 hosts.
//
// The builder also records the coordinates of every element so that
// FatTreePathProvider can enumerate all equal-cost shortest paths
// analytically ((k/2)^2 inter-pod, k/2 intra-pod, 1 same-edge).
#pragma once

#include <cstddef>
#include <vector>

#include "topo/graph.h"

namespace nu::topo {

struct FatTreeConfig {
  /// Pod count; must be even and >= 2. The paper uses k = 8.
  std::size_t k = 8;
  /// Per-link capacity; the paper uses 1 Gbps.
  Mbps link_capacity = 1000.0;
  /// Capacity multiplier for fabric links (edge-agg and agg-core) relative
  /// to host links. 1.0 is the paper's full-bisection tree; 0.5 models the
  /// 2:1 oversubscription common in production fabrics, which concentrates
  /// contention in the core.
  double fabric_capacity_factor = 1.0;
};

class FatTree {
 public:
  explicit FatTree(FatTreeConfig config);

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const FatTreeConfig& config() const { return config_; }

  [[nodiscard]] std::size_t k() const { return config_.k; }
  [[nodiscard]] std::size_t pod_count() const { return config_.k; }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }

  /// Host h (0 <= h < k^3/4).
  [[nodiscard]] NodeId host(std::size_t index) const;
  /// Edge switch e of pod p (0 <= e < k/2).
  [[nodiscard]] NodeId edge(std::size_t pod, std::size_t index) const;
  /// Aggregation switch a of pod p (0 <= a < k/2).
  [[nodiscard]] NodeId agg(std::size_t pod, std::size_t index) const;
  /// Core switch c (0 <= c < (k/2)^2).
  [[nodiscard]] NodeId core(std::size_t index) const;

  [[nodiscard]] std::span<const NodeId> hosts() const { return hosts_; }

  /// Pod of a host.
  [[nodiscard]] std::size_t PodOfHost(NodeId host) const;
  /// Edge-switch index (within its pod) of a host.
  [[nodiscard]] std::size_t EdgeIndexOfHost(NodeId host) const;
  /// Host index from its NodeId (inverse of host()).
  [[nodiscard]] std::size_t HostIndex(NodeId host) const;

  /// All equal-cost shortest paths between two distinct hosts, in a
  /// deterministic order. See the header comment for path counts.
  [[nodiscard]] std::vector<Path> HostPaths(NodeId src, NodeId dst) const;

 private:
  FatTreeConfig config_;
  Graph graph_;
  std::vector<NodeId> hosts_;                       // k^3/4
  std::vector<std::vector<NodeId>> edges_;          // [pod][k/2]
  std::vector<std::vector<NodeId>> aggs_;           // [pod][k/2]
  std::vector<NodeId> cores_;                       // (k/2)^2
};

}  // namespace nu::topo
