#include "topo/path_provider.h"

namespace nu::topo {

FatTreePathProvider::FatTreePathProvider(const FatTree& fat_tree)
    : fat_tree_(fat_tree) {}

const std::vector<Path>& FatTreePathProvider::Paths(NodeId src,
                                                    NodeId dst) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = PairKey(src, dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, fat_tree_.HostPaths(src, dst)).first;
  }
  return it->second;
}

const Graph& FatTreePathProvider::graph() const { return fat_tree_.graph(); }

LeafSpinePathProvider::LeafSpinePathProvider(const LeafSpine& leaf_spine)
    : leaf_spine_(leaf_spine) {}

const std::vector<Path>& LeafSpinePathProvider::Paths(NodeId src,
                                                      NodeId dst) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = PairKey(src, dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, leaf_spine_.HostPaths(src, dst)).first;
  }
  return it->second;
}

const Graph& LeafSpinePathProvider::graph() const {
  return leaf_spine_.graph();
}

KspPathProvider::KspPathProvider(const Graph& graph, std::size_t k)
    : graph_(graph), k_(k) {
  NU_EXPECTS(k >= 1);
}

const std::vector<Path>& KspPathProvider::Paths(NodeId src, NodeId dst) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = PairKey(src, dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, YenKShortestPaths(graph_, src, dst, k_)).first;
  }
  return it->second;
}

LinkAvoidingPathProvider::LinkAvoidingPathProvider(const PathProvider& base,
                                                   LinkId link)
    : base_(base), avoided_(link) {
  const Link& l = base.graph().link(link);
  avoided_reverse_ = base.graph().FindLink(l.dst, l.src);
}

const std::vector<Path>& LinkAvoidingPathProvider::Paths(NodeId src,
                                                         NodeId dst) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = PairKey(src, dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    std::vector<Path> filtered;
    for (const Path& p : base_.Paths(src, dst)) {
      bool crosses = false;
      for (LinkId lid : p.links) {
        if (lid == avoided_ ||
            (avoided_reverse_.valid() && lid == avoided_reverse_)) {
          crosses = true;
          break;
        }
      }
      if (!crosses) filtered.push_back(p);
    }
    it = cache_.emplace(key, std::move(filtered)).first;
  }
  return it->second;
}

NodeAvoidingPathProvider::NodeAvoidingPathProvider(const PathProvider& base,
                                                   NodeId avoided)
    : base_(base), avoided_(avoided) {}

const std::vector<Path>& NodeAvoidingPathProvider::Paths(NodeId src,
                                                         NodeId dst) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = PairKey(src, dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    std::vector<Path> filtered;
    for (const Path& p : base_.Paths(src, dst)) {
      bool crosses = false;
      for (NodeId n : p.nodes) {
        if (n == avoided_) {
          crosses = true;
          break;
        }
      }
      if (!crosses) filtered.push_back(p);
    }
    it = cache_.emplace(key, std::move(filtered)).first;
  }
  return it->second;
}

PredicatePathProvider::PredicatePathProvider(const PathProvider& base,
                                             Predicate keep, EpochFn epoch)
    : base_(base), keep_(std::move(keep)), epoch_(std::move(epoch)) {
  NU_EXPECTS(keep_ != nullptr);
  NU_EXPECTS(epoch_ != nullptr);
}

const std::vector<Path>& PredicatePathProvider::Paths(NodeId src,
                                                      NodeId dst) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t epoch = epoch_();
  if (!cache_valid_ || epoch != cached_epoch_) {
    cache_.clear();
    cached_epoch_ = epoch;
    cache_valid_ = true;
  }
  const std::uint64_t key = PairKey(src, dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    std::vector<Path> filtered;
    for (const Path& p : base_.Paths(src, dst)) {
      if (keep_(p)) filtered.push_back(p);
    }
    it = cache_.emplace(key, std::move(filtered)).first;
  }
  return it->second;
}

}  // namespace nu::topo
