#include "topo/ksp.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace nu::topo {
namespace {

struct Candidate {
  double weight;
  Path path;

  friend bool operator<(const Candidate& a, const Candidate& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.path.nodes.size() != b.path.nodes.size()) {
      return a.path.nodes.size() < b.path.nodes.size();
    }
    return a.path.nodes < b.path.nodes;  // deterministic tiebreak
  }
};

}  // namespace

std::vector<Path> YenKShortestPaths(const Graph& graph, NodeId src, NodeId dst,
                                    std::size_t k, const LinkWeight& weight,
                                    const LinkFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;

  auto first = DijkstraShortestPath(graph, src, dst, weight, filter);
  if (!first) return result;
  result.push_back(std::move(*first));

  std::set<Candidate> candidates;

  while (result.size() < k) {
    const Path& prev = result.back();
    // Each node of the previous path except the last is a spur node.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur = prev.nodes[i];
      // Root = prefix of prev up to (and including) the spur node.
      Path root;
      root.nodes.assign(prev.nodes.begin(),
                        prev.nodes.begin() + static_cast<std::ptrdiff_t>(i + 1));
      root.links.assign(prev.links.begin(),
                        prev.links.begin() + static_cast<std::ptrdiff_t>(i));

      // Links to exclude: the i-th link of every accepted path sharing the
      // same root.
      std::unordered_set<LinkId::rep_type> banned_links;
      for (const Path& p : result) {
        if (p.links.size() > i &&
            std::equal(root.nodes.begin(), root.nodes.end(),
                       p.nodes.begin(),
                       p.nodes.begin() + static_cast<std::ptrdiff_t>(i + 1))) {
          banned_links.insert(p.links[i].value());
        }
      }
      // Nodes of the root (except the spur) must not be revisited.
      std::unordered_set<NodeId::rep_type> banned_nodes;
      for (std::size_t j = 0; j < i; ++j) {
        banned_nodes.insert(prev.nodes[j].value());
      }

      const LinkFilter spur_filter = [&](const Link& l) {
        if (banned_links.contains(l.id.value())) return false;
        if (banned_nodes.contains(l.dst.value())) return false;
        if (banned_nodes.contains(l.src.value())) return false;
        return !filter || filter(l);
      };

      auto spur_path =
          DijkstraShortestPath(graph, spur, dst, weight, spur_filter);
      if (!spur_path) continue;

      Path total = root;
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin() + 1,
                         spur_path->nodes.end());
      total.links.insert(total.links.end(), spur_path->links.begin(),
                         spur_path->links.end());
      if (!graph.IsValidPath(total)) continue;  // loop via the root; drop

      Candidate cand{PathWeight(graph, total, weight), std::move(total)};
      // std::set keeps candidates unique and sorted.
      candidates.insert(std::move(cand));
    }

    // Pop the best candidate not already accepted.
    bool appended = false;
    while (!candidates.empty()) {
      auto it = candidates.begin();
      Path best = it->path;
      candidates.erase(it);
      if (std::find(result.begin(), result.end(), best) == result.end()) {
        result.push_back(std::move(best));
        appended = true;
        break;
      }
    }
    if (!appended) break;  // candidate space exhausted
  }
  return result;
}

}  // namespace nu::topo
