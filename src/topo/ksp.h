// Yen's k-shortest loopless paths. Used as the path provider on arbitrary
// graphs (where Fat-Tree analytic enumeration does not apply) and to give
// migrated flows a ranked set of alternate paths.
#pragma once

#include <cstddef>
#include <vector>

#include "topo/shortest_path.h"

namespace nu::topo {

/// Returns up to `k` loopless paths from src to dst in non-decreasing weight
/// order (hop count when `weight` is empty). Deterministic: ties are broken
/// by the deviation-node order of Yen's algorithm.
[[nodiscard]] std::vector<Path> YenKShortestPaths(
    const Graph& graph, NodeId src, NodeId dst, std::size_t k,
    const LinkWeight& weight = {}, const LinkFilter& filter = {});

}  // namespace nu::topo
