#include "topo/random_graph.h"

namespace nu::topo {

Graph BuildRandomConnectedGraph(const RandomGraphConfig& config, Rng& rng) {
  NU_EXPECTS(config.nodes >= 2);
  NU_EXPECTS(config.edge_probability >= 0.0 && config.edge_probability <= 1.0);
  NU_EXPECTS(config.min_capacity > 0.0);
  NU_EXPECTS(config.max_capacity >= config.min_capacity);

  Graph graph;
  std::vector<NodeId> nodes;
  nodes.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    nodes.push_back(graph.AddNode(NodeRole::kGeneric));
  }

  auto capacity = [&] {
    return rng.Uniform(config.min_capacity, config.max_capacity);
  };

  // Random spanning tree: attach each node to a uniformly random earlier
  // node (random recursive tree) — guarantees connectivity.
  for (std::size_t i = 1; i < config.nodes; ++i) {
    const std::size_t parent = rng.Index(i);
    graph.AddBidirectional(nodes[i], nodes[parent], capacity());
  }

  // Extra Bernoulli edges (skip pairs already adjacent).
  for (std::size_t i = 0; i < config.nodes; ++i) {
    for (std::size_t j = i + 1; j < config.nodes; ++j) {
      if (graph.FindLink(nodes[i], nodes[j]).valid()) continue;
      if (rng.Bernoulli(config.edge_probability)) {
        graph.AddBidirectional(nodes[i], nodes[j], capacity());
      }
    }
  }
  return graph;
}

}  // namespace nu::topo
