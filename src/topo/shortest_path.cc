#include "topo/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace nu::topo {
namespace {

constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

/// Reconstructs a Path from per-node predecessor links.
Path Reconstruct(const Graph& graph, NodeId src, NodeId dst,
                 const std::vector<LinkId>& pred_link) {
  Path path;
  NodeId cur = dst;
  while (cur != src) {
    const LinkId lid = pred_link[cur.value()];
    NU_CHECK(lid.valid());
    path.links.push_back(lid);
    path.nodes.push_back(cur);
    cur = graph.link(lid).src;
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

bool LinkUsable(const LinkFilter& filter, const Link& link) {
  return !filter || filter(link);
}

}  // namespace

std::optional<Path> BfsShortestPath(const Graph& graph, NodeId src, NodeId dst,
                                    const LinkFilter& filter) {
  NU_EXPECTS(src.value() < graph.node_count());
  NU_EXPECTS(dst.value() < graph.node_count());
  if (src == dst) {
    Path path;
    path.nodes.push_back(src);
    return path;
  }
  std::vector<LinkId> pred_link(graph.node_count());
  std::vector<bool> visited(graph.node_count(), false);
  std::queue<NodeId> queue;
  visited[src.value()] = true;
  queue.push(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (LinkId lid : graph.OutLinks(u)) {
      const Link& l = graph.link(lid);
      if (!LinkUsable(filter, l)) continue;
      if (visited[l.dst.value()]) continue;
      visited[l.dst.value()] = true;
      pred_link[l.dst.value()] = lid;
      if (l.dst == dst) return Reconstruct(graph, src, dst, pred_link);
      queue.push(l.dst);
    }
  }
  return std::nullopt;
}

std::optional<Path> DijkstraShortestPath(const Graph& graph, NodeId src,
                                         NodeId dst, const LinkWeight& weight,
                                         const LinkFilter& filter) {
  NU_EXPECTS(src.value() < graph.node_count());
  NU_EXPECTS(dst.value() < graph.node_count());
  if (src == dst) {
    Path path;
    path.nodes.push_back(src);
    return path;
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(graph.node_count(), kInf);
  std::vector<LinkId> pred_link(graph.node_count());
  std::vector<bool> done(graph.node_count(), false);

  using HeapEntry = std::pair<double, NodeId::rep_type>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  dist[src.value()] = 0.0;
  heap.emplace(0.0, src.value());

  while (!heap.empty()) {
    const auto [d, u_rep] = heap.top();
    heap.pop();
    if (done[u_rep]) continue;
    done[u_rep] = true;
    const NodeId u{u_rep};
    if (u == dst) return Reconstruct(graph, src, dst, pred_link);
    for (LinkId lid : graph.OutLinks(u)) {
      const Link& l = graph.link(lid);
      if (!LinkUsable(filter, l)) continue;
      const double w = weight ? weight(l) : 1.0;
      NU_CHECK(w >= 0.0);
      const double nd = d + w;
      if (nd < dist[l.dst.value()]) {
        dist[l.dst.value()] = nd;
        pred_link[l.dst.value()] = lid;
        heap.emplace(nd, l.dst.value());
      }
    }
  }
  return std::nullopt;
}

double PathWeight(const Graph& graph, const Path& path,
                  const LinkWeight& weight) {
  double total = 0.0;
  for (LinkId lid : path.links) {
    total += weight ? weight(graph.link(lid)) : 1.0;
  }
  return total;
}

std::vector<std::size_t> BfsDistances(const Graph& graph, NodeId src,
                                      const LinkFilter& filter) {
  NU_EXPECTS(src.value() < graph.node_count());
  std::vector<std::size_t> dist(graph.node_count(), kUnreachable);
  std::queue<NodeId> queue;
  dist[src.value()] = 0;
  queue.push(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (LinkId lid : graph.OutLinks(u)) {
      const Link& l = graph.link(lid);
      if (!LinkUsable(filter, l)) continue;
      if (dist[l.dst.value()] != kUnreachable) continue;
      dist[l.dst.value()] = dist[u.value()] + 1;
      queue.push(l.dst);
    }
  }
  return dist;
}

std::size_t Diameter(const Graph& graph) {
  std::size_t diameter = 0;
  for (const Node& n : graph.nodes()) {
    const auto dist = BfsDistances(graph, n.id);
    for (std::size_t d : dist) {
      if (d != kUnreachable) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

bool IsStronglyConnected(const Graph& graph) {
  if (graph.node_count() == 0) return true;
  for (const Node& n : graph.nodes()) {
    const auto dist = BfsDistances(graph, n.id);
    for (std::size_t d : dist) {
      if (d == kUnreachable) return false;
    }
  }
  return true;
}

}  // namespace nu::topo
