// Pod-level fabric partition for the sharded simulation engine. A k-ary
// Fat-Tree is naturally k shards: every pod (its hosts, edge and agg
// switches, and their internal links) is one unit of locality, and only the
// core layer is shared. ShardMap captures that partition generically:
//
//   * Node assignment — connected components of the subgraph with the core
//     switches removed. In a Fat-Tree each component IS a pod; in a
//     leaf-spine each component is a rack subtree. Components are numbered
//     by their smallest node id (deterministic) and folded onto the
//     requested shard count round-robin; core switches are striped the same
//     way. Graphs whose component structure is too coarse (fewer components
//     than shards) fall back to striping every node by id, so the map is
//     total for any topology.
//   * Boundary-link ownership — a link whose endpoints live in different
//     shards (the pod<->core hops of every cross-pod path) is owned by the
//     shard of its non-core endpoint: the pod side terminates the link's
//     rules, so the pod-side shard audits it. Core-core links (none in a
//     Fat-Tree) default to the source's shard.
//
// The map is immutable after construction and safe to share across worker
// threads. Fingerprint() folds the full assignment into one value so
// snapshots can verify that a restored run shards the fabric identically.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"

namespace nu::topo {

class ShardMap {
 public:
  /// Partitions `graph` into `shards` shards (>= 1) as described above.
  ShardMap(const Graph& graph, std::size_t shards);

  [[nodiscard]] std::size_t shard_count() const { return shards_; }

  /// Shard of a node (total: every node is assigned).
  [[nodiscard]] std::size_t ShardOf(NodeId node) const {
    NU_EXPECTS(node.value() < node_shard_.size());
    return node_shard_[node.value()];
  }

  /// Owning shard of a link (pod side of a boundary link; see above).
  [[nodiscard]] std::size_t OwnerOf(LinkId link) const {
    NU_EXPECTS(link.value() < link_owner_.size());
    return link_owner_[link.value()];
  }

  /// True when the link's endpoints live in different shards.
  [[nodiscard]] bool IsBoundary(LinkId link) const {
    NU_EXPECTS(link.value() < link_boundary_.size());
    return link_boundary_[link.value()] != 0;
  }

  /// Number of boundary links (both directions counted).
  [[nodiscard]] std::size_t boundary_link_count() const {
    return boundary_links_;
  }

  /// Nodes per shard (diagnostics / balance checks).
  [[nodiscard]] const std::vector<std::size_t>& shard_sizes() const {
    return shard_sizes_;
  }

  /// FNV-1a over the full node and link assignment. Two runs over the same
  /// graph and shard count always agree; a snapshot stores this value so a
  /// restored run can prove it re-derived the same partition.
  [[nodiscard]] std::uint64_t Fingerprint() const { return fingerprint_; }

 private:
  std::size_t shards_ = 1;
  std::vector<std::size_t> node_shard_;   // by NodeId
  std::vector<std::size_t> link_owner_;   // by LinkId
  std::vector<char> link_boundary_;       // by LinkId
  std::vector<std::size_t> shard_sizes_;  // by shard
  std::size_t boundary_links_ = 0;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace nu::topo
