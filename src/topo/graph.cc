#include "topo/graph.h"

#include <unordered_set>

namespace nu::topo {

const char* ToString(NodeRole role) {
  switch (role) {
    case NodeRole::kHost:
      return "host";
    case NodeRole::kEdgeSwitch:
      return "edge";
    case NodeRole::kAggSwitch:
      return "agg";
    case NodeRole::kCoreSwitch:
      return "core";
    case NodeRole::kGeneric:
      return "node";
  }
  return "?";
}

NodeId Graph::AddNode(NodeRole role, std::string name) {
  const NodeId id{static_cast<NodeId::rep_type>(nodes_.size())};
  if (name.empty()) {
    name = std::string(ToString(role)) + "-" + std::to_string(id.value());
  }
  nodes_.push_back(Node{id, role, std::move(name)});
  out_links_.emplace_back();
  in_links_.emplace_back();
  return id;
}

LinkId Graph::AddLink(NodeId src, NodeId dst, Mbps capacity) {
  NU_EXPECTS(src.value() < nodes_.size());
  NU_EXPECTS(dst.value() < nodes_.size());
  NU_EXPECTS(src != dst);
  NU_EXPECTS(capacity > 0.0);
  const LinkId id{static_cast<LinkId::rep_type>(links_.size())};
  links_.push_back(Link{id, src, dst, capacity});
  out_links_[src.value()].push_back(id);
  in_links_[dst.value()].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Graph::AddBidirectional(NodeId a, NodeId b,
                                                  Mbps capacity) {
  return {AddLink(a, b, capacity), AddLink(b, a, capacity)};
}

std::span<const LinkId> Graph::OutLinks(NodeId node) const {
  NU_EXPECTS(node.value() < nodes_.size());
  return out_links_[node.value()];
}

std::span<const LinkId> Graph::InLinks(NodeId node) const {
  NU_EXPECTS(node.value() < nodes_.size());
  return in_links_[node.value()];
}

LinkId Graph::FindLink(NodeId src, NodeId dst) const {
  NU_EXPECTS(src.value() < nodes_.size());
  for (LinkId id : out_links_[src.value()]) {
    if (links_[id.value()].dst == dst) return id;
  }
  return LinkId::invalid();
}

std::vector<NodeId> Graph::NodesWithRole(NodeRole role) const {
  std::vector<NodeId> result;
  for (const Node& n : nodes_) {
    if (n.role == role) result.push_back(n.id);
  }
  return result;
}

bool Graph::IsValidPath(const Path& path) const {
  if (path.nodes.empty()) return false;
  if (path.links.size() + 1 != path.nodes.size()) return false;
  std::unordered_set<NodeId::rep_type> seen;
  for (NodeId n : path.nodes) {
    if (n.value() >= nodes_.size()) return false;
    if (!seen.insert(n.value()).second) return false;  // repeated node
  }
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    const LinkId lid = path.links[i];
    if (lid.value() >= links_.size()) return false;
    const Link& l = links_[lid.value()];
    if (l.src != path.nodes[i] || l.dst != path.nodes[i + 1]) return false;
  }
  return true;
}

Path Graph::MakePath(std::span<const NodeId> node_sequence) const {
  NU_EXPECTS(!node_sequence.empty());
  Path path;
  path.nodes.assign(node_sequence.begin(), node_sequence.end());
  path.links.reserve(node_sequence.size() - 1);
  for (std::size_t i = 0; i + 1 < node_sequence.size(); ++i) {
    const LinkId lid = FindLink(node_sequence[i], node_sequence[i + 1]);
    NU_CHECK(lid.valid());
    path.links.push_back(lid);
  }
  NU_ENSURES(IsValidPath(path));
  return path;
}

}  // namespace nu::topo
