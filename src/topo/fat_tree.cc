#include "topo/fat_tree.h"

#include <algorithm>
#include <array>
#include <string>

namespace nu::topo {

FatTree::FatTree(FatTreeConfig config) : config_(config) {
  const std::size_t k = config_.k;
  NU_EXPECTS(k >= 2 && k % 2 == 0);
  NU_EXPECTS(config_.link_capacity > 0.0);
  NU_EXPECTS(config_.fabric_capacity_factor > 0.0);
  const std::size_t half = k / 2;
  const Mbps cap = config_.link_capacity;
  const Mbps fabric_cap = cap * config_.fabric_capacity_factor;

  // Core switches.
  cores_.reserve(half * half);
  for (std::size_t c = 0; c < half * half; ++c) {
    cores_.push_back(
        graph_.AddNode(NodeRole::kCoreSwitch, "core-" + std::to_string(c)));
  }

  edges_.resize(k);
  aggs_.resize(k);
  hosts_.reserve(k * half * half);
  for (std::size_t p = 0; p < k; ++p) {
    edges_[p].reserve(half);
    aggs_[p].reserve(half);
    for (std::size_t i = 0; i < half; ++i) {
      edges_[p].push_back(graph_.AddNode(
          NodeRole::kEdgeSwitch,
          "edge-" + std::to_string(p) + "-" + std::to_string(i)));
      aggs_[p].push_back(graph_.AddNode(
          NodeRole::kAggSwitch,
          "agg-" + std::to_string(p) + "-" + std::to_string(i)));
    }
    // Hosts under each edge switch.
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t h = 0; h < half; ++h) {
        const NodeId host = graph_.AddNode(
            NodeRole::kHost, "host-" + std::to_string(p) + "-" +
                                 std::to_string(e) + "-" + std::to_string(h));
        hosts_.push_back(host);
        graph_.AddBidirectional(host, edges_[p][e], cap);
      }
    }
    // Edge <-> agg full bipartite within the pod.
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        graph_.AddBidirectional(edges_[p][e], aggs_[p][a], fabric_cap);
      }
    }
    // Agg <-> core: agg a connects to cores [a*half, (a+1)*half).
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t c = 0; c < half; ++c) {
        graph_.AddBidirectional(aggs_[p][a], cores_[a * half + c], fabric_cap);
      }
    }
  }

  NU_ENSURES(graph_.node_count() == 5 * k * k / 4 + k * k * k / 4);
}

NodeId FatTree::host(std::size_t index) const {
  NU_EXPECTS(index < hosts_.size());
  return hosts_[index];
}

NodeId FatTree::edge(std::size_t pod, std::size_t index) const {
  NU_EXPECTS(pod < edges_.size());
  NU_EXPECTS(index < edges_[pod].size());
  return edges_[pod][index];
}

NodeId FatTree::agg(std::size_t pod, std::size_t index) const {
  NU_EXPECTS(pod < aggs_.size());
  NU_EXPECTS(index < aggs_[pod].size());
  return aggs_[pod][index];
}

NodeId FatTree::core(std::size_t index) const {
  NU_EXPECTS(index < cores_.size());
  return cores_[index];
}

std::size_t FatTree::HostIndex(NodeId host) const {
  // hosts_ is sorted: hosts are appended in increasing NodeId order within
  // each pod, and pods are processed in order.
  const auto it = std::lower_bound(hosts_.begin(), hosts_.end(), host);
  NU_EXPECTS(it != hosts_.end() && *it == host);
  return static_cast<std::size_t>(it - hosts_.begin());
}

std::size_t FatTree::PodOfHost(NodeId host) const {
  const std::size_t half = config_.k / 2;
  return HostIndex(host) / (half * half);
}

std::size_t FatTree::EdgeIndexOfHost(NodeId host) const {
  const std::size_t half = config_.k / 2;
  return (HostIndex(host) / half) % half;
}

std::vector<Path> FatTree::HostPaths(NodeId src, NodeId dst) const {
  NU_EXPECTS(src != dst);
  NU_EXPECTS(graph_.node(src).role == NodeRole::kHost);
  NU_EXPECTS(graph_.node(dst).role == NodeRole::kHost);

  const std::size_t half = config_.k / 2;
  const std::size_t src_pod = PodOfHost(src);
  const std::size_t dst_pod = PodOfHost(dst);
  const std::size_t src_edge = EdgeIndexOfHost(src);
  const std::size_t dst_edge = EdgeIndexOfHost(dst);

  std::vector<Path> paths;
  if (src_pod == dst_pod && src_edge == dst_edge) {
    // Same edge switch: single two-hop path.
    const std::array<NodeId, 3> seq{src, edges_[src_pod][src_edge], dst};
    paths.push_back(graph_.MakePath(seq));
    return paths;
  }
  if (src_pod == dst_pod) {
    // Same pod, different edge: one path per aggregation switch.
    paths.reserve(half);
    for (std::size_t a = 0; a < half; ++a) {
      const std::array<NodeId, 5> seq{src, edges_[src_pod][src_edge],
                                      aggs_[src_pod][a],
                                      edges_[dst_pod][dst_edge], dst};
      paths.push_back(graph_.MakePath(seq));
    }
    return paths;
  }
  // Inter-pod: one path per core switch, via the unique agg pair that
  // reaches that core in each pod.
  paths.reserve(half * half);
  for (std::size_t c = 0; c < half * half; ++c) {
    const std::size_t agg_index = c / half;
    const std::array<NodeId, 7> seq{src,
                                    edges_[src_pod][src_edge],
                                    aggs_[src_pod][agg_index],
                                    cores_[c],
                                    aggs_[dst_pod][agg_index],
                                    edges_[dst_pod][dst_edge],
                                    dst};
    paths.push_back(graph_.MakePath(seq));
  }
  return paths;
}

}  // namespace nu::topo
