#include "topo/path_registry.h"

namespace nu::topo {
namespace {

/// FNV-1a over the path's node and link id sequences.
std::uint64_t ContentHash(const Path& path) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint32_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint32_t>(path.nodes.size()));
  for (NodeId n : path.nodes) mix(n.value());
  for (LinkId l : path.links) mix(l.value());
  return h;
}

}  // namespace

PathRef PathRegistry::Intern(const Path& path) {
  const std::uint64_t hash = ContentHash(path);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    const std::uint32_t ref = it->second;
    const Path& existing =
        chunks_[ref >> kChunkShift].load(std::memory_order_relaxed)
            [ref & (kChunkCapacity - 1)];
    if (existing == path) return PathRef{ref};
  }
  const std::uint32_t ref = size_.load(std::memory_order_relaxed);
  const std::size_t chunk_index = ref >> kChunkShift;
  NU_CHECK(chunk_index < kMaxChunks);
  if (chunks_[chunk_index].load(std::memory_order_relaxed) == nullptr) {
    chunk_owner_[chunk_index] = std::make_unique<Path[]>(kChunkCapacity);
    chunks_[chunk_index].store(chunk_owner_[chunk_index].get(),
                               std::memory_order_release);
  }
  chunks_[chunk_index].load(std::memory_order_relaxed)
      [ref & (kChunkCapacity - 1)] = path;
  index_.emplace(hash, ref);
  // Publish AFTER the slot is fully written: readers acquire size_ (or
  // receive the ref through a later publication) and then read the slot.
  size_.store(ref + 1, std::memory_order_release);
  return PathRef{ref};
}

std::size_t PathRegistry::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count = size_.load(std::memory_order_relaxed);
  std::size_t bytes = sizeof(*this);
  for (std::size_t c = 0; c * kChunkCapacity < count; ++c) {
    bytes += kChunkCapacity * sizeof(Path);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const Path& p = chunks_[i >> kChunkShift].load(std::memory_order_relaxed)
                        [i & (kChunkCapacity - 1)];
    bytes += p.nodes.capacity() * sizeof(NodeId) +
             p.links.capacity() * sizeof(LinkId);
  }
  // Dedup index: hash-node (hash + ref + chain pointer, padded) plus one
  // bucket slot per entry.
  bytes += index_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                            2 * sizeof(void*)) +
           index_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace nu::topo
