#include "topo/leaf_spine.h"

#include <algorithm>
#include <array>
#include <string>

namespace nu::topo {

LeafSpine::LeafSpine(LeafSpineConfig config) : config_(config) {
  NU_EXPECTS(config_.leaves > 0);
  NU_EXPECTS(config_.spines > 0);
  NU_EXPECTS(config_.hosts_per_leaf > 0);
  NU_EXPECTS(config_.host_link_capacity > 0.0);
  NU_EXPECTS(config_.fabric_link_capacity > 0.0);

  spines_.reserve(config_.spines);
  for (std::size_t s = 0; s < config_.spines; ++s) {
    spines_.push_back(
        graph_.AddNode(NodeRole::kCoreSwitch, "spine-" + std::to_string(s)));
  }
  leaves_.reserve(config_.leaves);
  hosts_.reserve(config_.leaves * config_.hosts_per_leaf);
  for (std::size_t l = 0; l < config_.leaves; ++l) {
    const NodeId leaf =
        graph_.AddNode(NodeRole::kEdgeSwitch, "leaf-" + std::to_string(l));
    leaves_.push_back(leaf);
    for (std::size_t s = 0; s < config_.spines; ++s) {
      graph_.AddBidirectional(leaf, spines_[s], config_.fabric_link_capacity);
    }
    for (std::size_t h = 0; h < config_.hosts_per_leaf; ++h) {
      const NodeId host = graph_.AddNode(
          NodeRole::kHost,
          "host-" + std::to_string(l) + "-" + std::to_string(h));
      hosts_.push_back(host);
      graph_.AddBidirectional(host, leaf, config_.host_link_capacity);
    }
  }
}

NodeId LeafSpine::leaf(std::size_t index) const {
  NU_EXPECTS(index < leaves_.size());
  return leaves_[index];
}

NodeId LeafSpine::spine(std::size_t index) const {
  NU_EXPECTS(index < spines_.size());
  return spines_[index];
}

NodeId LeafSpine::host(std::size_t index) const {
  NU_EXPECTS(index < hosts_.size());
  return hosts_[index];
}

std::size_t LeafSpine::LeafOfHost(NodeId host) const {
  const auto it = std::lower_bound(hosts_.begin(), hosts_.end(), host);
  NU_EXPECTS(it != hosts_.end() && *it == host);
  return static_cast<std::size_t>(it - hosts_.begin()) /
         config_.hosts_per_leaf;
}

std::vector<Path> LeafSpine::HostPaths(NodeId src, NodeId dst) const {
  NU_EXPECTS(src != dst);
  const std::size_t src_leaf = LeafOfHost(src);
  const std::size_t dst_leaf = LeafOfHost(dst);
  std::vector<Path> paths;
  if (src_leaf == dst_leaf) {
    const std::array<NodeId, 3> seq{src, leaves_[src_leaf], dst};
    paths.push_back(graph_.MakePath(seq));
    return paths;
  }
  paths.reserve(spines_.size());
  for (NodeId spine : spines_) {
    const std::array<NodeId, 5> seq{src, leaves_[src_leaf], spine,
                                    leaves_[dst_leaf], dst};
    paths.push_back(graph_.MakePath(seq));
  }
  return paths;
}

}  // namespace nu::topo
