#include "guard/watchdog.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nu::guard {

Seconds DeadlineConfig::DeadlineFor(std::size_t flow_count) const {
  NU_EXPECTS(enabled());
  return base_deadline +
         per_flow_deadline * static_cast<double>(flow_count);
}

Seconds DeadlineConfig::BackoffAfter(std::size_t failures) const {
  NU_EXPECTS(failures >= 1);
  const double nominal =
      requeue_backoff *
      std::pow(backoff_factor, static_cast<double>(failures - 1));
  return std::min(max_backoff, nominal);
}

Watchdog::Watchdog(DeadlineConfig config) : config_(config) {
  NU_EXPECTS(config_.max_failures >= 1);
}

bool Watchdog::RecordMiss(EventId event) {
  const std::size_t misses = ++failures_[event.value()];
  return misses >= config_.max_failures;
}

std::size_t Watchdog::failures(EventId event) const {
  const auto it = failures_.find(event.value());
  return it == failures_.end() ? 0 : it->second;
}

Seconds Watchdog::RequeueDelay(EventId event) const {
  const std::size_t misses = failures(event);
  NU_EXPECTS(misses >= 1);
  return config_.BackoffAfter(misses);
}

void Watchdog::SaveState(BinWriter& w) const {
  std::vector<EventId::rep_type> events;
  events.reserve(failures_.size());
  for (const auto& [rep, _] : failures_) events.push_back(rep);
  std::sort(events.begin(), events.end());
  w.Size(events.size());
  for (EventId::rep_type rep : events) {
    w.U64(rep);
    w.U64(failures_.at(rep));
  }
}

void Watchdog::LoadState(BinReader& r) {
  failures_.clear();
  const std::size_t count = r.Size();
  failures_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const EventId::rep_type rep = r.U64();
    const std::size_t misses = r.U64();
    const auto [_, inserted] = failures_.emplace(rep, misses);
    NU_CHECK(inserted);
  }
}

}  // namespace nu::guard
