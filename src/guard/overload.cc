#include "guard/overload.h"

#include "common/arena.h"
#include "common/check.h"
#include "common/logging.h"
#include "update/cost_estimate.h"

namespace nu::guard {

const char* ToString(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kRejectNew:
      return "reject-new";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
    case OverloadPolicy::kShedCostliest:
      return "shed-costliest";
  }
  return "unknown";
}

OverloadPolicy ParseOverloadPolicy(const std::string& name) {
  if (name == "reject-new") return OverloadPolicy::kRejectNew;
  if (name == "shed-oldest") return OverloadPolicy::kShedOldest;
  if (name == "shed-costliest") return OverloadPolicy::kShedCostliest;
  NU_CHECK(false && "unknown overload policy");
  return OverloadPolicy::kRejectNew;
}

std::optional<std::size_t> ChooseShedVictim(
    const OverloadConfig& config,
    std::span<const update::UpdateEvent* const> queue,
    const update::UpdateEvent& incoming, const net::Network& network,
    const topo::PathProvider& paths) {
  NU_EXPECTS(config.enabled());
  NU_EXPECTS(queue.size() >= config.max_queue_length);

  switch (config.policy) {
    case OverloadPolicy::kRejectNew:
      return std::nullopt;
    case OverloadPolicy::kShedOldest:
      return 0;
    case OverloadPolicy::kShedCostliest: {
      // Ties go to the incoming event (prefer keeping admitted work), then
      // to the earliest queue position — deterministic for equal scores.
      // One arena serves the whole sweep (each score call resets it).
      Arena scratch;
      Mbps worst = update::QuickCostScore(network, paths, incoming, scratch);
      std::optional<std::size_t> victim;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const Mbps score =
            update::QuickCostScore(network, paths, *queue[i], scratch);
        if (score > worst) {
          worst = score;
          victim = i;
        }
      }
      NU_LOG(kDebug) << "overload: shed-costliest victim score " << worst;
      return victim;
    }
  }
  return std::nullopt;
}

std::vector<LinkId> LinkStressMonitor::Observe(const net::Network& network,
                                               Seconds now) {
  const std::size_t links = network.graph().link_count();
  if (overload_since_.size() < links) {
    overload_since_.resize(links, -1.0);
    tripped_.resize(links, 0);
  }
  std::vector<LinkId> crossed;
  for (std::size_t i = 0; i < links; ++i) {
    const LinkId link{static_cast<LinkId::rep_type>(i)};
    if (!network.LinkUp(link)) {
      overload_since_[i] = -1.0;
      continue;
    }
    if (network.Utilization(link) >= options_.utilization_threshold) {
      if (overload_since_[i] < 0.0) overload_since_[i] = now;
      if (!tripped_[i] && now - overload_since_[i] >= options_.hold_time) {
        tripped_[i] = 1;
        crossed.push_back(link);
      }
    } else {
      overload_since_[i] = -1.0;
      tripped_[i] = 0;  // episode over: a future episode may trip again
    }
  }
  return crossed;
}

void LinkStressMonitor::Reset() {
  overload_since_.clear();
  tripped_.clear();
}

void LinkStressMonitor::SaveState(BinWriter& w) const {
  w.Vec(overload_since_, [](BinWriter& out, Seconds s) { out.F64(s); });
  w.Vec(tripped_, [](BinWriter& out, char t) { out.U8(t != 0 ? 1 : 0); });
}

void LinkStressMonitor::LoadState(BinReader& r) {
  overload_since_ =
      r.Vec<Seconds>([](BinReader& in) { return in.F64(); });
  tripped_ = r.Vec<char>(
      [](BinReader& in) { return static_cast<char>(in.U8() != 0 ? 1 : 0); });
}

}  // namespace nu::guard
