#include "guard/overload.h"

#include "common/check.h"
#include "common/logging.h"
#include "update/cost_estimate.h"

namespace nu::guard {

const char* ToString(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kRejectNew:
      return "reject-new";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
    case OverloadPolicy::kShedCostliest:
      return "shed-costliest";
  }
  return "unknown";
}

OverloadPolicy ParseOverloadPolicy(const std::string& name) {
  if (name == "reject-new") return OverloadPolicy::kRejectNew;
  if (name == "shed-oldest") return OverloadPolicy::kShedOldest;
  if (name == "shed-costliest") return OverloadPolicy::kShedCostliest;
  NU_CHECK(false && "unknown overload policy");
  return OverloadPolicy::kRejectNew;
}

std::optional<std::size_t> ChooseShedVictim(
    const OverloadConfig& config,
    std::span<const update::UpdateEvent* const> queue,
    const update::UpdateEvent& incoming, const net::Network& network,
    const topo::PathProvider& paths) {
  NU_EXPECTS(config.enabled());
  NU_EXPECTS(queue.size() >= config.max_queue_length);

  switch (config.policy) {
    case OverloadPolicy::kRejectNew:
      return std::nullopt;
    case OverloadPolicy::kShedOldest:
      return 0;
    case OverloadPolicy::kShedCostliest: {
      // Ties go to the incoming event (prefer keeping admitted work), then
      // to the earliest queue position — deterministic for equal scores.
      Mbps worst = update::QuickCostScore(network, paths, incoming);
      std::optional<std::size_t> victim;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const Mbps score = update::QuickCostScore(network, paths, *queue[i]);
        if (score > worst) {
          worst = score;
          victim = i;
        }
      }
      NU_LOG(kDebug) << "overload: shed-costliest victim score " << worst;
      return victim;
    }
  }
  return std::nullopt;
}

}  // namespace nu::guard
