// Deadlines, the stuck-event watchdog, and the poison quarantine.
//
// An executing update event can stall indefinitely: its deferred flows may
// wait on capacity that faults keep revoking, or its install batches may
// thrash through retry after retry. PR 1 bounded each *install attempt*;
// this module bounds the *event*: every execution gets a soft deadline
// (base + per-flow budget), and a watchdog aborts executions that overrun
// it — their placements are rolled back and the event is requeued after an
// escalating backoff, giving the network time to heal. Events that miss
// `max_failures` deadlines are poison: instead of livelocking the round
// loop forever they are moved to a quarantine (terminal state
// metrics::TerminalStatus::kQuarantined) and the run continues without
// them. Every transition is counted in metrics::GuardStats.
#pragma once

#include <unordered_map>

#include "common/binio.h"
#include "common/types.h"

namespace nu::guard {

struct DeadlineConfig {
  /// Soft deadline budget per execution attempt: base + per_flow * w(U),
  /// measured from the attempt's execution start. 0 disables the watchdog.
  Seconds base_deadline = 0.0;
  Seconds per_flow_deadline = 0.0;
  /// Deadline misses before the event is quarantined. >= 1.
  std::size_t max_failures = 3;
  /// Requeue backoff after the first miss; escalates by backoff_factor per
  /// further miss, capped at max_backoff (mirrors RetryPolicy's envelope).
  Seconds requeue_backoff = 0.5;
  double backoff_factor = 2.0;
  Seconds max_backoff = 30.0;

  [[nodiscard]] bool enabled() const { return base_deadline > 0.0; }

  /// Deadline budget for an event with `flow_count` flows.
  [[nodiscard]] Seconds DeadlineFor(std::size_t flow_count) const;

  /// Un-jittered requeue delay after the `failures`-th consecutive miss
  /// (1-based): min(max_backoff, requeue_backoff * factor^(failures-1)).
  [[nodiscard]] Seconds BackoffAfter(std::size_t failures) const;
};

/// Per-event deadline-miss bookkeeping. The simulator owns one per run;
/// the watchdog decides *whether* an event is poison, the simulator decides
/// *what* rollback and requeueing mean.
class Watchdog {
 public:
  explicit Watchdog(DeadlineConfig config);

  /// Records a deadline miss for `event`. True when the event has now
  /// exhausted its failure budget and must be quarantined.
  bool RecordMiss(EventId event);

  /// Misses recorded so far for `event`.
  [[nodiscard]] std::size_t failures(EventId event) const;

  /// Escalating requeue delay given the event's current miss count
  /// (requires at least one recorded miss).
  [[nodiscard]] Seconds RequeueDelay(EventId event) const;

  [[nodiscard]] const DeadlineConfig& config() const { return config_; }

  /// Serializes the per-event miss counts (ascending event id) for
  /// checkpointing. The config is not persisted — it is reconstructed from
  /// the run configuration on restore.
  void SaveState(BinWriter& w) const;

  /// Restores miss counts serialized by SaveState.
  void LoadState(BinReader& r);

 private:
  DeadlineConfig config_;
  std::unordered_map<EventId::rep_type, std::size_t> failures_;
};

}  // namespace nu::guard
