// Runtime invariant auditor. Transient-consistency bugs are exactly the
// kind that survive unit tests and surface only mid-run ("Transiently
// Consistent SDN Updates: Being Greedy is Hard"), so the guard re-derives
// the system's invariants from first principles at runtime instead of
// trusting them by construction. An audit pass recomputes, independently of
// the network's own incremental bookkeeping:
//
//   * capacity conservation — per link, the sum of placed-flow demands must
//     match capacity - residual, never exceed capacity, and never drive the
//     residual negative (unless the run deliberately force-placed flows to
//     break a reported deadlock);
//   * flow/rule coherence — every placed flow must hold a structurally
//     valid path: contiguous src -> dst walk over existing links, loop-free,
//     endpoints matching the flow descriptor, and fully alive (no blackhole
//     through a down link or switch);
//   * queue/quarantine accounting — every event the run has admitted is in
//     exactly one place: queued, active, parked for requeue, completed,
//     shed, or quarantined; a bounded queue never exceeds its bound.
//
// Two failure modes: kFailFast throws AuditFailure at the first violation
// (tests, canary runs); kLogAndCount records every violation and keeps the
// run alive (production telemetry — counters land in metrics::GuardStats).
#pragma once

#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "net/network.h"

namespace nu::guard {

enum class AuditMode : std::uint8_t {
  kLogAndCount,
  kFailFast,
};

[[nodiscard]] const char* ToString(AuditMode mode);

struct AuditorConfig {
  bool enabled = false;
  AuditMode mode = AuditMode::kLogAndCount;
  /// Run a pass every `cadence`-th simulator occurrence. Fault occurrences
  /// always trigger a pass regardless of cadence (faults are when state
  /// corruption happens, if it happens). >= 1.
  std::size_t cadence = 64;
};

/// Where in the run an audit pass happened. Chaos-campaign logs are only
/// actionable when a violation pins down WHEN it was observed, so passes
/// carry the scheduling round and the network's topology epoch, and both
/// land in every violation record.
struct AuditContext {
  /// 1-based scheduling round in progress (0 = outside any round).
  std::size_t round = 0;
  /// net::Network::topology_epoch() at audit time — identifies which
  /// fault-induced topology the violated state was observed under.
  std::uint64_t topology_epoch = 0;
};

struct AuditViolation {
  /// Which invariant family fired:
  /// "capacity" | "coherence" | "accounting" | "drift".
  std::string invariant;
  std::string detail;
  /// Scheduling round and topology epoch of the audit pass that found it.
  std::size_t round = 0;
  std::uint64_t topology_epoch = 0;
};

/// Thrown by fail-fast audits at the first violation.
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(AuditViolation violation);

  [[nodiscard]] const AuditViolation& violation() const { return violation_; }

 private:
  AuditViolation violation_;
};

/// The simulator-side event accounting an audit pass cross-checks. Every
/// admitted event must be in exactly one bucket.
struct QueueAccounting {
  /// Every event the run has seen so far (shed arrivals included — shedding
  /// is one of the conservation buckets below, never a silent drop).
  std::size_t arrived = 0;
  std::size_t queued = 0;
  std::size_t active = 0;
  /// Aborted by the watchdog, waiting out their requeue backoff.
  std::size_t parked = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t quarantined = 0;
  /// Queue bound; 0 = unbounded.
  std::size_t queue_capacity = 0;
};

/// Dataplane-drift state an audit pass cross-checks (recon subsystem,
/// docs/model.md §16). Bounded-drift invariant: no switch may sit
/// continuously at drift for more than `max_passes` reconcile passes
/// without being quarantined — a reconciler that spins without converging
/// or escalating is a liveness bug, and this is where it surfaces.
struct DriftAuditInput {
  struct Entry {
    NodeId node;
    /// Consecutive reconcile passes that observed the switch at drift.
    std::size_t passes = 0;
  };
  /// Current streaks, ascending by switch id; quarantined switches are
  /// excluded (their drift is excused).
  std::vector<Entry> entries;
  /// Bound; 0 disables the invariant.
  std::size_t max_passes = 0;
};

/// Fan-out wiring for shard-parallel audit passes (sharded engine,
/// docs/model.md §15). Workers only RECOMPUTE — partial per-link loads over
/// disjoint placement-slot ranges, per-flow structural findings over
/// disjoint slot ranges — and the coordinator merges partials and reports
/// findings in the serial pass's canonical order (ascending link id, then
/// ascending flow id). Violation text, order, counters, and the fail-fast
/// first violation are therefore identical to a sequential audit; only
/// wall-clock differs. Per-link load sums are reassociated across slice
/// boundaries, which can differ from the serial sum by a few ulps — far
/// below the 1e-6 comparison epsilon every capacity check uses.
struct ShardAuditRuntime {
  /// Worker pool; null disables the fan-out (serial audit).
  ThreadPool* pool = nullptr;
  /// Slice count (the engine's shard count); >= 2 to fan out.
  std::size_t shards = 1;
  /// Invoked once per parallel region with per-shard task busy seconds and
  /// the region's coordinator wall seconds (modeled-speedup accounting).
  std::function<void(std::span<const double>, double)> on_fanout;

  [[nodiscard]] bool Active() const {
    return pool != nullptr && shards >= 2;
  }
};

class Auditor {
 public:
  explicit Auditor(AuditorConfig config = {});

  /// One full audit pass. Returns the number of violations found by this
  /// pass (also appended to violations()). In fail-fast mode the first
  /// violation throws AuditFailure instead. `forced_placements` > 0 relaxes
  /// the capacity and liveness checks — the simulator reports force-placed
  /// flows separately, and they intentionally overcommit links. `context`
  /// (round id, topology epoch) is stamped onto every violation this pass
  /// records. A non-null `shard` with an active pool fans the recompute out
  /// across shard slices; results are identical to the serial pass. A
  /// non-null `drift` additionally checks the bounded-drift invariant.
  std::size_t Audit(const net::Network& network,
                    const QueueAccounting& accounting,
                    std::size_t forced_placements = 0,
                    const AuditContext& context = {},
                    const ShardAuditRuntime* shard = nullptr,
                    const DriftAuditInput* drift = nullptr);

  [[nodiscard]] const AuditorConfig& config() const { return config_; }
  [[nodiscard]] std::size_t audits_run() const { return audits_run_; }
  [[nodiscard]] const std::vector<AuditViolation>& violations() const {
    return violations_;
  }

 private:
  /// Records (or throws, in fail-fast mode) one violation.
  void Report(std::string invariant, std::string detail,
              std::size_t& found_this_pass);

  void AuditCapacity(const net::Network& network, bool allow_overcommit,
                     std::size_t& found);
  void AuditCoherence(const net::Network& network, bool allow_dead_paths,
                      std::size_t& found);
  /// Shard-parallel twins: same checks, same canonical report order.
  void AuditCapacitySharded(const net::Network& network, bool allow_overcommit,
                            std::size_t& found,
                            const ShardAuditRuntime& shard);
  void AuditCoherenceSharded(const net::Network& network, bool allow_dead_paths,
                             std::size_t& found,
                             const ShardAuditRuntime& shard);
  void AuditAccounting(const QueueAccounting& accounting, std::size_t& found);
  void AuditDrift(const DriftAuditInput& drift, std::size_t& found);

  AuditorConfig config_;
  std::size_t audits_run_ = 0;
  /// Reused flag buffer of the serial capacity pre-scan (link indices that
  /// tripped an invariant; usually empty).
  std::vector<std::uint32_t> flagged_;
  /// Context of the pass currently running (stamped onto its violations).
  AuditContext context_;
  std::vector<AuditViolation> violations_;
};

}  // namespace nu::guard
