// Per-tenant admission budgets for the online-serving layer.
//
// The overload guard (overload.h) protects the QUEUE — it bounds total
// depth regardless of who is filling it. Under multi-tenant serving that is
// not enough: one tenant blasting events at 10x its share starves everyone
// behind the shared queue bound. Token buckets give each tenant an
// admission RATE: a tenant's bucket refills continuously in virtual time at
// `rate` events/sec up to a `burst` cap, and each admission spends one
// token. A tenant that stays under its rate is never throttled; a tenant
// exceeding it is rejected at admission (observable, counted per tenant)
// while other tenants' buckets are untouched.
//
// Everything is virtual-time driven and drawn from no Rng, so budgets are
// bit-deterministic and their state snapshots with the run.
#pragma once

#include <cstddef>
#include <vector>

#include "common/binio.h"
#include "common/types.h"

namespace nu::guard {

struct TenantBudgetConfig {
  /// Master switch; disabled budgets admit everything and keep no state.
  bool enabled = false;
  /// Baseline refill rate (events/sec of virtual time) for a weight-1.0
  /// tenant; tenant i refills at default_rate * weight_i.
  double default_rate = 1.0;
  /// Bucket capacity (burst tolerance) for a weight-1.0 tenant, in events.
  double default_burst = 4.0;
};

/// One tenant's token bucket. Refill is computed lazily on access from the
/// elapsed virtual time, so no per-tick work is needed.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}

  /// Spends one token at virtual time `now` if available. False = reject.
  bool TryTake(Seconds now);

  /// Tokens available at `now` (after lazy refill; does not spend).
  [[nodiscard]] double TokensAt(Seconds now) const;

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }

  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

 private:
  void Refill(Seconds now);

  double rate_ = 1.0;
  double burst_ = 4.0;
  double tokens_ = 4.0;
  Seconds last_refill_ = 0.0;
};

/// The per-tenant bucket array (index = TenantId value). Deterministic:
/// admission outcomes depend only on (config, weights, call sequence).
class TenantBudgets {
 public:
  TenantBudgets() = default;

  /// Declares the tenant roster; tenant i's bucket refills at
  /// config.default_rate * weights[i] and holds config.default_burst *
  /// max(weights[i], 1.0) tokens (heavier tenants get both more rate and
  /// more burst headroom).
  TenantBudgets(const TenantBudgetConfig& config,
                const std::vector<double>& weights);

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] std::size_t tenant_count() const { return buckets_.size(); }

  /// Admission check for one event of `tenant` at `now`. Always true when
  /// budgets are disabled or the tenant is untagged/out of roster.
  bool Admit(TenantId tenant, Seconds now);

  [[nodiscard]] const TokenBucket& bucket(TenantId tenant) const;

  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

 private:
  TenantBudgetConfig config_;
  std::vector<TokenBucket> buckets_;
};

}  // namespace nu::guard
