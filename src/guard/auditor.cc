#include "guard/auditor.h"

#include <chrono>
#include <cmath>
#include <future>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "common/logging.h"
#include "net/residual_scan.h"

namespace nu::guard {
namespace {

/// Residual/occupancy comparisons tolerate accumulated floating-point noise
/// from incremental Occupy/Release updates (same spirit as the network's
/// own CheckInvariants).
constexpr double kBandwidthEpsilon = 1e-6;

/// One violation detected by a recompute (worker side of the sharded audit,
/// or the serial scan): text only, no side effects. Reporting — logging,
/// counting, fail-fast throwing — happens exclusively on the coordinator in
/// canonical order, so serial and sharded passes are indistinguishable.
struct Finding {
  const char* invariant;
  std::string detail;
};

using AuditClock = std::chrono::steady_clock;

double SecondsSince(AuditClock::time_point start) {
  return std::chrono::duration<double>(AuditClock::now() - start).count();
}

/// Capacity checks for one link given its independently recomputed load.
/// Emission order (residual disagreement, overcommit, negative residual) is
/// part of the canonical violation order.
void CollectCapacityFindings(const topo::Graph& graph,
                             const net::Network& network, Mbps load,
                             std::size_t link_index, bool allow_overcommit,
                             std::vector<Finding>& out) {
  const LinkId link{static_cast<LinkId::rep_type>(link_index)};
  const Mbps capacity = graph.link(link).capacity;
  const Mbps residual = network.Residual(link);
  if (std::abs((capacity - load) - residual) > kBandwidthEpsilon) {
    std::ostringstream os;
    os << "link " << link_index << ": residual " << residual
       << " disagrees with recomputed " << (capacity - load) << " (capacity "
       << capacity << ", load " << load << ")";
    out.push_back(Finding{"capacity", os.str()});
  }
  if (!allow_overcommit && load > capacity + kBandwidthEpsilon) {
    std::ostringstream os;
    os << "link " << link_index << ": reserved " << load
       << " exceeds capacity " << capacity;
    out.push_back(Finding{"capacity", os.str()});
  }
  if (!allow_overcommit && residual < -kBandwidthEpsilon) {
    std::ostringstream os;
    os << "link " << link_index << ": negative residual " << residual;
    out.push_back(Finding{"capacity", os.str()});
  }
}

/// Structural coherence checks for one placed flow.
void CollectCoherenceFindings(const topo::Graph& graph,
                              const net::Network& network, FlowId fid,
                              const flow::Flow& flow, const topo::Path& path,
                              bool allow_dead_paths,
                              std::vector<Finding>& out) {
  if (path.nodes.empty() || path.links.size() + 1 != path.nodes.size()) {
    std::ostringstream os;
    os << "flow " << fid.value() << ": malformed path shape ("
       << path.nodes.size() << " nodes, " << path.links.size() << " links)";
    out.push_back(Finding{"coherence", os.str()});
    return;  // the structural checks below assume a sane shape
  }
  if (path.source() != flow.src || path.destination() != flow.dst) {
    std::ostringstream os;
    os << "flow " << fid.value() << ": path endpoints ("
       << path.source().value() << " -> " << path.destination().value()
       << ") do not match flow (" << flow.src.value() << " -> "
       << flow.dst.value() << ")";
    out.push_back(Finding{"coherence", os.str()});
  }
  bool contiguous = true;
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    const topo::Link& link = graph.link(path.links[i]);
    if (link.src != path.nodes[i] || link.dst != path.nodes[i + 1]) {
      contiguous = false;
      break;
    }
  }
  if (!contiguous) {
    std::ostringstream os;
    os << "flow " << fid.value()
       << ": path links do not connect its node sequence (blackhole)";
    out.push_back(Finding{"coherence", os.str()});
  }
  std::unordered_set<NodeId::rep_type> seen;
  bool loop_free = true;
  for (NodeId node : path.nodes) {
    if (!seen.insert(node.value()).second) {
      loop_free = false;
      break;
    }
  }
  if (!loop_free) {
    std::ostringstream os;
    os << "flow " << fid.value() << ": forwarding loop (repeated node)";
    out.push_back(Finding{"coherence", os.str()});
  }
  if (!allow_dead_paths && !network.PathAlive(path)) {
    std::ostringstream os;
    os << "flow " << fid.value()
       << ": path crosses a down link or switch (blackhole)";
    out.push_back(Finding{"coherence", os.str()});
  }
}

/// Slice [begin, end) of `total` split into `slices` near-equal contiguous
/// ranges.
std::pair<std::size_t, std::size_t> SliceRange(std::size_t total,
                                               std::size_t slices,
                                               std::size_t index) {
  const std::size_t base = total / slices;
  const std::size_t extra = total % slices;
  const std::size_t begin = index * base + std::min(index, extra);
  return {begin, begin + base + (index < extra ? 1 : 0)};
}

}  // namespace

const char* ToString(AuditMode mode) {
  switch (mode) {
    case AuditMode::kLogAndCount:
      return "log-and-count";
    case AuditMode::kFailFast:
      return "fail-fast";
  }
  return "unknown";
}

AuditFailure::AuditFailure(AuditViolation violation)
    : std::runtime_error("audit violation [" + violation.invariant +
                         "]: " + violation.detail),
      violation_(std::move(violation)) {}

Auditor::Auditor(AuditorConfig config) : config_(config) {
  NU_EXPECTS(config_.cadence >= 1);
}

void Auditor::Report(std::string invariant, std::string detail,
                     std::size_t& found_this_pass) {
  ++found_this_pass;
  AuditViolation violation{std::move(invariant), std::move(detail),
                           context_.round, context_.topology_epoch};
  NU_LOG(kError) << "audit violation [" << violation.invariant << "] round "
                 << violation.round << " epoch " << violation.topology_epoch
                 << ": " << violation.detail;
  if (config_.mode == AuditMode::kFailFast) {
    throw AuditFailure(std::move(violation));
  }
  violations_.push_back(std::move(violation));
}

void Auditor::AuditCapacity(const net::Network& network, bool allow_overcommit,
                            std::size_t& found) {
  const topo::Graph& graph = network.graph();
  // Independent recompute: per-link load from the placements themselves,
  // never from the network's incremental residuals.
  std::vector<Mbps> load(graph.link_count(), 0.0);
  network.ForEachPlacement(
      [&load](FlowId, const flow::Flow& flow, const topo::Path& path) {
        for (LinkId link : path.links) {
          load[link.value()] += flow.demand;
        }
      });
  // Vectorized pre-scan over the flat SoA rows flags the (rare) violating
  // links; the string-building finding collector then runs only on those.
  // The scan's predicate is the exact union of the collector's three
  // checks and flags ascend, so findings and their canonical order are
  // identical to the historical every-link collector loop.
  flagged_.clear();
  net::ScanCapacityViolations(network.ResidualArray().data(), load.data(),
                              network.CapacityArray().data(),
                              graph.link_count(), allow_overcommit,
                              kBandwidthEpsilon, 0, flagged_);
  std::vector<Finding> findings;
  for (const std::uint32_t i : flagged_) {
    CollectCapacityFindings(graph, network, load[i], i, allow_overcommit,
                            findings);
  }
  for (Finding& f : findings) Report(f.invariant, std::move(f.detail), found);
}

void Auditor::AuditCapacitySharded(const net::Network& network,
                                   bool allow_overcommit, std::size_t& found,
                                   const ShardAuditRuntime& shard) {
  const topo::Graph& graph = network.graph();
  const std::size_t shards = shard.shards;

  // Phase A — per-link load recompute, fanned out over disjoint
  // placement-slot ranges. Each worker fills a private partial vector; the
  // coordinator reduces partials in slice order, so the result is
  // independent of thread count and scheduling. (The reduction reassociates
  // the serial pass's per-link sum — a few-ulp difference at most, well
  // under kBandwidthEpsilon.)
  const std::size_t slots = network.placement_slot_count();
  std::vector<std::vector<Mbps>> partial(shards);
  std::vector<double> busy(shards, 0.0);
  {
    const auto wall_start = AuditClock::now();
    std::vector<std::future<void>> tasks;
    tasks.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      tasks.push_back(shard.pool->Submit([&, s] {
        const auto start = AuditClock::now();
        const auto [begin, end] = SliceRange(slots, shards, s);
        std::vector<Mbps>& mine = partial[s];
        mine.assign(graph.link_count(), 0.0);
        network.ForEachPlacementInRange(
            begin, end,
            [&mine](FlowId, const flow::Flow& flow, const topo::Path& path) {
              for (LinkId link : path.links) {
                mine[link.value()] += flow.demand;
              }
            });
        busy[s] = SecondsSince(start);
      }));
    }
    for (auto& t : tasks) t.get();
    if (shard.on_fanout) shard.on_fanout(busy, SecondsSince(wall_start));
  }
  std::vector<Mbps> load(graph.link_count(), 0.0);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t l = 0; l < load.size(); ++l) load[l] += partial[s][l];
  }

  // Phase B — link checks, fanned out over disjoint link ranges. Workers
  // collect findings in scan order; concatenating the slices in ascending
  // order reproduces the serial pass's canonical (ascending link id)
  // violation order exactly.
  std::vector<std::vector<Finding>> slice_findings(shards);
  {
    const auto wall_start = AuditClock::now();
    std::fill(busy.begin(), busy.end(), 0.0);
    std::vector<std::future<void>> tasks;
    tasks.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      tasks.push_back(shard.pool->Submit([&, s] {
        const auto start = AuditClock::now();
        const auto [begin, end] = SliceRange(graph.link_count(), shards, s);
        // Same flag-then-collect split as the serial pass, over this
        // slice's subrange of the SoA rows (index_base shifts the flags
        // back to absolute link indices).
        std::vector<std::uint32_t> flagged;
        net::ScanCapacityViolations(
            network.ResidualArray().data() + begin, load.data() + begin,
            network.CapacityArray().data() + begin, end - begin,
            allow_overcommit, kBandwidthEpsilon,
            static_cast<std::uint32_t>(begin), flagged);
        for (const std::uint32_t i : flagged) {
          CollectCapacityFindings(graph, network, load[i], i, allow_overcommit,
                                  slice_findings[s]);
        }
        busy[s] = SecondsSince(start);
      }));
    }
    for (auto& t : tasks) t.get();
    if (shard.on_fanout) shard.on_fanout(busy, SecondsSince(wall_start));
  }
  for (std::vector<Finding>& slice : slice_findings) {
    for (Finding& f : slice) Report(f.invariant, std::move(f.detail), found);
  }
}

void Auditor::AuditCoherence(const net::Network& network,
                             bool allow_dead_paths, std::size_t& found) {
  const topo::Graph& graph = network.graph();
  std::vector<Finding> findings;
  network.ForEachPlacement([&](FlowId fid, const flow::Flow& flow,
                               const topo::Path& path) {
    CollectCoherenceFindings(graph, network, fid, flow, path, allow_dead_paths,
                             findings);
  });
  for (Finding& f : findings) Report(f.invariant, std::move(f.detail), found);
}

void Auditor::AuditCoherenceSharded(const net::Network& network,
                                    bool allow_dead_paths, std::size_t& found,
                                    const ShardAuditRuntime& shard) {
  const topo::Graph& graph = network.graph();
  const std::size_t shards = shard.shards;
  const std::size_t slots = network.placement_slot_count();
  std::vector<std::vector<Finding>> slice_findings(shards);
  std::vector<double> busy(shards, 0.0);
  const auto wall_start = AuditClock::now();
  std::vector<std::future<void>> tasks;
  tasks.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    tasks.push_back(shard.pool->Submit([&, s] {
      const auto start = AuditClock::now();
      const auto [begin, end] = SliceRange(slots, shards, s);
      network.ForEachPlacementInRange(
          begin, end,
          [&](FlowId fid, const flow::Flow& flow, const topo::Path& path) {
            CollectCoherenceFindings(graph, network, fid, flow, path,
                                     allow_dead_paths, slice_findings[s]);
          });
      busy[s] = SecondsSince(start);
    }));
  }
  for (auto& t : tasks) t.get();
  if (shard.on_fanout) shard.on_fanout(busy, SecondsSince(wall_start));
  // Ranges ascend over flow ids, so slice order IS the serial scan order.
  for (std::vector<Finding>& slice : slice_findings) {
    for (Finding& f : slice) Report(f.invariant, std::move(f.detail), found);
  }
}

void Auditor::AuditAccounting(const QueueAccounting& accounting,
                              std::size_t& found) {
  const std::size_t placed = accounting.queued + accounting.active +
                             accounting.parked + accounting.completed +
                             accounting.shed + accounting.quarantined;
  if (placed != accounting.arrived) {
    std::ostringstream os;
    os << "event conservation: arrived " << accounting.arrived
       << " != queued " << accounting.queued << " + active "
       << accounting.active << " + parked " << accounting.parked
       << " + completed " << accounting.completed << " + shed "
       << accounting.shed << " + quarantined " << accounting.quarantined;
    Report("accounting", os.str(), found);
  }
  if (accounting.queue_capacity > 0 &&
      accounting.queued > accounting.queue_capacity) {
    std::ostringstream os;
    os << "bounded queue holds " << accounting.queued << " > capacity "
       << accounting.queue_capacity;
    Report("accounting", os.str(), found);
  }
}

std::size_t Auditor::Audit(const net::Network& network,
                           const QueueAccounting& accounting,
                           std::size_t forced_placements,
                           const AuditContext& context,
                           const ShardAuditRuntime* shard,
                           const DriftAuditInput* drift) {
  ++audits_run_;
  context_ = context;
  std::size_t found = 0;
  const bool relaxed = forced_placements > 0;
  if (shard != nullptr && shard->Active()) {
    AuditCapacitySharded(network, /*allow_overcommit=*/relaxed, found, *shard);
    AuditCoherenceSharded(network, /*allow_dead_paths=*/relaxed, found,
                          *shard);
  } else {
    AuditCapacity(network, /*allow_overcommit=*/relaxed, found);
    AuditCoherence(network, /*allow_dead_paths=*/relaxed, found);
  }
  AuditAccounting(accounting, found);
  if (drift != nullptr) AuditDrift(*drift, found);
  return found;
}

void Auditor::AuditDrift(const DriftAuditInput& drift, std::size_t& found) {
  if (drift.max_passes == 0) return;
  for (const DriftAuditInput::Entry& entry : drift.entries) {
    if (entry.passes <= drift.max_passes) continue;
    std::ostringstream os;
    os << "switch " << entry.node.value() << " at drift for " << entry.passes
       << " consecutive reconcile passes (bound " << drift.max_passes
       << ") without quarantine";
    Report("drift", os.str(), found);
  }
}

}  // namespace nu::guard
