#include "guard/auditor.h"

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "common/logging.h"

namespace nu::guard {
namespace {

/// Residual/occupancy comparisons tolerate accumulated floating-point noise
/// from incremental Occupy/Release updates (same spirit as the network's
/// own CheckInvariants).
constexpr double kBandwidthEpsilon = 1e-6;

}  // namespace

const char* ToString(AuditMode mode) {
  switch (mode) {
    case AuditMode::kLogAndCount:
      return "log-and-count";
    case AuditMode::kFailFast:
      return "fail-fast";
  }
  return "unknown";
}

AuditFailure::AuditFailure(AuditViolation violation)
    : std::runtime_error("audit violation [" + violation.invariant +
                         "]: " + violation.detail),
      violation_(std::move(violation)) {}

Auditor::Auditor(AuditorConfig config) : config_(config) {
  NU_EXPECTS(config_.cadence >= 1);
}

void Auditor::Report(std::string invariant, std::string detail,
                     std::size_t& found_this_pass) {
  ++found_this_pass;
  AuditViolation violation{std::move(invariant), std::move(detail),
                           context_.round, context_.topology_epoch};
  NU_LOG(kError) << "audit violation [" << violation.invariant << "] round "
                 << violation.round << " epoch " << violation.topology_epoch
                 << ": " << violation.detail;
  if (config_.mode == AuditMode::kFailFast) {
    throw AuditFailure(std::move(violation));
  }
  violations_.push_back(std::move(violation));
}

void Auditor::AuditCapacity(const net::Network& network, bool allow_overcommit,
                            std::size_t& found) {
  const topo::Graph& graph = network.graph();
  // Independent recompute: per-link load from the placements themselves,
  // never from the network's incremental residuals.
  std::vector<Mbps> load(graph.link_count(), 0.0);
  network.ForEachPlacement(
      [&load](FlowId, const flow::Flow& flow, const topo::Path& path) {
        for (LinkId link : path.links) {
          load[link.value()] += flow.demand;
        }
      });
  for (std::size_t i = 0; i < graph.link_count(); ++i) {
    const LinkId link{static_cast<LinkId::rep_type>(i)};
    const Mbps capacity = graph.link(link).capacity;
    const Mbps residual = network.Residual(link);
    if (std::abs((capacity - load[i]) - residual) > kBandwidthEpsilon) {
      std::ostringstream os;
      os << "link " << i << ": residual " << residual
         << " disagrees with recomputed " << (capacity - load[i])
         << " (capacity " << capacity << ", load " << load[i] << ")";
      Report("capacity", os.str(), found);
    }
    if (!allow_overcommit && load[i] > capacity + kBandwidthEpsilon) {
      std::ostringstream os;
      os << "link " << i << ": reserved " << load[i] << " exceeds capacity "
         << capacity;
      Report("capacity", os.str(), found);
    }
    if (!allow_overcommit && residual < -kBandwidthEpsilon) {
      std::ostringstream os;
      os << "link " << i << ": negative residual " << residual;
      Report("capacity", os.str(), found);
    }
  }
}

void Auditor::AuditCoherence(const net::Network& network,
                             bool allow_dead_paths, std::size_t& found) {
  const topo::Graph& graph = network.graph();
  network.ForEachPlacement([&](FlowId fid, const flow::Flow& flow,
                               const topo::Path& path) {
    if (path.nodes.empty() || path.links.size() + 1 != path.nodes.size()) {
      std::ostringstream os;
      os << "flow " << fid.value() << ": malformed path shape ("
         << path.nodes.size() << " nodes, " << path.links.size() << " links)";
      Report("coherence", os.str(), found);
      return;  // the structural checks below assume a sane shape
    }
    if (path.source() != flow.src || path.destination() != flow.dst) {
      std::ostringstream os;
      os << "flow " << fid.value() << ": path endpoints ("
         << path.source().value() << " -> " << path.destination().value()
         << ") do not match flow (" << flow.src.value() << " -> "
         << flow.dst.value() << ")";
      Report("coherence", os.str(), found);
    }
    bool contiguous = true;
    for (std::size_t i = 0; i < path.links.size(); ++i) {
      const topo::Link& link = graph.link(path.links[i]);
      if (link.src != path.nodes[i] || link.dst != path.nodes[i + 1]) {
        contiguous = false;
        break;
      }
    }
    if (!contiguous) {
      std::ostringstream os;
      os << "flow " << fid.value()
         << ": path links do not connect its node sequence (blackhole)";
      Report("coherence", os.str(), found);
    }
    std::unordered_set<NodeId::rep_type> seen;
    bool loop_free = true;
    for (NodeId node : path.nodes) {
      if (!seen.insert(node.value()).second) {
        loop_free = false;
        break;
      }
    }
    if (!loop_free) {
      std::ostringstream os;
      os << "flow " << fid.value() << ": forwarding loop (repeated node)";
      Report("coherence", os.str(), found);
    }
    if (!allow_dead_paths && !network.PathAlive(path)) {
      std::ostringstream os;
      os << "flow " << fid.value()
         << ": path crosses a down link or switch (blackhole)";
      Report("coherence", os.str(), found);
    }
  });
}

void Auditor::AuditAccounting(const QueueAccounting& accounting,
                              std::size_t& found) {
  const std::size_t placed = accounting.queued + accounting.active +
                             accounting.parked + accounting.completed +
                             accounting.shed + accounting.quarantined;
  if (placed != accounting.arrived) {
    std::ostringstream os;
    os << "event conservation: arrived " << accounting.arrived
       << " != queued " << accounting.queued << " + active "
       << accounting.active << " + parked " << accounting.parked
       << " + completed " << accounting.completed << " + shed "
       << accounting.shed << " + quarantined " << accounting.quarantined;
    Report("accounting", os.str(), found);
  }
  if (accounting.queue_capacity > 0 &&
      accounting.queued > accounting.queue_capacity) {
    std::ostringstream os;
    os << "bounded queue holds " << accounting.queued << " > capacity "
       << accounting.queue_capacity;
    Report("accounting", os.str(), found);
  }
}

std::size_t Auditor::Audit(const net::Network& network,
                           const QueueAccounting& accounting,
                           std::size_t forced_placements,
                           const AuditContext& context) {
  ++audits_run_;
  context_ = context;
  std::size_t found = 0;
  const bool relaxed = forced_placements > 0;
  AuditCapacity(network, /*allow_overcommit=*/relaxed, found);
  AuditCoherence(network, /*allow_dead_paths=*/relaxed, found);
  AuditAccounting(accounting, found);
  return found;
}

}  // namespace nu::guard
