// Umbrella configuration for the guard subsystem: overload control on the
// update queue, the deadline watchdog + poison quarantine, and the runtime
// invariant auditor. Disabled (the default) costs nothing on the simulator
// hot path and leaves fixed-seed runs bit-identical to pre-guard builds.
#pragma once

#include "guard/auditor.h"
#include "guard/overload.h"
#include "guard/watchdog.h"

namespace nu::guard {

struct GuardConfig {
  OverloadConfig overload;
  DeadlineConfig deadline;
  AuditorConfig auditor;

  [[nodiscard]] bool enabled() const {
    return overload.enabled() || deadline.enabled() || auditor.enabled;
  }
};

}  // namespace nu::guard
