#include "guard/tenant_budget.h"

#include <algorithm>

#include "common/check.h"

namespace nu::guard {

void TokenBucket::Refill(Seconds now) {
  if (now <= last_refill_) return;
  tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_refill_));
  last_refill_ = now;
}

bool TokenBucket::TryTake(Seconds now) {
  Refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::TokensAt(Seconds now) const {
  if (now <= last_refill_) return tokens_;
  return std::min(burst_, tokens_ + rate_ * (now - last_refill_));
}

void TokenBucket::SaveState(BinWriter& w) const {
  w.F64(rate_);
  w.F64(burst_);
  w.F64(tokens_);
  w.F64(last_refill_);
}

void TokenBucket::LoadState(BinReader& r) {
  rate_ = r.F64();
  burst_ = r.F64();
  tokens_ = r.F64();
  last_refill_ = r.F64();
}

TenantBudgets::TenantBudgets(const TenantBudgetConfig& config,
                             const std::vector<double>& weights)
    : config_(config) {
  buckets_.reserve(weights.size());
  for (double weight : weights) {
    NU_EXPECTS(weight > 0.0);
    buckets_.emplace_back(config.default_rate * weight,
                          config.default_burst * std::max(weight, 1.0));
  }
}

bool TenantBudgets::Admit(TenantId tenant, Seconds now) {
  if (!config_.enabled) return true;
  if (!tenant.valid() || tenant.value() >= buckets_.size()) return true;
  return buckets_[tenant.value()].TryTake(now);
}

const TokenBucket& TenantBudgets::bucket(TenantId tenant) const {
  NU_EXPECTS(tenant.valid() && tenant.value() < buckets_.size());
  return buckets_[tenant.value()];
}

void TenantBudgets::SaveState(BinWriter& w) const {
  w.Size(buckets_.size());
  for (const TokenBucket& b : buckets_) b.SaveState(w);
}

void TenantBudgets::LoadState(BinReader& r) {
  const std::size_t n = r.Size();
  NU_CHECK(n == buckets_.size());
  for (TokenBucket& b : buckets_) b.LoadState(r);
}

}  // namespace nu::guard
