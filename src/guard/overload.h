// Overload control for the update queue. A production controller cannot let
// the scheduler's queue grow without bound: beyond some depth every further
// admission only adds queuing delay for everyone (the paper's Fig. 8 metric)
// while the head keeps starving. The guard bounds the queue and applies a
// configurable backpressure policy when a new event arrives at a full queue:
//
//   * kRejectNew     — the incoming event is shed (classic tail drop). Keeps
//                      the oldest work; favors fairness (FIFO order intact).
//   * kShedOldest    — the queue head is shed to admit the newcomer (head
//                      drop). Keeps the queue fresh under sustained overload,
//                      when the oldest entries have already missed any
//                      latency target worth meeting.
//   * kShedCostliest — the event with the largest estimated update cost
//                      (update::QuickCostScore, the same estimate LMTF's
//                      quick probes rank by) among queue + newcomer is shed.
//                      Maximizes surviving throughput per unit of migration
//                      work — the LMTF idea applied to admission.
//
// Shedding is observable, never silent: the simulator records every shed
// event with a terminal status (metrics::TerminalStatus) and counts it in
// metrics::GuardStats.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/binio.h"
#include "net/network.h"
#include "topo/path_provider.h"
#include "update/update_event.h"

namespace nu::guard {

enum class OverloadPolicy : std::uint8_t {
  kRejectNew,
  kShedOldest,
  kShedCostliest,
};

[[nodiscard]] const char* ToString(OverloadPolicy policy);

/// Parses "reject-new" | "shed-oldest" | "shed-costliest". Aborts on
/// unknown names (mirrors sched::ParseSchedulerKind).
[[nodiscard]] OverloadPolicy ParseOverloadPolicy(const std::string& name);

struct OverloadConfig {
  /// Maximum number of queued (admitted, not yet executing) update events.
  /// 0 disables admission control entirely — the queue is unbounded, as in
  /// the paper's evaluation setting.
  std::size_t max_queue_length = 0;
  OverloadPolicy policy = OverloadPolicy::kRejectNew;

  [[nodiscard]] bool enabled() const { return max_queue_length > 0; }
};

/// Decides which event to shed when `incoming` arrives at a full queue
/// (queue.size() == max_queue_length). Returns the queue index of the
/// victim, or nullopt when the incoming event itself should be shed.
/// kShedCostliest estimates every candidate's cost against the current
/// network — O(queue x flows) path lookups, paid only at the overload
/// boundary.
[[nodiscard]] std::optional<std::size_t> ChooseShedVictim(
    const OverloadConfig& config,
    std::span<const update::UpdateEvent* const> queue,
    const update::UpdateEvent& incoming, const net::Network& network,
    const topo::PathProvider& paths);

/// Sustained-overload detector: tracks, per link, how long utilization has
/// stayed at or above a threshold and reports links whose overload has
/// persisted for a hold time. This is the guard-side half of the
/// overload→cascade feedback loop — fault::CascadeEngine turns reported
/// links into secondary failures. Purely virtual-time and state-driven:
/// identical Observe() call sequences produce identical reports, keeping
/// cascades bit-reproducible.
///
/// A reported link is latched (never re-reported) until it is later seen
/// BELOW the threshold while up — so a link that trips, fails, recovers,
/// and gets overloaded again can trip again, but a single sustained episode
/// fires exactly once.
class LinkStressMonitor {
 public:
  struct Options {
    /// Utilization (occupied / capacity) at or above which a link counts as
    /// overloaded.
    double utilization_threshold = 0.98;
    /// How long the overload must persist before the link is reported.
    Seconds hold_time = 1.0;
  };

  explicit LinkStressMonitor(Options options) : options_(options) {}

  /// Samples every link's utilization at virtual time `now` and returns the
  /// links (ascending id order) whose sustained overload just crossed the
  /// hold time. Down links are skipped and their episodes cleared — a dead
  /// link cannot be stressed.
  [[nodiscard]] std::vector<LinkId> Observe(const net::Network& network,
                                            Seconds now);

  /// Forgets all tracked episodes and latches (fresh run).
  void Reset();

  // Episode state is part of the simulation's hot state: checkpoints carry
  // it so a recovered run trips the same cascades at the same times.
  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

 private:
  Options options_;
  /// Virtual time each link's current overload episode began; < 0 = none.
  std::vector<Seconds> overload_since_;
  std::vector<char> tripped_;  // latched: already reported this episode
};

}  // namespace nu::guard
