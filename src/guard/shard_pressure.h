// Shard-aware queue-pressure aggregation. Under the sharded engine the
// coordinator tracks the update queue as per-shard sub-queue depths (each
// admitted event is counted against its home shard); admission control and
// the schedulers' overload adaptation still operate on GLOBAL pressure, so
// the per-shard depths are folded back into one sched::QueuePressure here.
// The sum over shards equals the flat queue length by construction — the
// simulator NU_CHECKs it every round, and the unit tests pin the identity —
// so sharded and unsharded runs make identical admission and
// effective-alpha decisions.
#pragma once

#include <numeric>
#include <span>

#include "sched/scheduler.h"

namespace nu::guard {

/// Global pressure from per-shard sub-queue depths. `capacity` and
/// `shed_total` pass through unchanged (admission is a global policy).
[[nodiscard]] inline sched::QueuePressure AggregateShardPressure(
    std::span<const std::size_t> per_shard_depths, std::size_t capacity,
    std::size_t shed_total) {
  sched::QueuePressure pressure;
  pressure.capacity = capacity;
  pressure.length = std::accumulate(per_shard_depths.begin(),
                                    per_shard_depths.end(), std::size_t{0});
  pressure.shed_total = shed_total;
  return pressure;
}

}  // namespace nu::guard
