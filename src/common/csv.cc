#include "common/csv.h"

#include <sstream>

namespace nu {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF line endings.
    } else {
      current += c;
    }
  }
  cells.push_back(std::move(current));
  return cells;
}

std::string EscapeCsvField(const std::string& field) {
  // Quote when the field contains a separator, a quote, or a line break
  // (unquoted newlines would split one logical record across rows). Bare
  // spaces are fine unquoted per RFC 4180 and stay unadorned.
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos || field.empty();
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeCsvField(cells[i]);
  }
  out_ << '\n';
}

std::optional<std::size_t> CsvFile::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return std::nullopt;
}

CsvFile ParseCsv(const std::string& text, bool has_header) {
  CsvFile file;
  std::istringstream stream(text);
  std::string line;
  bool header_pending = has_header;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto cells = SplitCsvLine(line);
    if (header_pending) {
      file.header = std::move(cells);
      header_pending = false;
    } else {
      file.rows.push_back(std::move(cells));
    }
  }
  return file;
}

}  // namespace nu
