// Bounded-retry policy with exponential backoff and deterministic jitter.
//
// Used wherever a data-plane operation can fail transiently (rule installs
// under the fault model, future RPC layers): the caller samples a backoff
// delay per failed attempt through an explicitly seeded Rng, so retry timing
// is bit-reproducible for a fixed seed. Jitter is multiplicative and
// bounded — MinDelay/MaxDelay give the exact envelope, which the tests pin.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/types.h"

namespace nu {

struct RetryPolicy {
  /// Total attempts allowed, including the first try. 1 = no retries.
  std::size_t max_attempts = 4;
  /// Backoff before the first retry (seconds).
  Seconds base_delay = 0.05;
  /// Multiplier applied per additional failure.
  double backoff_factor = 2.0;
  /// Ceiling on the un-jittered backoff (seconds).
  Seconds max_delay = 2.0;
  /// Jitter fraction j: the sampled delay is uniform in
  /// [nominal * (1 - j), nominal * (1 + j)). Must be in [0, 1].
  double jitter_frac = 0.1;

  /// True when `attempt` (1-based) may be followed by another try.
  [[nodiscard]] bool AllowsRetryAfter(std::size_t attempt) const {
    return attempt < max_attempts;
  }

  /// Un-jittered backoff after the `failure`-th consecutive failure
  /// (1-based): min(max_delay, base_delay * backoff_factor^(failure-1)).
  [[nodiscard]] Seconds NominalDelay(std::size_t failure) const;

  /// Tight bounds on BackoffDelay(failure, rng) over all rng states.
  [[nodiscard]] Seconds MinDelay(std::size_t failure) const;
  [[nodiscard]] Seconds MaxDelay(std::size_t failure) const;

  /// Jittered backoff after the `failure`-th consecutive failure. Draws
  /// exactly one uniform variate from `rng`; deterministic per seed.
  [[nodiscard]] Seconds BackoffDelay(std::size_t failure, Rng& rng) const;
};

}  // namespace nu
