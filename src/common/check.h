// Lightweight contract checking, in the spirit of the Core Guidelines
// `Expects`/`Ensures`. Violations abort with a message; checks stay enabled in
// release builds because all users of this library are simulations where
// correctness matters far more than the branch cost.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace nu::detail {

[[noreturn]] inline void CheckFailed(const char* kind, const char* expr,
                                     const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace nu::detail

#define NU_CHECK(expr)                                                \
  ((expr) ? static_cast<void>(0)                                      \
          : ::nu::detail::CheckFailed("NU_CHECK", #expr, __FILE__, __LINE__))

#define NU_EXPECTS(expr)                                              \
  ((expr) ? static_cast<void>(0)                                      \
          : ::nu::detail::CheckFailed("Precondition", #expr, __FILE__, \
                                      __LINE__))

#define NU_ENSURES(expr)                                              \
  ((expr) ? static_cast<void>(0)                                      \
          : ::nu::detail::CheckFailed("Postcondition", #expr, __FILE__, \
                                      __LINE__))
