// Bump/arena allocator for per-round scratch. The steady-state round loop
// (quick-probe scoring, candidate gathering, migration workspaces) used to
// allocate short-lived vectors on every call; the arena replaces those with
// pointer bumps into chunks that are reused across rounds: after the first
// few rounds warm the chunk list, Reset() rewinds without freeing and the
// loop runs with zero heap allocations (asserted by tests/common/
// arena_test.cc with a counting global operator new).
//
// Only trivially-destructible element types are supported — nothing is ever
// destroyed, Reset() just rewinds the bump cursors. Alignment is capped at
// alignof(std::max_align_t), which `operator new[]` guarantees for the
// chunk base.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace nu {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_(chunk_bytes) {
    NU_EXPECTS(chunk_bytes > 0);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` Ts. Valid until the next Reset().
  /// count == 0 returns a non-null aligned pointer (never dereferenced).
  template <typename T>
  [[nodiscard]] T* AllocArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is rewound, never destroyed");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    return static_cast<T*>(Raw(count * sizeof(T), alignof(T)));
  }

  /// Rewinds every chunk. Previously returned pointers become invalid;
  /// chunk storage is retained for reuse (no frees, no future mallocs as
  /// long as the per-reset footprint does not grow past the high-water
  /// mark).
  void Reset() {
    for (Chunk& c : chunks_) c.used = 0;
    active_ = 0;
    bytes_in_use_ = 0;
  }

  /// Bytes handed out since the last Reset (padding included).
  [[nodiscard]] std::size_t bytes_in_use() const { return bytes_in_use_; }

  /// Maximum bytes_in_use ever observed — the steady-state footprint.
  [[nodiscard]] std::size_t high_water_bytes() const { return high_water_; }

  /// Chunks allocated over the arena's lifetime. Stable chunk_count across
  /// Resets means the warmed arena no longer touches the heap.
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* Raw(std::size_t bytes, std::size_t align) {
    for (;;) {
      if (active_ < chunks_.size()) {
        Chunk& c = chunks_[active_];
        const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
        if (aligned + bytes <= c.size) {
          bytes_in_use_ += (aligned - c.used) + bytes;
          if (bytes_in_use_ > high_water_) high_water_ = bytes_in_use_;
          c.used = aligned + bytes;
          return c.data.get() + aligned;
        }
        ++active_;  // tail too small; move on (the waste is bounded)
        continue;
      }
      const std::size_t want = bytes > next_chunk_bytes_ ? bytes
                                                         : next_chunk_bytes_;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want, 0});
      if (next_chunk_bytes_ < kMaxChunkBytes) {
        next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
      }
    }
  }

  static constexpr std::size_t kMaxChunkBytes = 8 * 1024 * 1024;

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t next_chunk_bytes_;
  std::size_t bytes_in_use_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace nu
