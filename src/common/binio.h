// Binary serialization primitives for the checkpoint subsystem: a growable
// little-endian writer, a bounds-checked reader, and CRC32 checksumming.
//
// The encoding is deliberately boring — fixed-width little-endian integers,
// IEEE-754 doubles bit-cast to u64, length-prefixed strings/vectors — so a
// snapshot taken by one build can be audited with a hex dump. Readers throw
// CorruptInput on any truncated or out-of-range read; callers treat that as
// "this file cannot be trusted", never as a soft error.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nu {

/// Thrown by BinReader on truncated or malformed input.
class CorruptInput : public std::runtime_error {
 public:
  explicit CorruptInput(const std::string& what)
      : std::runtime_error("corrupt binary input: " + what) {}
};

/// CRC32 (IEEE 802.3 polynomial, reflected) over a byte range.
[[nodiscard]] std::uint32_t Crc32(const void* data, std::size_t size);
[[nodiscard]] inline std::uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Append-only little-endian encoder into an owned byte buffer.
class BinWriter {
 public:
  void U8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) { AppendLe(v); }
  void U64(std::uint64_t v) { AppendLe(v); }
  void I64(std::int64_t v) { AppendLe(static_cast<std::uint64_t>(v)); }
  void F64(double v) { AppendLe(std::bit_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Size(std::size_t v) { U64(static_cast<std::uint64_t>(v)); }

  void Str(std::string_view s) {
    Size(s.size());
    buffer_.append(s.data(), s.size());
  }

  void Bytes(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  template <typename T, typename Fn>
  void Vec(const std::vector<T>& v, Fn&& write_one) {
    Size(v.size());
    for (const T& item : v) write_one(*this, item);
  }

  [[nodiscard]] const std::string& buffer() const { return buffer_; }
  [[nodiscard]] std::string TakeBuffer() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void AppendLe(T v) {
    char bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    buffer_.append(bytes, sizeof(T));
  }

  std::string buffer_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range. Any
/// read past the end throws CorruptInput.
class BinReader {
 public:
  explicit BinReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t U8() {
    Need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  [[nodiscard]] std::uint32_t U32() { return ReadLe<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t U64() { return ReadLe<std::uint64_t>(); }
  [[nodiscard]] std::int64_t I64() {
    return static_cast<std::int64_t>(ReadLe<std::uint64_t>());
  }
  [[nodiscard]] double F64() {
    return std::bit_cast<double>(ReadLe<std::uint64_t>());
  }
  [[nodiscard]] bool Bool() { return U8() != 0; }
  [[nodiscard]] std::size_t Size() {
    const std::uint64_t v = U64();
    // A length larger than the remaining input can only be garbage; reject
    // it before a caller tries to reserve that much memory.
    if (v > bytes_.size() - pos_) throw CorruptInput("length field too large");
    return static_cast<std::size_t>(v);
  }

  [[nodiscard]] std::string Str() {
    const std::size_t n = Size();
    Need(n);
    std::string out(bytes_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> Vec(Fn&& read_one) {
    const std::size_t n = Size();
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(read_one(*this));
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool AtEnd() const { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

  /// Readers of versioned payloads call this after decoding to reject
  /// trailing garbage (a symptom of a format mismatch, not of torn writes).
  void ExpectEnd() const {
    if (!AtEnd()) throw CorruptInput("trailing bytes after payload");
  }

 private:
  void Need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) throw CorruptInput("input truncated");
  }

  template <typename T>
  T ReadLe() {
    Need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace nu
