#include "common/retry.h"

#include <algorithm>

#include "common/check.h"

namespace nu {

Seconds RetryPolicy::NominalDelay(std::size_t failure) const {
  NU_EXPECTS(failure >= 1);
  NU_EXPECTS(base_delay >= 0.0);
  NU_EXPECTS(backoff_factor >= 1.0);
  Seconds delay = base_delay;
  for (std::size_t i = 1; i < failure; ++i) {
    delay *= backoff_factor;
    if (delay >= max_delay) break;
  }
  return std::min(delay, max_delay);
}

Seconds RetryPolicy::MinDelay(std::size_t failure) const {
  return NominalDelay(failure) * (1.0 - jitter_frac);
}

Seconds RetryPolicy::MaxDelay(std::size_t failure) const {
  return NominalDelay(failure) * (1.0 + jitter_frac);
}

Seconds RetryPolicy::BackoffDelay(std::size_t failure, Rng& rng) const {
  NU_EXPECTS(jitter_frac >= 0.0 && jitter_frac <= 1.0);
  const Seconds nominal = NominalDelay(failure);
  const double spread = 1.0 - jitter_frac + 2.0 * jitter_frac * rng.Uniform01();
  return nominal * spread;
}

}  // namespace nu
