#include "common/flags.h"

#include <cstdlib>

#include "common/check.h"

namespace nu {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = {body.substr(eq + 1), false};
      continue;
    }
    // `--name value` when the next token is not a flag; bare boolean
    // otherwise.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = {argv[i + 1], false};
      ++i;
    } else {
      flags.values_[body] = {"", false};
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  it->second.second = true;
  return true;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  return it->second.first;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.first.c_str(), &end);
  NU_CHECK(end != it->second.first.c_str() && *end == '\0');
  return value;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  char* end = nullptr;
  const std::int64_t value =
      std::strtoll(it->second.first.c_str(), &end, 10);
  NU_CHECK(end != it->second.first.c_str() && *end == '\0');
  return value;
}

std::uint64_t Flags::GetUint(const std::string& name,
                             std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  char* end = nullptr;
  const std::uint64_t value =
      std::strtoull(it->second.first.c_str(), &end, 10);
  NU_CHECK(end != it->second.first.c_str() && *end == '\0');
  return value;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  const std::string& v = it->second.first;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  NU_CHECK(false && "unparsable boolean flag");
  return fallback;
}

std::vector<std::string> Flags::UnqueriedFlags() const {
  std::vector<std::string> unqueried;
  for (const auto& [name, entry] : values_) {
    if (!entry.second) unqueried.push_back(name);
  }
  return unqueried;
}

}  // namespace nu
