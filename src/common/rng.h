// Deterministic random-number generation.
//
// Every stochastic component in the library draws through an explicitly
// seeded Rng so that experiments are reproducible bit-for-bit. The engine is
// splitmix64-seeded xoshiro256**, which is fast, high quality, and lets us
// derive independent child streams (`Fork`) for parallel workload pieces.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace nu {

class Rng {
 public:
  /// Complete serializable engine state: the four xoshiro256** words plus
  /// the Box-Muller spare. Restoring a captured state resumes the stream at
  /// exactly the draw where it was captured, including a pending Normal()
  /// spare value.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double spare_normal = 0.0;
    bool has_spare_normal = false;

    friend bool operator==(const State&, const State&) = default;
  };

  /// Seeds the generator. Identical seeds produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Captures the full engine state for checkpointing.
  [[nodiscard]] State GetState() const {
    return State{state_, spare_normal_, has_spare_normal_};
  }

  /// Restores a previously captured state. The all-zero word vector is the
  /// one invalid xoshiro state and is rejected.
  void SetState(const State& s) {
    NU_EXPECTS(s.words[0] != 0 || s.words[1] != 0 || s.words[2] != 0 ||
               s.words[3] != 0);
    state_ = s.words;
    spare_normal_ = s.spare_normal;
    has_spare_normal_ = s.has_spare_normal;
  }

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi). Requires lo < hi (or lo == hi, returning lo).
  double Uniform(double lo, double hi);

  /// Uniform real in [0, 1).
  double Uniform01();

  /// Standard normal via Box-Muller (cached spare value).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Exponential with the given rate (lambda). Requires rate > 0.
  double Exponential(double rate);

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy tail for alpha<=2).
  double Pareto(double scale, double shape);

  /// Bernoulli trial with probability p in [0, 1].
  bool Bernoulli(double p);

  /// Random index in [0, n). Requires n > 0.
  std::size_t Index(std::size_t n);

  /// Derives an independent child stream; deterministic in the parent state.
  Rng Fork();

  /// Sample `k` distinct indices from [0, n) without replacement
  /// (partial Fisher-Yates). If k >= n, returns all indices shuffled.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Shuffles a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = Index(i + 1);
      std::swap(v[i], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace nu
