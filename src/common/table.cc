#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.h"
#include "common/csv.h"

namespace nu {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NU_EXPECTS(!headers_.empty());
}

AsciiTable& AsciiTable::Row() {
  rows_.emplace_back();
  return *this;
}

AsciiTable& AsciiTable::Cell(const std::string& text) {
  NU_EXPECTS(!rows_.empty());
  NU_EXPECTS(rows_.back().size() < headers_.size());
  rows_.back().push_back(text);
  return *this;
}

AsciiTable& AsciiTable::Cell(double value, int precision) {
  return Cell(FormatDouble(value, precision));
}

AsciiTable& AsciiTable::Cell(std::size_t value) {
  return Cell(std::to_string(value));
}

AsciiTable& AsciiTable::Cell(int value) { return Cell(std::to_string(value)); }

void AsciiTable::AddRow(std::vector<std::string> cells) {
  NU_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += ' ';
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string separator = "+";
  for (std::size_t w : widths) {
    separator.append(w + 2, '-');
    separator += '+';
  }
  separator += '\n';

  std::string out = separator + render_row(headers_) + separator;
  for (const auto& row : rows_) out += render_row(row);
  out += separator;
  return out;
}

void AsciiTable::Print() const {
  const std::string rendered = Render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
}

void AsciiTable::WriteCsv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.WriteRow(headers_);
  for (const auto& row : rows_) writer.WriteRow(row);
}

}  // namespace nu
