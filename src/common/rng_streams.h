// Named deterministic RNG streams.
//
// Every stochastic subsystem derives its Rng seed as `base_seed ^ constant`
// so the streams are independent: adding draws to one stream can never
// perturb another, and a fixed base seed reproduces every stream
// bit-for-bit. Historically those constants were scattered magic numbers at
// the construction sites; this header names them in one place so (a) new
// subsystems pick a fresh constant instead of colliding with an existing
// stream and (b) the legacy values are pinned — they are part of the
// observable output format (golden CSVs from earlier PRs encode exactly
// these derivations) and MUST NOT change.
//
// Usage: `Rng rng(StreamSeed(base_seed, RngStream::kChurnTimers))`.
#pragma once

#include <cstdint>

namespace nu {

/// The named streams, one per independent consumer of randomness. The
/// enumerator values ARE the XOR constants (not sequential ids) so the
/// legacy derivations stay bit-identical and accidental renumbering is
/// impossible without touching the pinned constant itself.
enum class RngStream : std::uint64_t {
  /// Scheduler tie-breaks and candidate sampling (LMTF/P-LMTF alpha draws).
  /// Legacy: the simulator seeded this stream with the raw seed.
  kScheduler = 0x0ULL,
  /// Background-churn departure timers and replacement placement draws.
  kChurnTimers = 0xC0FFEEULL,
  /// The churn replacement-flow generator (fresh TrafficGenerator per run).
  kChurnGenerator = 0xBEEFULL,
  /// Fault injection: flaky-install coin flips and latency jitter.
  kFaultInjection = 0xFA11ULL,
  /// exp::Workload -> sim seed derivation (runner.cc): the simulator's base
  /// seed is the workload seed XOR this, so workload-level draws (trace
  /// generation, event construction) and simulator-level draws never share
  /// a stream.
  kSimFromWorkload = 0x5eedULL,
  /// Background-injection random path selection (exp::Workload).
  kBackgroundPaths = 0xECECULL,
  /// Open-loop arrival process (serve/): inter-arrival gaps, burst shapes,
  /// tenant tagging. New in the serving layer — a constant disjoint from
  /// every legacy stream so enabling serve mode cannot perturb existing
  /// fixed-seed runs.
  kServeArrivals = 0xA881ULL,
  /// Flow synthesis for served events (serve/ -> update::EventGenerator).
  kServeFlows = 0xF10AULL,
  /// The traffic generator feeding flow endpoints/demands to served events
  /// (exp/serve.cc). Distinct from kServeFlows so the event generator's
  /// internal draws and the flow-spec source never start from identical
  /// xoshiro states (which would correlate flow counts with endpoints).
  kServeFlowSource = 0x51ABULL,
  /// Grey-failure draws (fault/ + recon/): ack-lie / straggler / rule-loss
  /// coin flips, straggler apply delays, loss eviction delays, and the
  /// reconciler's repair re-issue draws + backoff jitter. One stream for
  /// injection AND repair so the draw order is a single deterministic
  /// sequence; disjoint from every legacy constant so enabling grey
  /// failures cannot perturb existing fixed-seed runs.
  kGreyFailures = 0x62E7ULL,
};

/// Derives the seed for `stream` from a run's base seed.
[[nodiscard]] constexpr std::uint64_t StreamSeed(std::uint64_t base_seed,
                                                 RngStream stream) {
  return base_seed ^ static_cast<std::uint64_t>(stream);
}

}  // namespace nu
