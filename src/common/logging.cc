#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace nu {
namespace {

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level = [] {
    const char* env = std::getenv("NU_LOG_LEVEL");
    const LogLevel initial = env ? ParseLogLevel(env) : LogLevel::kWarn;
    return static_cast<int>(initial);
  }();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStorage().load()); }

void SetLogLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level));
}

LogLevel ParseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

namespace detail {

void Emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace detail
}  // namespace nu
