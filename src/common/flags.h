// Minimal command-line flag parsing for the example/CLI binaries:
// `--name=value` and `--name value` forms, typed getters with defaults, and
// automatic `--help` text. No global state.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nu {

class Flags {
 public:
  /// Parses argv. Flags are `--name=value`, `--name value`, or boolean
  /// `--name`. Non-flag arguments are collected as positionals. Aborts on a
  /// malformed argument (not starting with `--` is positional, fine).
  static Flags Parse(int argc, char** argv);

  [[nodiscard]] bool Has(const std::string& name) const;

  /// Typed getters; return `fallback` when absent. Abort on unparsable
  /// values for the requested type.
  [[nodiscard]] std::string GetString(const std::string& name,
                                      const std::string& fallback) const;
  [[nodiscard]] double GetDouble(const std::string& name,
                                 double fallback) const;
  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t GetUint(const std::string& name,
                                      std::uint64_t fallback) const;
  /// Boolean: present without value (or "true"/"1") => true;
  /// "false"/"0" => false.
  [[nodiscard]] bool GetBool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  /// Names given on the command line that were never queried — typo guard
  /// for CLI tools (call after all getters).
  [[nodiscard]] std::vector<std::string> UnqueriedFlags() const;

 private:
  mutable std::map<std::string, std::pair<std::string, bool>> values_;
  std::vector<std::string> positionals_;
};

}  // namespace nu
