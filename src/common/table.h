// ASCII table rendering used by every bench binary to print the rows/series
// that correspond to the paper's figures.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nu {

/// Builds a fixed set of columns, accepts rows of cells, and renders an
/// aligned monospace table. Numeric convenience overloads format doubles
/// with a configurable precision.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent Cell() calls fill it left to right.
  AsciiTable& Row();
  AsciiTable& Cell(const std::string& text);
  AsciiTable& Cell(double value, int precision = 3);
  AsciiTable& Cell(std::size_t value);
  AsciiTable& Cell(int value);

  /// Adds a complete row at once. Size must match the header count.
  void AddRow(std::vector<std::string> cells);

  [[nodiscard]] std::string Render() const;
  /// Renders and writes to stdout.
  void Print() const;

  /// Writes header + rows as CSV (shared escaping rules from common/csv.h),
  /// so every bench table has a machine-readable twin.
  void WriteCsv(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with CSV output).
[[nodiscard]] std::string FormatDouble(double value, int precision = 3);

}  // namespace nu
