// CSV reading and writing. The writer backs the bench binaries' machine-
// readable output (one CSV per figure next to the ASCII table); the reader
// backs trace::TraceLoader for plugging in real flow traces.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace nu {

/// Splits one CSV line. Handles quoted fields with embedded commas and
/// doubled quotes; does not handle embedded newlines (flow traces are
/// line-per-record).
[[nodiscard]] std::vector<std::string> SplitCsvLine(const std::string& line);

/// Escapes a field for CSV output: quotes when the field contains a comma,
/// a quote, or a line break (CR/LF), doubling embedded quotes. Bare spaces
/// do not force quoting.
[[nodiscard]] std::string EscapeCsvField(const std::string& field);

/// Incremental CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& cells);

 private:
  std::ostream& out_;
};

/// Fully-parsed CSV file with an optional header row.
struct CsvFile {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> ColumnIndex(
      const std::string& name) const;
};

/// Parses CSV text. When `has_header` is true the first non-empty line
/// becomes `header`. Empty lines and lines starting with '#' are skipped.
[[nodiscard]] CsvFile ParseCsv(const std::string& text, bool has_header);

}  // namespace nu
