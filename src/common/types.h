// Strong identifier and unit types shared by every subsystem.
//
// All quantities in the library use these conventions:
//   - bandwidth / rate:  Mbps (double)     e.g. a 1 Gbps link is 1000.0
//   - traffic volume:    Mb   (double)     rate * seconds
//   - time:              seconds (double)  simulation virtual time
//
// Identifiers are strong types (distinct, non-convertible) so that a NodeId
// can never be passed where a FlowId is expected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace nu {

/// CRTP strong-ID wrapper. `Tag` makes each instantiation a distinct type.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(StrongId a, StrongId b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(StrongId a, StrongId b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(StrongId a, StrongId b) {
    return a.value_ >= b.value_;
  }
  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalid;
};

struct NodeTag {};
struct LinkTag {};
struct FlowTag {};
struct EventTag {};
struct PathTag {};
struct TenantTag {};

/// A switch or server in the topology graph.
using NodeId = StrongId<NodeTag>;
/// A directed link between two nodes.
using LinkId = StrongId<LinkTag>;
/// A flow (existing background flow or a flow of an update event).
using FlowId = StrongId<FlowTag, std::uint64_t>;
/// A network-update event (a set of flows updated together).
using EventId = StrongId<EventTag, std::uint64_t>;
/// Handle to an interned path in a topo::PathRegistry. 32 bits: hot state
/// stores one of these per placement instead of a deep topo::Path copy.
/// Refs are only meaningful against the registry that issued them; within
/// one registry, ref equality is content equality (Intern dedups).
using PathRef = StrongId<PathTag>;
/// A tenant in the online-serving layer (serve/): update events are tagged
/// with the tenant that submitted them so admission budgets and fairness
/// accounting can be kept per tenant. Invalid = untagged (single-tenant /
/// offline runs).
using TenantId = StrongId<TenantTag>;

/// Virtual time in seconds.
using Seconds = double;
/// Bandwidth in Mbps.
using Mbps = double;
/// Traffic volume in megabits.
using Megabits = double;

/// Tolerance used when comparing bandwidth quantities: placements accumulate
/// floating-point error, so residual-capacity checks allow this slack.
inline constexpr double kBandwidthEpsilon = 1e-6;

[[nodiscard]] inline constexpr bool ApproxLe(double a, double b,
                                             double eps = kBandwidthEpsilon) {
  return a <= b + eps;
}

[[nodiscard]] inline constexpr bool ApproxGe(double a, double b,
                                             double eps = kBandwidthEpsilon) {
  return a + eps >= b;
}

[[nodiscard]] inline constexpr bool ApproxEq(double a, double b,
                                             double eps = kBandwidthEpsilon) {
  return ApproxLe(a, b, eps) && ApproxGe(a, b, eps);
}

}  // namespace nu

namespace std {
template <typename Tag, typename Rep>
struct hash<nu::StrongId<Tag, Rep>> {
  size_t operator()(nu::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
