// Minimal leveled logging. Simulations print through this so that verbose
// tracing can be switched on per-run (e.g. NU_LOG_LEVEL=debug in tests)
// without recompiling.
#pragma once

#include <sstream>
#include <string>

namespace nu {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded. Initialized from the
/// NU_LOG_LEVEL environment variable (debug|info|warn|error), default warn.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"; returns kWarn for anything else.
LogLevel ParseLogLevel(const std::string& name);

namespace detail {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace nu

#define NU_LOG(level)                                      \
  if (static_cast<int>(::nu::LogLevel::level) <            \
      static_cast<int>(::nu::GetLogLevel())) {             \
  } else                                                   \
    ::nu::detail::LogLine(::nu::LogLevel::level)

#define NU_LOG_DEBUG NU_LOG(kDebug)
#define NU_LOG_INFO NU_LOG(kInfo)
#define NU_LOG_WARN NU_LOG(kWarn)
#define NU_LOG_ERROR NU_LOG(kError)
