// Minimal fixed-size worker pool for read-only what-if probes. Tasks are
// submitted as callables and joined through std::future; the pool makes no
// ordering guarantees, so callers that need determinism must collect results
// by index and do all shared-state bookkeeping on the submitting thread
// (see sim::RoundContext::ProbeCosts).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace nu {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least one).
  explicit ThreadPool(std::size_t workers);

  /// Drains nothing: outstanding tasks finish, queued tasks still run, then
  /// workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task = std::move(task)] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace nu
