#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/check.h"

namespace nu {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

Samples::Samples(std::vector<double> values) : values_(std::move(values)) {}

void Samples::Add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Samples::Clear() {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

double Samples::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::stddev() const {
  RunningStats rs;
  for (double v : values_) rs.Add(v);
  return rs.stddev();
}

void Samples::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Samples::Percentile(double q) const {
  NU_EXPECTS(q >= 0.0 && q <= 1.0);
  if (values_.empty()) return 0.0;
  EnsureSorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double ReductionVs(double baseline, double ours) {
  if (baseline == 0.0) return 0.0;
  return (baseline - ours) / baseline;
}

std::string PercentString(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace nu
