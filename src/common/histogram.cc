#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

#include "common/check.h"

namespace nu {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  NU_EXPECTS(hi > lo);
  NU_EXPECTS(buckets > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bucket = static_cast<std::size_t>((x - lo_) / bucket_width_);
  bucket = std::min(bucket, counts_.size() - 1);
  ++counts_[bucket];
}

std::size_t Histogram::count(std::size_t bucket) const {
  NU_EXPECTS(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  NU_EXPECTS(bucket < counts_.size());
  return lo_ + bucket_width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + bucket_width_;
}

double Histogram::CumulativeFraction(std::size_t bucket) const {
  NU_EXPECTS(bucket < counts_.size());
  if (total_ == 0) return 0.0;
  std::size_t cum = underflow_;
  for (std::size_t i = 0; i <= bucket; ++i) cum += counts_[i];
  return static_cast<double>(cum) / static_cast<double>(total_);
}

namespace {

std::string RenderRows(const std::vector<std::size_t>& counts,
                       const std::function<double(std::size_t)>& lo_of,
                       const std::function<double(std::size_t)>& hi_of,
                       std::size_t width) {
  std::size_t max_count = 1;
  for (std::size_t c : counts) max_count = std::max(max_count, c);
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto bar_len = static_cast<std::size_t>(
        static_cast<double>(counts[i]) / static_cast<double>(max_count) *
        static_cast<double>(width));
    std::snprintf(buf, sizeof(buf), "[%11.4g, %11.4g) %8zu ", lo_of(i),
                  hi_of(i), counts[i]);
    out += buf;
    out.append(std::max<std::size_t>(bar_len, 1), '#');
    out += '\n';
  }
  return out;
}

}  // namespace

std::string Histogram::Render(std::size_t width) const {
  return RenderRows(
      counts_, [this](std::size_t i) { return bucket_lo(i); },
      [this](std::size_t i) { return bucket_hi(i); }, width);
}

LogHistogram::LogHistogram(double scale, double base, std::size_t buckets)
    : scale_(scale), base_(base), counts_(buckets, 0) {
  NU_EXPECTS(scale > 0.0);
  NU_EXPECTS(base > 1.0);
  NU_EXPECTS(buckets > 0);
}

void LogHistogram::Add(double x) {
  ++total_;
  if (x < scale_) {
    ++underflow_;
    return;
  }
  auto bucket = static_cast<std::size_t>(std::log(x / scale_) / std::log(base_));
  bucket = std::min(bucket, counts_.size() - 1);
  ++counts_[bucket];
}

std::size_t LogHistogram::count(std::size_t bucket) const {
  NU_EXPECTS(bucket < counts_.size());
  return counts_[bucket];
}

double LogHistogram::bucket_lo(std::size_t bucket) const {
  NU_EXPECTS(bucket < counts_.size());
  return scale_ * std::pow(base_, static_cast<double>(bucket));
}

double LogHistogram::bucket_hi(std::size_t bucket) const {
  NU_EXPECTS(bucket < counts_.size());
  return scale_ * std::pow(base_, static_cast<double>(bucket + 1));
}

std::string LogHistogram::Render(std::size_t width) const {
  return RenderRows(
      counts_, [this](std::size_t i) { return bucket_lo(i); },
      [this](std::size_t i) { return bucket_hi(i); }, width);
}

}  // namespace nu
