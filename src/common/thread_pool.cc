#include "common/thread_pool.h"

#include <algorithm>

namespace nu {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(std::max<std::size_t>(workers, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(workers, 1); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace nu
