#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace nu {
namespace {

// splitmix64: used only to expand the user seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state is the one invalid state for xoshiro.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::Next() {
  // xoshiro256**
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  NU_EXPECTS(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full range
  // Debiased via rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) {
      return lo + static_cast<std::int64_t>(r % range);
    }
  }
}

double Rng::Uniform01() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  NU_EXPECTS(lo <= hi);
  return lo + (hi - lo) * Uniform01();
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform01();
  } while (u1 <= 0.0);
  const double u2 = Uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double rate) {
  NU_EXPECTS(rate > 0.0);
  double u = 0.0;
  do {
    u = Uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Pareto(double scale, double shape) {
  NU_EXPECTS(scale > 0.0);
  NU_EXPECTS(shape > 0.0);
  double u = 0.0;
  do {
    u = Uniform01();
  } while (u <= 0.0);
  return scale / std::pow(u, 1.0 / shape);
}

bool Rng::Bernoulli(double p) {
  NU_EXPECTS(p >= 0.0 && p <= 1.0);
  return Uniform01() < p;
}

std::size_t Rng::Index(std::size_t n) {
  NU_EXPECTS(n > 0);
  return static_cast<std::size_t>(
      UniformInt(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  const std::size_t take = (k < n) ? k : n;
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + Index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

}  // namespace nu
