#include "common/binio.h"

#include <array>

namespace nu {
namespace {

// Table-driven CRC32 (reflected 0xEDB88320). Built once at startup; the
// cost is negligible next to any snapshot write.
const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  const auto& table = CrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace nu
