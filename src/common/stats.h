// Descriptive statistics over samples: mean, variance, percentiles, and a
// streaming accumulator. Used by the metrics layer (avg/tail ECT, queuing
// delay) and by trace-generator self-tests.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nu {

/// Streaming accumulator (Welford) — O(1) memory, numerically stable.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator). Zero for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch statistics over an explicit sample set; keeps the samples so exact
/// percentiles are available.
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::vector<double> values);

  void Add(double x);
  void Clear();

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  /// Exact percentile via linear interpolation between order statistics.
  /// `q` in [0, 1]; Percentile(0.99) is the "tail" metric used by the paper.
  [[nodiscard]] double Percentile(double q) const;

  /// Median shorthand.
  [[nodiscard]] double Median() const { return Percentile(0.5); }

  [[nodiscard]] std::span<const double> values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Relative reduction of `ours` vs `baseline`, i.e. (baseline-ours)/baseline.
/// The paper reports most results in this form ("75% reduction vs FIFO").
/// Returns 0 when the baseline is zero.
[[nodiscard]] double ReductionVs(double baseline, double ours);

/// Formats a fraction as a percent string, e.g. 0.753 -> "75.3%".
[[nodiscard]] std::string PercentString(double fraction, int decimals = 1);

}  // namespace nu
