// Fixed-bucket and log-bucket histograms, used for flow-size / ECT
// distributions in reports and for validating generated traces against the
// heavy-tail shapes the paper's workloads assume.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nu {

/// Linear histogram over [lo, hi) with `buckets` equal-width buckets plus
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const;
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

  /// Fraction of samples at or below the upper edge of `bucket`
  /// (underflow included; overflow excluded until the end).
  [[nodiscard]] double CumulativeFraction(std::size_t bucket) const;

  /// Multi-line ASCII rendering (one row per bucket with a bar).
  [[nodiscard]] std::string Render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Logarithmic histogram: bucket i covers [base^i * scale, base^(i+1) * scale).
/// Suits heavy-tailed flow-size distributions spanning many decades.
class LogHistogram {
 public:
  explicit LogHistogram(double scale = 1.0, double base = 2.0,
                        std::size_t buckets = 48);

  void Add(double x);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;
  [[nodiscard]] std::string Render(std::size_t width = 40) const;

 private:
  double scale_;
  double base_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace nu
