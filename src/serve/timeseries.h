// Serve-mode timeseries: periodic samples of the serving layer's health and
// SLO telemetry, plus a typed row for every brownout transition, emitted as
// one deterministic CSV per run.
//
// Rows are formatted AT EMISSION TIME (common::FormatDouble, fixed
// precision) and stored as strings, so the recorder's contents — and the
// CSV bytes — are a pure function of the emission sequence: two runs with
// the same seed produce byte-identical files, which is what the serve-smoke
// CI job byte-compares. The formatted rows snapshot with the run so a
// crash+resume emits the identical file.
//
// Column dictionary: see docs/model.md §14.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/types.h"

namespace nu::serve {

class TimeseriesRecorder {
 public:
  /// `sample_period` is the cadence of "sample" rows (virtual seconds).
  explicit TimeseriesRecorder(Seconds sample_period);

  /// The CSV header row (shared with readers/tests).
  [[nodiscard]] static const std::vector<std::string>& Header();

  /// Emits one pre-formatted row (same arity as Header()).
  void Append(std::vector<std::string> row);

  /// True when virtual time `now` has reached the next sample boundary.
  [[nodiscard]] bool SampleDue(Seconds now) const {
    return now >= next_sample_;
  }
  /// The pending sample boundary (row timestamp for cadence samples).
  [[nodiscard]] Seconds next_sample() const { return next_sample_; }
  /// Advances to the next boundary (one period) after a cadence sample.
  void Advance() { next_sample_ += sample_period_; }

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Writes header + rows as CSV.
  void WriteCsv(std::ostream& out) const;
  [[nodiscard]] std::string ToCsv() const;

  // Snapshot support: emitted rows and the sample cursor round-trip, so a
  // recovered run appends exactly where the crashed one stopped.
  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

 private:
  Seconds sample_period_;
  Seconds next_sample_ = 0.0;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nu::serve
