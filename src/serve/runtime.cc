#include "serve/runtime.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/csv.h"
#include "common/table.h"

namespace nu::serve {
namespace {

std::vector<double> RosterWeights(const std::vector<TenantSpec>& roster) {
  std::vector<double> weights;
  weights.reserve(roster.size());
  for (const TenantSpec& t : roster) weights.push_back(t.weight);
  return weights;
}

std::vector<std::string> RosterNames(const std::vector<TenantSpec>& roster) {
  std::vector<std::string> names;
  names.reserve(roster.size());
  for (const TenantSpec& t : roster) names.push_back(t.name);
  return names;
}

}  // namespace

const char* ToString(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kBudget:
      return "budget";
    case RejectReason::kDeadline:
      return "deadline";
    case RejectReason::kPriority:
      return "priority";
  }
  return "?";
}

ServeRuntime::ServeRuntime(const ServeOptions& options)
    : options_(options),
      roster_(options.arrivals.EffectiveTenants()),
      brownout_(options.brownout),
      budgets_(options.budget, RosterWeights(roster_)),
      stress_(options.stress),
      sketch_(options.sketch),
      recorder_(options.sample_period) {
  NU_EXPECTS(options_.miss_window > 0.0);
  NU_EXPECTS(options_.stress_window > 0.0);
  NU_EXPECTS(options_.ect_ewma_alpha > 0.0 && options_.ect_ewma_alpha <= 1.0);
  accountant_.SetTenants(RosterNames(roster_));
}

int ServeRuntime::PriorityOf(const update::UpdateEvent& event) const {
  const TenantId tenant = event.tenant();
  if (!tenant.valid() || tenant.value() >= roster_.size()) return 0;
  return roster_[tenant.value()].priority;
}

void ServeRuntime::OnArrival(const update::UpdateEvent& event) {
  ++arrivals_;
  const TenantId tenant = event.tenant();
  if (tenant.valid() && tenant.value() < roster_.size()) {
    ++accountant_.Of(tenant).arrivals;
  }
}

RejectReason ServeRuntime::Admit(const update::UpdateEvent& event,
                                 Seconds now) {
  const TenantId tenant = event.tenant();
  const bool tracked = tenant.valid() && tenant.value() < roster_.size();

  // Gate order matters: the priority and deadline gates are side-effect
  // free, so they run before the budget gate (which spends a token on
  // success). A shed tenant's bucket keeps refilling while it is shed.
  if (brownout_.state() == HealthState::kShedding &&
      PriorityOf(event) < options_.brownout.shed_min_priority) {
    ++rejected_priority_;
    if (tracked) ++accountant_.Of(tenant).rejected_priority;
    return RejectReason::kPriority;
  }
  if (options_.deadline_aware_admission && event.HasDeadline() &&
      ewma_ect_ > 0.0 &&
      now + options_.deadline_slack_factor * ewma_ect_ > event.deadline()) {
    ++rejected_deadline_;
    if (tracked) ++accountant_.Of(tenant).rejected_deadline;
    return RejectReason::kDeadline;
  }
  if (!budgets_.Admit(tenant, now)) {
    ++rejected_budget_;
    if (tracked) ++accountant_.Of(tenant).rejected_budget;
    return RejectReason::kBudget;
  }
  ++admitted_;
  if (tracked) ++accountant_.Of(tenant).admitted;
  return RejectReason::kNone;
}

void ServeRuntime::OnShedQueue(const update::UpdateEvent& event) {
  ++shed_queue_;
  const TenantId tenant = event.tenant();
  if (tenant.valid() && tenant.value() < roster_.size()) {
    ++accountant_.Of(tenant).shed_queue;
  }
}

void ServeRuntime::OnQuarantined(const update::UpdateEvent& event) {
  ++quarantined_;
  const TenantId tenant = event.tenant();
  if (tenant.valid() && tenant.value() < roster_.size()) {
    ++accountant_.Of(tenant).quarantined;
  }
}

void ServeRuntime::OnCompletion(const update::UpdateEvent& event,
                                Seconds completion) {
  const Seconds ect = completion - event.arrival_time();
  sketch_.Add(ect);
  ++completed_;
  ewma_ect_ = ewma_ect_ <= 0.0
                  ? ect
                  : (1.0 - options_.ect_ewma_alpha) * ewma_ect_ +
                        options_.ect_ewma_alpha * ect;
  const bool missed = event.HasDeadline() && completion > event.deadline();
  if (missed) ++slo_misses_;
  miss_window_.emplace_back(completion, missed);
  const TenantId tenant = event.tenant();
  if (tenant.valid() && tenant.value() < roster_.size()) {
    metrics::TenantCounters& counters = accountant_.Of(tenant);
    ++counters.completed;
    counters.ect.Add(ect);
    if (missed) ++counters.slo_misses;
  }
}

double ServeRuntime::MissRate() const {
  if (miss_window_.empty()) return 0.0;
  std::size_t missed = 0;
  for (const auto& [time, miss] : miss_window_) {
    if (miss) ++missed;
  }
  return static_cast<double>(missed) /
         static_cast<double>(miss_window_.size());
}

void ServeRuntime::Tick(const net::Network& network, Seconds now,
                        std::size_t queue_length, std::size_t active) {
  last_queue_length_ = queue_length;
  last_active_ = active;

  // Fabric stress: fold fresh sustained-overload reports into the sliding
  // window; the signal is the number of reports still inside it.
  for (LinkId link : stress_.Observe(network, now)) {
    (void)link;
    stress_reports_.push_back(now);
  }
  ObserveAndLog(now, queue_length);
}

void ServeRuntime::ObserveAndLog(Seconds now, std::size_t queue_length) {
  while (!stress_reports_.empty() &&
         stress_reports_.front() < now - options_.stress_window) {
    stress_reports_.pop_front();
  }
  while (!miss_window_.empty() &&
         miss_window_.front().first < now - options_.miss_window) {
    miss_window_.pop_front();
  }

  const BrownoutSignals signals{.queue_length = queue_length,
                                .miss_rate = MissRate(),
                                .stressed_links = stress_reports_.size()};
  const std::size_t transitions_before = brownout_.transitions().size();
  (void)brownout_.Observe(now, signals);
  for (std::size_t i = transitions_before; i < brownout_.transitions().size();
       ++i) {
    const BrownoutTransition& t = brownout_.transitions()[i];
    EmitRow(t.time, "transition",
            std::string(ToString(t.from)) + "->" + ToString(t.to));
  }
  while (recorder_.SampleDue(now)) {
    EmitRow(recorder_.next_sample(), "sample", "");
    recorder_.Advance();
  }
}

void ServeRuntime::Finish(Seconds now, std::size_t queue_length,
                          std::size_t active) {
  last_queue_length_ = queue_length;
  last_active_ = active;
  // Quiet cool-down: the stream is over and the queue has drained, but the
  // controller may still be latched high (the drain itself pushes fresh
  // stress reports into the window). Keep observing the idle fabric on a
  // fixed cadence — no new reports arrive, so the windows age out and the
  // exit hysteresis walks the ladder back down one latched level at a time.
  if (options_.cooldown_tick > 0.0) {
    const Seconds deadline = now + options_.max_cooldown;
    while (brownout_.state() != HealthState::kHealthy && now < deadline) {
      now += options_.cooldown_tick;
      ObserveAndLog(now, queue_length);
    }
  }
  EmitRow(now, "sample", "final");
}

void ServeRuntime::EmitRow(Seconds time, const char* row_type,
                           const std::string& detail) {
  auto quantile = [this](double q) {
    return sketch_.empty() ? 0.0 : sketch_.Quantile(q);
  };
  recorder_.Append({
      FormatDouble(time, 3),
      row_type,
      ToString(brownout_.state()),
      std::to_string(brownout_.DegradationLevel()),
      FormatDouble(brownout_.last_pressure(), 4),
      std::to_string(last_queue_length_),
      std::to_string(last_active_),
      std::to_string(arrivals_),
      std::to_string(admitted_),
      std::to_string(rejected_budget_),
      std::to_string(rejected_deadline_),
      std::to_string(rejected_priority_),
      std::to_string(shed_queue_),
      std::to_string(completed_),
      std::to_string(slo_misses_),
      FormatDouble(MissRate(), 4),
      FormatDouble(quantile(0.5), 4),
      FormatDouble(quantile(0.9), 4),
      FormatDouble(quantile(0.99), 4),
      FormatDouble(quantile(0.999), 4),
      detail,
  });
}

ServeSummary ServeRuntime::BuildSummary() const {
  ServeSummary summary;
  summary.enabled = true;
  summary.arrivals = arrivals_;
  summary.admitted = admitted_;
  summary.completed = completed_;
  summary.rejected_budget = rejected_budget_;
  summary.rejected_deadline = rejected_deadline_;
  summary.rejected_priority = rejected_priority_;
  summary.shed_queue = shed_queue_;
  summary.quarantined = quarantined_;
  summary.slo_misses = slo_misses_;
  if (!sketch_.empty()) {
    summary.ect_p50 = sketch_.Quantile(0.5);
    summary.ect_p90 = sketch_.Quantile(0.9);
    summary.ect_p99 = sketch_.Quantile(0.99);
    summary.ect_p999 = sketch_.Quantile(0.999);
  }
  summary.jain_ect = accountant_.JainEct();
  summary.jain_admission = accountant_.JainAdmission();
  summary.transitions = brownout_.transitions().size();
  for (std::size_t i = 0; i < 4; ++i) {
    summary.time_in_state[i] = brownout_.time_in_state()[i];
  }
  summary.final_state = brownout_.state();
  bool reached_degraded = false;
  for (const BrownoutTransition& t : brownout_.transitions()) {
    if (t.to == HealthState::kShedding) summary.reached_shedding = true;
    if (static_cast<int>(t.to) >= 1) reached_degraded = true;
  }
  summary.recovered_healthy =
      reached_degraded && brownout_.state() == HealthState::kHealthy;
  return summary;
}

std::string ServeRuntime::TimeseriesCsv() const { return recorder_.ToCsv(); }

std::string ServeRuntime::TenantReportCsv() const {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"tenant", "weight", "priority", "arrivals", "admitted",
                   "completed", "rejected_budget", "rejected_deadline",
                   "rejected_priority", "shed_queue", "quarantined",
                   "slo_misses", "ect_mean", "ect_p99", "jain_ect",
                   "jain_admission"});
  for (std::size_t i = 0; i < accountant_.tenants().size(); ++i) {
    const metrics::TenantCounters& t = accountant_.tenants()[i];
    writer.WriteRow({
        t.name,
        FormatDouble(roster_[i].weight, 3),
        std::to_string(roster_[i].priority),
        std::to_string(t.arrivals),
        std::to_string(t.admitted),
        std::to_string(t.completed),
        std::to_string(t.rejected_budget),
        std::to_string(t.rejected_deadline),
        std::to_string(t.rejected_priority),
        std::to_string(t.shed_queue),
        std::to_string(t.quarantined),
        std::to_string(t.slo_misses),
        FormatDouble(t.ect.empty() ? 0.0 : t.ect.mean(), 4),
        FormatDouble(t.ect.empty() ? 0.0 : t.ect.Percentile(0.99), 4),
        "",
        "",
    });
  }
  writer.WriteRow({"all", "", "", std::to_string(arrivals_),
                   std::to_string(admitted_), std::to_string(completed_),
                   std::to_string(rejected_budget_),
                   std::to_string(rejected_deadline_),
                   std::to_string(rejected_priority_),
                   std::to_string(shed_queue_), std::to_string(quarantined_),
                   std::to_string(slo_misses_),
                   FormatDouble(sketch_.empty() ? 0.0 : sketch_.mean(), 4),
                   FormatDouble(sketch_.empty() ? 0.0 : sketch_.Quantile(0.99),
                                4),
                   FormatDouble(accountant_.JainEct(), 4),
                   FormatDouble(accountant_.JainAdmission(), 4)});
  return out.str();
}

void ServeRuntime::SaveState(BinWriter& w) const {
  brownout_.SaveState(w);
  budgets_.SaveState(w);
  stress_.SaveState(w);
  accountant_.SaveState(w);
  sketch_.SaveState(w);
  recorder_.SaveState(w);
  w.U64(arrivals_);
  w.U64(admitted_);
  w.U64(completed_);
  w.U64(rejected_budget_);
  w.U64(rejected_deadline_);
  w.U64(rejected_priority_);
  w.U64(shed_queue_);
  w.U64(quarantined_);
  w.U64(slo_misses_);
  w.F64(ewma_ect_);
  w.Size(miss_window_.size());
  for (const auto& [time, missed] : miss_window_) {
    w.F64(time);
    w.Bool(missed);
  }
  w.Size(stress_reports_.size());
  for (Seconds t : stress_reports_) w.F64(t);
  w.U64(last_queue_length_);
  w.U64(last_active_);
}

void ServeRuntime::LoadState(BinReader& r) {
  brownout_.LoadState(r);
  budgets_.LoadState(r);
  stress_.LoadState(r);
  accountant_.LoadState(r);
  sketch_.LoadState(r);
  recorder_.LoadState(r);
  arrivals_ = r.U64();
  admitted_ = r.U64();
  completed_ = r.U64();
  rejected_budget_ = r.U64();
  rejected_deadline_ = r.U64();
  rejected_priority_ = r.U64();
  shed_queue_ = r.U64();
  quarantined_ = r.U64();
  slo_misses_ = r.U64();
  ewma_ect_ = r.F64();
  miss_window_.clear();
  const std::size_t misses = r.Size();
  for (std::size_t i = 0; i < misses; ++i) {
    const Seconds time = r.F64();
    const bool missed = r.Bool();
    miss_window_.emplace_back(time, missed);
  }
  stress_reports_.clear();
  const std::size_t reports = r.Size();
  for (std::size_t i = 0; i < reports; ++i) stress_reports_.push_back(r.F64());
  last_queue_length_ = r.U64();
  last_active_ = r.U64();
}

}  // namespace nu::serve
