// DegradableScheduler: the scheduler half of the brownout ladder. Wraps the
// full-quality P-LMTF, a shrunk-sample P-LMTF, and the probe-free FIFO
// path, and dispatches per round on SchedulingContext::DegradationLevel():
//
//   level 0   -> P-LMTF with the configured alpha (full quality)
//   level 1   -> P-LMTF with degraded_alpha candidates (cheaper rounds)
//   level >=2 -> FIFO (no probes; strict arrival order)
//
// The level is read fresh every Decide call, so the scheduler follows the
// brownout controller's transitions round by round with no state of its
// own — determinism is inherited from the wrapped schedulers.
#pragma once

#include "sched/fifo.h"
#include "sched/plmtf.h"

namespace nu::serve {

class DegradableScheduler final : public sched::Scheduler {
 public:
  explicit DegradableScheduler(sched::LmtfConfig config = {},
                               std::size_t degraded_alpha = 1);

  [[nodiscard]] sched::Decision Decide(
      sched::SchedulingContext& context) override;
  [[nodiscard]] const char* name() const override { return "degradable"; }

 private:
  sched::PlmtfScheduler full_;
  sched::PlmtfScheduler degraded_;
  sched::FifoScheduler fifo_;
};

}  // namespace nu::serve
