#include "serve/brownout.h"

#include <algorithm>

#include "common/check.h"

namespace nu::serve {

const char* ToString(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kOverloaded:
      return "overloaded";
    case HealthState::kShedding:
      return "shedding";
  }
  return "?";
}

BrownoutController::BrownoutController(BrownoutConfig config)
    : config_(config) {
  NU_EXPECTS(config_.enter_degraded < config_.enter_overloaded &&
             config_.enter_overloaded < config_.enter_shedding);
  NU_EXPECTS(config_.exit_degraded < config_.enter_degraded);
  NU_EXPECTS(config_.exit_overloaded < config_.enter_overloaded);
  NU_EXPECTS(config_.exit_shedding < config_.enter_shedding);
  NU_EXPECTS(config_.hold_enter >= 0.0 && config_.hold_exit >= 0.0);
  NU_EXPECTS(config_.queue_reference > 0.0 && config_.stress_reference > 0.0);
}

double BrownoutController::Pressure(const BrownoutSignals& signals) const {
  const double queue =
      static_cast<double>(signals.queue_length) / config_.queue_reference;
  const double stress =
      static_cast<double>(signals.stressed_links) / config_.stress_reference;
  return std::max({queue, signals.miss_rate, stress});
}

double BrownoutController::EnterThreshold(HealthState target) const {
  switch (target) {
    case HealthState::kDegraded:
      return config_.enter_degraded;
    case HealthState::kOverloaded:
      return config_.enter_overloaded;
    case HealthState::kShedding:
      return config_.enter_shedding;
    case HealthState::kHealthy:
      break;
  }
  NU_CHECK(false && "no enter threshold for healthy");
  return 0.0;
}

double BrownoutController::ExitThreshold(HealthState from) const {
  switch (from) {
    case HealthState::kDegraded:
      return config_.exit_degraded;
    case HealthState::kOverloaded:
      return config_.exit_overloaded;
    case HealthState::kShedding:
      return config_.exit_shedding;
    case HealthState::kHealthy:
      break;
  }
  NU_CHECK(false && "no exit threshold for healthy");
  return 0.0;
}

HealthState BrownoutController::Observe(Seconds now,
                                        const BrownoutSignals& signals) {
  // Accumulate time in the state we were in since the previous observation.
  if (last_observe_ >= 0.0 && now > last_observe_) {
    time_in_state_[static_cast<std::size_t>(state_)] += now - last_observe_;
  }
  last_observe_ = now;

  const double pressure = Pressure(signals);
  last_pressure_ = pressure;

  // Escalation: pressure at/above the NEXT level's enter threshold, held
  // for hold_enter. One level per latch; the timers restart after a
  // transition, so a two-level climb takes two holds.
  const bool can_escalate = state_ != HealthState::kShedding;
  const bool can_relax = state_ != HealthState::kHealthy;
  const double enter = can_escalate
                           ? EnterThreshold(static_cast<HealthState>(
                                 static_cast<int>(state_) + 1))
                           : 0.0;
  const double relax_at = can_relax ? ExitThreshold(state_) : 0.0;

  if (can_escalate && pressure >= enter) {
    below_since_ = -1.0;
    if (above_since_ < 0.0) above_since_ = now;
    if (now - above_since_ >= config_.hold_enter) {
      const HealthState from = state_;
      state_ = static_cast<HealthState>(static_cast<int>(state_) + 1);
      transitions_.push_back({now, from, state_, pressure});
      above_since_ = -1.0;
      below_since_ = -1.0;
    }
    return state_;
  }
  if (can_relax && pressure <= relax_at) {
    above_since_ = -1.0;
    if (below_since_ < 0.0) below_since_ = now;
    if (now - below_since_ >= config_.hold_exit) {
      const HealthState from = state_;
      state_ = static_cast<HealthState>(static_cast<int>(state_) - 1);
      transitions_.push_back({now, from, state_, pressure});
      above_since_ = -1.0;
      below_since_ = -1.0;
    }
    return state_;
  }
  // Inside the hysteresis band: both hold timers reset — persistence must
  // be CONTINUOUS to latch.
  above_since_ = -1.0;
  below_since_ = -1.0;
  return state_;
}

void BrownoutController::SaveState(BinWriter& w) const {
  w.U8(static_cast<std::uint8_t>(state_));
  w.F64(above_since_);
  w.F64(below_since_);
  w.F64(last_observe_);
  w.F64(last_pressure_);
  w.Size(transitions_.size());
  for (const BrownoutTransition& t : transitions_) {
    w.F64(t.time);
    w.U8(static_cast<std::uint8_t>(t.from));
    w.U8(static_cast<std::uint8_t>(t.to));
    w.F64(t.pressure);
  }
  for (Seconds s : time_in_state_) w.F64(s);
}

void BrownoutController::LoadState(BinReader& r) {
  const std::uint8_t state = r.U8();
  if (state > static_cast<std::uint8_t>(HealthState::kShedding)) {
    throw CorruptInput("brownout state out of range");
  }
  state_ = static_cast<HealthState>(state);
  above_since_ = r.F64();
  below_since_ = r.F64();
  last_observe_ = r.F64();
  last_pressure_ = r.F64();
  transitions_.clear();
  const std::size_t n = r.Size();
  transitions_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BrownoutTransition t;
    t.time = r.F64();
    const std::uint8_t from = r.U8();
    const std::uint8_t to = r.U8();
    if (from > 3 || to > 3) throw CorruptInput("transition state range");
    t.from = static_cast<HealthState>(from);
    t.to = static_cast<HealthState>(to);
    t.pressure = r.F64();
    transitions_.push_back(t);
  }
  for (Seconds& s : time_in_state_) s = r.F64();
}

}  // namespace nu::serve
