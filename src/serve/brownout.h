// Brownout controller: the health state machine that trades result quality
// for latency when offered load exceeds capacity, and trades back when
// pressure drops — graceful degradation instead of collapse.
//
// States and degradation ladder (each level keeps everything above it):
//
//   level 0  kHealthy     full quality: P-LMTF with the full probe sample.
//   level 1  kDegraded    shrink the probe candidate count to
//                         degraded_alpha (cheaper rounds, slightly worse
//                         picks).
//   level 2  kOverloaded  fall back to the FIFO path (no probes at all) and
//                         suppress OPTIONAL cadence audits (fault-triggered
//                         and final audits always run).
//   level 3  kShedding    additionally reject tenants whose priority is
//                         below shed_min_priority at admission.
//
// The driving signal is a scalar pressure in [0, ~1+]:
//
//   pressure = max(queue_length / queue_reference,
//                  deadline_miss_rate,
//                  stressed_links / stress_reference)
//
// i.e. the worst of queue depth, SLO misses, and guard::LinkStressMonitor
// fabric stress. Transitions move ONE level at a time and are latched with
// hysteresis: pressure must sit at or above the next level's enter
// threshold for hold_enter seconds to escalate, and at or below the current
// level's exit threshold for hold_exit seconds to relax — with exit
// thresholds strictly below enter thresholds, the controller cannot flap.
// Every transition is recorded (time, from, to, pressure) and surfaced as a
// typed row in the serve timeseries.
//
// Pure virtual-time state machine: no RNG, no wall clock; identical Observe
// sequences produce identical transitions, and the full state (including
// hold timers and the transition log) snapshots with the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/types.h"

namespace nu::serve {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kOverloaded = 2,
  kShedding = 3,
};

[[nodiscard]] const char* ToString(HealthState state);

struct BrownoutConfig {
  /// Enter thresholds: pressure to escalate INTO each state (from the state
  /// below). Must be increasing.
  double enter_degraded = 0.5;
  double enter_overloaded = 0.75;
  double enter_shedding = 0.95;
  /// Exit thresholds: pressure to relax OUT of each state (one level down).
  /// Each must be strictly below the matching enter threshold (hysteresis
  /// band).
  double exit_degraded = 0.3;
  double exit_overloaded = 0.55;
  double exit_shedding = 0.75;
  /// Pressure must persist beyond a threshold this long before the
  /// transition fires (latching; 0 = immediate).
  Seconds hold_enter = 0.5;
  Seconds hold_exit = 2.0;
  /// Queue length mapping to pressure 1.0.
  double queue_reference = 16.0;
  /// Stressed-link count mapping to pressure 1.0.
  double stress_reference = 4.0;
  /// Probe candidate count at degradation level 1 (vs the full alpha).
  std::size_t degraded_alpha = 1;
  /// In kShedding, tenants with priority below this are rejected.
  int shed_min_priority = 1;
};

/// One pressure observation's inputs.
struct BrownoutSignals {
  std::size_t queue_length = 0;
  /// Deadline-miss fraction over the serve layer's sliding window, [0, 1].
  double miss_rate = 0.0;
  /// Links currently in a sustained-overload episode (LinkStressMonitor).
  std::size_t stressed_links = 0;
};

/// A latched state change, logged for the timeseries.
struct BrownoutTransition {
  Seconds time = 0.0;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  /// Pressure at the moment the transition latched.
  double pressure = 0.0;
};

class BrownoutController {
 public:
  explicit BrownoutController(BrownoutConfig config);

  /// Feeds one observation at virtual time `now` (nondecreasing across
  /// calls) and returns the state after any latched transition. At most one
  /// level of change per call.
  HealthState Observe(Seconds now, const BrownoutSignals& signals);

  [[nodiscard]] HealthState state() const { return state_; }
  /// Degradation ladder level == numeric state (0..3).
  [[nodiscard]] int DegradationLevel() const {
    return static_cast<int>(state_);
  }
  [[nodiscard]] double last_pressure() const { return last_pressure_; }
  [[nodiscard]] const std::vector<BrownoutTransition>& transitions() const {
    return transitions_;
  }
  /// Virtual seconds accumulated in each state (index = numeric state),
  /// measured between consecutive Observe calls.
  [[nodiscard]] const std::vector<Seconds>& time_in_state() const {
    return time_in_state_;
  }

  [[nodiscard]] const BrownoutConfig& config() const { return config_; }

  /// Scalar pressure of one observation (exposed for tests/telemetry).
  [[nodiscard]] double Pressure(const BrownoutSignals& signals) const;

  // Snapshot support: state, hold timers, pressure, transition log, and
  // time-in-state accumulators all round-trip.
  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

 private:
  [[nodiscard]] double EnterThreshold(HealthState target) const;
  [[nodiscard]] double ExitThreshold(HealthState from) const;

  BrownoutConfig config_;
  HealthState state_ = HealthState::kHealthy;
  /// Since when pressure has continuously been at/above the next enter
  /// threshold; < 0 = not currently.
  Seconds above_since_ = -1.0;
  /// Since when pressure has continuously been at/below the exit threshold.
  Seconds below_since_ = -1.0;
  Seconds last_observe_ = -1.0;
  double last_pressure_ = 0.0;
  std::vector<BrownoutTransition> transitions_;
  std::vector<Seconds> time_in_state_ = std::vector<Seconds>(4, 0.0);
};

}  // namespace nu::serve
