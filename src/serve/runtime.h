// ServeRuntime: the online-serving layer's per-run state, owned by the
// simulator when SimConfig::serve.enabled. It glues the pieces of the
// brownout loop together:
//
//   admission   — per-tenant token buckets (guard::TenantBudgets),
//                 deadline-aware rejection, and the Shedding-state priority
//                 floor; every outcome is counted per tenant.
//   health      — a BrownoutController fed queue depth, the sliding-window
//                 deadline-miss rate, and fabric stress from its own
//                 guard::LinkStressMonitor; its level drives the
//                 DegradableScheduler, optional-audit suppression, and
//                 priority shedding.
//   telemetry   — admitted-event ECT percentiles via a deterministic
//                 PercentileSketch, per-tenant ledgers + Jain's indexes
//                 (metrics::TenantAccountant), and the periodic/transition
//                 timeseries (TimeseriesRecorder).
//
// The runtime draws from no Rng and is driven purely by the simulator's
// virtual-time call sequence, so serve-mode runs stay bit-reproducible; its
// full state (including the formatted timeseries rows) snapshots with the
// run as part of payload format v4.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/types.h"
#include "guard/overload.h"
#include "guard/tenant_budget.h"
#include "metrics/sketch.h"
#include "metrics/tenant.h"
#include "net/network.h"
#include "serve/arrivals.h"
#include "serve/brownout.h"
#include "serve/timeseries.h"
#include "update/update_event.h"

namespace nu::serve {

/// Why serve admission rejected an event (kNone = admitted).
enum class RejectReason : std::uint8_t {
  kNone,
  kBudget,
  kDeadline,
  kPriority,
};

[[nodiscard]] const char* ToString(RejectReason reason);

struct ServeOptions {
  /// Master switch. Disabled costs nothing: the simulator keeps no serve
  /// state, draws nothing, and snapshots gain no serve section.
  bool enabled = false;
  /// Arrival-process shape (the tenant roster lives here; the runtime reads
  /// arrivals.EffectiveTenants() for names, weights, priorities, SLOs).
  ArrivalConfig arrivals;
  BrownoutConfig brownout;
  guard::TenantBudgetConfig budget;
  /// Reject events predicted to miss their deadline anyway: an event with a
  /// deadline is rejected when now + slack * EWMA(ECT) already exceeds it.
  /// Cheap, deterministic, and conservative at slack < 1.
  bool deadline_aware_admission = true;
  double deadline_slack_factor = 0.5;
  /// EWMA smoothing for the completed-ECT estimate.
  double ect_ewma_alpha = 0.2;
  /// Cadence of timeseries sample rows (virtual seconds).
  Seconds sample_period = 1.0;
  /// Sliding window for the deadline-miss rate signal.
  Seconds miss_window = 10.0;
  /// Sliding window over LinkStressMonitor reports for the stress signal.
  Seconds stress_window = 5.0;
  /// Fabric-stress detection for the brownout signal (independent of the
  /// cascade engine's monitor).
  guard::LinkStressMonitor::Options stress{.utilization_threshold = 0.95,
                                           .hold_time = 0.5};
  /// Quiet cool-down after the stream drains: the controller keeps
  /// observing the idle fabric on this cadence until it relaxes back to
  /// kHealthy or `max_cooldown` virtual seconds elapse. Windowed signals
  /// (stress reports, SLO misses) age out with no new input, so the exit
  /// hysteresis can walk the ladder down — the recovery half of the
  /// brownout story stays observable even when the last completion lands
  /// exactly at end of stream. 0 disables the cool-down.
  Seconds cooldown_tick = 0.5;
  Seconds max_cooldown = 60.0;
  metrics::PercentileSketch::Options sketch;
};

/// Serve-mode run outcome, folded into sim::SimResult.
struct ServeSummary {
  bool enabled = false;
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t completed = 0;
  std::size_t rejected_budget = 0;
  std::size_t rejected_deadline = 0;
  std::size_t rejected_priority = 0;
  /// Admitted events later shed from a full queue (overload guard victims).
  std::size_t shed_queue = 0;
  std::size_t quarantined = 0;
  std::size_t slo_misses = 0;
  double ect_p50 = 0.0;
  double ect_p90 = 0.0;
  double ect_p99 = 0.0;
  double ect_p999 = 0.0;
  double jain_ect = 1.0;
  double jain_admission = 1.0;
  std::size_t transitions = 0;
  std::array<Seconds, 4> time_in_state{};
  HealthState final_state = HealthState::kHealthy;
  bool reached_shedding = false;
  /// Reached at least kDegraded and ended the run back at kHealthy — the
  /// recovery half of the hysteresis story.
  bool recovered_healthy = false;
};

class ServeRuntime {
 public:
  explicit ServeRuntime(const ServeOptions& options);

  // --- Admission (called by the simulator's admit path) -------------------

  /// The arrival process emitted `event` (before any admission gate).
  void OnArrival(const update::UpdateEvent& event);

  /// Runs the serve admission gates for `event` at `now`. kNone = admitted
  /// (counted); anything else = rejected (counted per tenant + reason) and
  /// the caller must shed the event.
  RejectReason Admit(const update::UpdateEvent& event, Seconds now);

  /// An ADMITTED event was shed from the full queue by the overload guard.
  void OnShedQueue(const update::UpdateEvent& event);

  /// An admitted event was quarantined as poison by the watchdog.
  void OnQuarantined(const update::UpdateEvent& event);

  /// An admitted event completed at `completion` (virtual time). Feeds the
  /// ECT sketch, the tenant ledger, the SLO-miss window, and the EWMA.
  void OnCompletion(const update::UpdateEvent& event, Seconds completion);

  // --- Health loop --------------------------------------------------------

  /// Observes pressure at `now` and advances the brownout state machine;
  /// emits due timeseries samples and any latched transition row.
  /// `queue_length` is the update-queue depth, `active` the number of
  /// events executing in the current round.
  void Tick(const net::Network& network, Seconds now,
            std::size_t queue_length, std::size_t active);

  /// Runs the quiet cool-down (idle observations until the controller is
  /// healthy again or the cap elapses) and emits the final timeseries
  /// sample at end of run.
  void Finish(Seconds now, std::size_t queue_length, std::size_t active);

  // --- Degradation ladder reads ------------------------------------------

  [[nodiscard]] HealthState state() const { return brownout_.state(); }
  [[nodiscard]] int DegradationLevel() const {
    return brownout_.DegradationLevel();
  }
  /// Level >= 2 (kOverloaded and above): cadence audits are suppressed;
  /// fault-triggered and final audits still run.
  [[nodiscard]] bool SuppressOptionalAudits() const {
    return DegradationLevel() >= 2;
  }

  // --- Results ------------------------------------------------------------

  [[nodiscard]] const BrownoutController& brownout() const {
    return brownout_;
  }
  [[nodiscard]] const metrics::TenantAccountant& accountant() const {
    return accountant_;
  }
  [[nodiscard]] const metrics::PercentileSketch& sketch() const {
    return sketch_;
  }
  [[nodiscard]] const TimeseriesRecorder& timeseries() const {
    return recorder_;
  }

  [[nodiscard]] ServeSummary BuildSummary() const;
  [[nodiscard]] std::string TimeseriesCsv() const;
  /// Per-tenant report CSV (one row per tenant + a "all" summary row with
  /// the Jain indexes).
  [[nodiscard]] std::string TenantReportCsv() const;

  // --- Snapshot support (payload format v4) ------------------------------
  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

 private:
  [[nodiscard]] double MissRate() const;
  /// Ages the sliding windows to `now`, feeds one observation to the
  /// brownout controller, and emits transition + due sample rows.
  void ObserveAndLog(Seconds now, std::size_t queue_length);
  void EmitRow(Seconds time, const char* row_type, const std::string& detail);
  [[nodiscard]] int PriorityOf(const update::UpdateEvent& event) const;

  ServeOptions options_;
  std::vector<TenantSpec> roster_;
  BrownoutController brownout_;
  guard::TenantBudgets budgets_;
  guard::LinkStressMonitor stress_;
  metrics::TenantAccountant accountant_;
  metrics::PercentileSketch sketch_;
  TimeseriesRecorder recorder_;

  std::size_t arrivals_ = 0;
  std::size_t admitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t rejected_budget_ = 0;
  std::size_t rejected_deadline_ = 0;
  std::size_t rejected_priority_ = 0;
  std::size_t shed_queue_ = 0;
  std::size_t quarantined_ = 0;
  std::size_t slo_misses_ = 0;
  /// EWMA of completed ECTs; 0 until the first completion.
  double ewma_ect_ = 0.0;
  /// Sliding completion window: (completion time, missed-deadline flag).
  std::deque<std::pair<Seconds, bool>> miss_window_;
  /// Times of recent LinkStressMonitor reports (stress signal window).
  std::deque<Seconds> stress_reports_;
  std::size_t last_queue_length_ = 0;
  std::size_t last_active_ = 0;
};

}  // namespace nu::serve
