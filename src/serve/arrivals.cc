#include "serve/arrivals.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng_streams.h"

namespace nu::serve {

const char* ToString(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
  }
  return "?";
}

ArrivalProcess ParseArrivalProcess(const std::string& name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "bursty") return ArrivalProcess::kBursty;
  if (name == "diurnal") return ArrivalProcess::kDiurnal;
  NU_CHECK(false && "unknown arrival process name");
  return ArrivalProcess::kPoisson;
}

std::vector<TenantSpec> ArrivalConfig::EffectiveTenants() const {
  if (!tenants.empty()) return tenants;
  return {TenantSpec{.name = "tenant0"}};
}

double IntensityFactor(const ArrivalConfig& config, Seconds t) {
  switch (config.process) {
    case ArrivalProcess::kPoisson:
      return 1.0;
    case ArrivalProcess::kBursty: {
      // On/off factors chosen so the time-average factor is exactly 1:
      //   f * m * off + (1 - f) * off = 1.
      const double f = config.burst_fraction;
      const double m = config.burst_multiplier;
      const double off = 1.0 / (f * m + (1.0 - f));
      const double phase = std::fmod(t, config.burst_period);
      return phase < f * config.burst_period ? m * off : off;
    }
    case ArrivalProcess::kDiurnal:
      return 1.0 + config.diurnal_amplitude *
                       std::sin(2.0 * std::numbers::pi * t /
                                config.diurnal_period);
  }
  return 1.0;
}

double PeakIntensityFactor(const ArrivalConfig& config) {
  switch (config.process) {
    case ArrivalProcess::kPoisson:
      return 1.0;
    case ArrivalProcess::kBursty: {
      const double f = config.burst_fraction;
      const double m = config.burst_multiplier;
      return m / (f * m + (1.0 - f));
    }
    case ArrivalProcess::kDiurnal:
      return 1.0 + config.diurnal_amplitude;
  }
  return 1.0;
}

std::vector<update::UpdateEvent> GenerateArrivals(
    const ArrivalConfig& config, trace::TrafficGenerator& flow_source,
    std::uint64_t base_seed) {
  NU_EXPECTS(config.rate > 0.0);
  NU_EXPECTS(config.duration > 0.0);
  NU_EXPECTS(config.burst_fraction > 0.0 && config.burst_fraction < 1.0);
  NU_EXPECTS(config.burst_multiplier >= 1.0);
  NU_EXPECTS(config.diurnal_amplitude >= 0.0 &&
             config.diurnal_amplitude < 1.0);

  const std::vector<TenantSpec> tenants = config.EffectiveTenants();
  double total_weight = 0.0;
  for (const TenantSpec& t : tenants) {
    NU_EXPECTS(t.weight > 0.0);
    total_weight += t.weight;
  }

  Rng arrival_rng(StreamSeed(base_seed, RngStream::kServeArrivals));
  update::EventGenerator generator(
      flow_source, Rng(StreamSeed(base_seed, RngStream::kServeFlows)));
  const update::SyntheticEventConfig event_config{
      .min_flows = config.min_flows,
      .max_flows = config.max_flows,
      .kind = update::EventKind::kGeneric};

  // Poisson thinning: draw a homogeneous process at the peak rate, accept
  // each point with probability intensity(t) / peak. The thinning coin is
  // drawn for EVERY candidate point (even under kPoisson, where it always
  // accepts) so all three processes consume the arrival stream identically
  // per candidate — switching the process shape never desynchronizes the
  // tenant draws that follow.
  const double peak_rate = config.rate * PeakIntensityFactor(config);
  std::vector<update::UpdateEvent> events;
  Seconds t = 0.0;
  while (true) {
    t += arrival_rng.Exponential(peak_rate);
    if (t >= config.duration) break;
    const double accept =
        config.rate * IntensityFactor(config, t) / peak_rate;
    if (arrival_rng.Uniform01() >= accept) continue;

    // Weighted tenant draw (cumulative walk, roster order).
    const double pick = arrival_rng.Uniform01() * total_weight;
    std::size_t tenant_index = tenants.size() - 1;
    double cumulative = 0.0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      cumulative += tenants[i].weight;
      if (pick < cumulative) {
        tenant_index = i;
        break;
      }
    }

    update::UpdateEvent event = generator.Next(t, event_config);
    event.SetTenant(TenantId(static_cast<TenantId::rep_type>(tenant_index)));
    if (tenants[tenant_index].slo_deadline > 0.0) {
      event.SetDeadline(t + tenants[tenant_index].slo_deadline);
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace nu::serve
