#include "serve/timeseries.h"

#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/csv.h"

namespace nu::serve {

TimeseriesRecorder::TimeseriesRecorder(Seconds sample_period)
    : sample_period_(sample_period) {
  NU_EXPECTS(sample_period_ > 0.0);
}

const std::vector<std::string>& TimeseriesRecorder::Header() {
  static const std::vector<std::string> kHeader = {
      "time",           "row",
      "health",         "level",
      "pressure",       "queue",
      "active",         "arrivals",
      "admitted",       "rejected_budget",
      "rejected_deadline", "rejected_priority",
      "shed_queue",     "completed",
      "slo_misses",     "miss_rate",
      "ect_p50",        "ect_p90",
      "ect_p99",        "ect_p999",
      "detail"};
  return kHeader;
}

void TimeseriesRecorder::Append(std::vector<std::string> row) {
  NU_EXPECTS(row.size() == Header().size());
  rows_.push_back(std::move(row));
}

void TimeseriesRecorder::WriteCsv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.WriteRow(Header());
  for (const std::vector<std::string>& row : rows_) writer.WriteRow(row);
}

std::string TimeseriesRecorder::ToCsv() const {
  std::ostringstream out;
  WriteCsv(out);
  return out.str();
}

void TimeseriesRecorder::SaveState(BinWriter& w) const {
  w.F64(next_sample_);
  w.Size(rows_.size());
  for (const std::vector<std::string>& row : rows_) {
    w.Size(row.size());
    for (const std::string& field : row) w.Str(field);
  }
}

void TimeseriesRecorder::LoadState(BinReader& r) {
  next_sample_ = r.F64();
  rows_.clear();
  const std::size_t n = r.Size();
  rows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row;
    const std::size_t fields = r.Size();
    row.reserve(fields);
    for (std::size_t f = 0; f < fields; ++f) row.push_back(r.Str());
    rows_.push_back(std::move(row));
  }
}

}  // namespace nu::serve
