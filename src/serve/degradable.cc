#include "serve/degradable.h"

namespace nu::serve {

DegradableScheduler::DegradableScheduler(sched::LmtfConfig config,
                                         std::size_t degraded_alpha)
    : full_(config),
      degraded_(sched::LmtfConfig{.alpha = degraded_alpha}) {}

sched::Decision DegradableScheduler::Decide(
    sched::SchedulingContext& context) {
  const int level = context.DegradationLevel();
  if (level >= 2) return fifo_.Decide(context);
  if (level == 1) return degraded_.Decide(context);
  return full_.Decide(context);
}

}  // namespace nu::serve
