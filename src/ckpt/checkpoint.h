// Checkpoint directory management and recovery bookkeeping.
//
// A checkpoint directory holds snapshot/journal segment pairs keyed by the
// scheduling round at which the snapshot was taken:
//
//   snap-0000000042.nuck   full controller state before round 43
//   wal-0000000042.nuwal   committed operations since that snapshot
//
// The journal is rotated (a fresh wal segment started) every time a
// snapshot is written, so recovery needs exactly one pair: the newest
// loadable snapshot plus its journal. Older pairs are retained for
// fallback when the newest snapshot fails validation. Formats and
// recovery semantics are documented in docs/model.md §11.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace nu::ckpt {

/// Simulator-facing checkpoint switches. Default-constructed means
/// disabled: no files are touched, no state is serialized, and no Rng is
/// consulted — fixed-seed runs are bit-identical to a build without the
/// subsystem.
struct CheckpointConfig {
  /// Directory for snapshot/journal segments; empty disables checkpointing.
  std::string dir;
  /// Snapshot every N scheduling rounds (>= 1). A snapshot is always taken
  /// before the first round so recovery never depends on re-reading inputs
  /// mid-stream.
  std::size_t cadence = 1;

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// Per-process recovery outcome. Deliberately NOT serialized into
/// snapshots: it describes what this process did to recover, so keeping it
/// out of the payload keeps snapshot bytes identical between an
/// uninterrupted run and a recovered one.
struct RecoveryInfo {
  bool recovered = false;
  /// Round of the snapshot that was restored.
  std::uint64_t snapshot_round = 0;
  /// On-disk size of the restored snapshot file.
  std::uint64_t snapshot_bytes = 0;
  /// Journal records cross-checked during deterministic re-execution.
  std::uint64_t wal_records_replayed = 0;
  /// Torn-tail bytes truncated from the journal before replay.
  std::uint64_t torn_bytes_truncated = 0;
  /// Newer snapshots skipped because they failed validation.
  std::uint64_t snapshots_skipped = 0;
  /// Wall-clock spent restoring + replaying (nondeterministic).
  double recovery_wall_seconds = 0.0;
};

/// File names for the segment pair of a snapshot taken at `round`.
[[nodiscard]] std::filesystem::path SnapshotPath(
    const std::filesystem::path& dir, std::uint64_t round);
[[nodiscard]] std::filesystem::path JournalPath(
    const std::filesystem::path& dir, std::uint64_t round);

/// Rounds that have a snapshot file present, newest first. Unparseable
/// file names are ignored.
[[nodiscard]] std::vector<std::uint64_t> ListSnapshotRounds(
    const std::filesystem::path& dir);

}  // namespace nu::ckpt
