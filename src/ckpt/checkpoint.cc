#include "ckpt/checkpoint.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace nu::ckpt {
namespace {

std::string RoundStem(std::uint64_t round) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%010llu",
                static_cast<unsigned long long>(round));
  return buf;
}

}  // namespace

std::filesystem::path SnapshotPath(const std::filesystem::path& dir,
                                   std::uint64_t round) {
  return dir / ("snap-" + RoundStem(round) + ".nuck");
}

std::filesystem::path JournalPath(const std::filesystem::path& dir,
                                  std::uint64_t round) {
  return dir / ("wal-" + RoundStem(round) + ".nuwal");
}

std::vector<std::uint64_t> ListSnapshotRounds(
    const std::filesystem::path& dir) {
  std::vector<std::uint64_t> rounds;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view prefix = "snap-";
    constexpr std::string_view suffix = ".nuck";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const char* first = name.data() + prefix.size();
    const char* last = name.data() + name.size() - suffix.size();
    std::uint64_t round = 0;
    const auto [ptr, err] = std::from_chars(first, last, round);
    if (err != std::errc() || ptr != last) continue;
    rounds.push_back(round);
  }
  std::sort(rounds.begin(), rounds.end(), std::greater<>());
  return rounds;
}

}  // namespace nu::ckpt
