// Write-ahead journal of committed controller operations.
//
// Between snapshots the simulator appends one fixed-layout record per
// committed operation (event arrival/execute/complete, migration cost,
// fault occurrence, shed/quarantine/requeue). Each record is framed as
//
//   u32 payload length | u32 CRC32(payload) | payload
//
// and flushed immediately, so the on-disk journal is always a valid prefix
// plus at most one torn (partially written) final frame.
//
// Torn tail vs corruption — the reader distinguishes them deliberately:
//   * a final frame whose header or payload extends past EOF is a TORN
//     TAIL: the bytes were cut off mid-write by a crash. It is reported via
//     `torn_bytes` and must be truncated by the caller, never replayed.
//   * a frame that is fully present but fails its CRC, or whose length
//     field exceeds the sanity bound, is CORRUPTION (bit rot, concurrent
//     writer, format bug) and throws JournalCorruption — recovery must fail
//     loudly rather than silently diverge.
//
// The journal is a commit record, not a redo log: recovery re-executes
// deterministically from the snapshot and cross-checks each regenerated
// operation against the journal (see sim::Simulator::Resume).
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace nu::ckpt {

/// Largest payload a writer will ever produce; a complete frame header
/// claiming more than this is corruption, not a torn tail.
inline constexpr std::uint32_t kMaxWalPayload = 4096;

/// Thrown when a fully-present journal record fails validation.
class JournalCorruption : public std::runtime_error {
 public:
  explicit JournalCorruption(const std::string& what)
      : std::runtime_error("journal corruption: " + what) {}
};

/// Committed-operation kinds. Values are part of the on-disk format;
/// append only, never renumber.
enum class WalOp : std::uint8_t {
  kArrival = 1,     // subject = event id, value = arrival time
  kExecute = 2,     // subject = event id, value = execution start time
  kMigration = 3,   // subject = event id, value = committed migration cost
  kComplete = 4,    // subject = event id, value = completion time
  kShed = 5,        // subject = event id, value = shed time
  kQuarantine = 6,  // subject = event id, value = quarantine time
  kRequeue = 7,     // subject = event id, value = requeue time
  kFault = 8,       // subject = fault plan index, value = fault time
};

[[nodiscard]] const char* WalOpName(WalOp op);

/// One committed operation. `value` comparisons are bitwise: replay
/// verification demands bit-identical re-execution, not approximate.
struct WalRecord {
  WalOp op = WalOp::kArrival;
  std::uint64_t subject = 0;
  double value = 0.0;

  [[nodiscard]] bool BitwiseEquals(const WalRecord& other) const;
  [[nodiscard]] std::string DebugString() const;
};

/// Result of scanning a journal file.
struct JournalContents {
  std::vector<WalRecord> records;
  /// Length of the valid prefix; the caller truncates the file here before
  /// appending new records.
  std::uint64_t valid_bytes = 0;
  /// Trailing bytes discarded as a torn tail (0 for a clean journal).
  std::uint64_t torn_bytes = 0;
};

/// Parses a journal file. A missing file reads as empty (a snapshot may be
/// taken and the process die before the first append). Torn tails are
/// dropped and reported; corruption throws JournalCorruption.
[[nodiscard]] JournalContents ReadJournal(const std::filesystem::path& path);

/// Encodes one record as a complete frame (exposed for tests that build
/// journals byte-by-byte).
[[nodiscard]] std::string EncodeWalFrame(const WalRecord& record);

/// Append-only journal writer. Every Append flushes, so a crash can tear
/// at most the record being written.
class JournalWriter {
 public:
  JournalWriter() = default;

  /// Opens `path` for appending after truncating it to `keep_bytes`
  /// (drops a previously detected torn tail; pass 0 for a fresh journal).
  void Open(const std::filesystem::path& path, std::uint64_t keep_bytes);
  void Close();
  [[nodiscard]] bool is_open() const { return out_.is_open(); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// Appends a complete frame and flushes.
  void Append(const WalRecord& record);

  /// Deliberately writes only a prefix of the frame (crash injection:
  /// emulates the process dying mid-write).
  void AppendTorn(const WalRecord& record);

 private:
  std::ofstream out_;
  std::filesystem::path path_;
};

}  // namespace nu::ckpt
