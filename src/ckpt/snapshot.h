// Snapshot file framing for crash-consistent checkpointing.
//
// A snapshot file is an opaque serialized payload (produced by the
// simulator's state serializer) wrapped in a self-validating frame:
//
//   u64 magic "NUSNAP01"  | u32 format version | u64 payload size
//   u32 CRC32(payload)    | payload bytes
//
// Writes are atomic: the frame is written to `<path>.tmp` and renamed into
// place, so a crash during a snapshot write leaves at most a stray .tmp
// file and never a half-visible snapshot. Readers validate magic, version,
// size, and checksum and throw SnapshotCorruption on any mismatch —
// recovery treats that as "fall back to an older snapshot", never as data.
//
// Version policy: the version is bumped on ANY payload layout change and
// readers require an exact match. Snapshots are short-lived run artifacts
// (a crashed run is resumed by the same binary), not archives, so there is
// deliberately no cross-version migration path.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>

namespace nu::ckpt {

/// Current snapshot payload format version.
/// v2: network section stores canonically sorted link-flow id lists and an
/// interned used-paths table (paths written once, placements reference them
/// by table index) instead of a deep path per placement.
/// v4: serve-mode runs append a serve section (brownout state machine,
/// tenant budgets/ledgers, percentile sketch, timeseries rows) after the
/// dynamic-fault list; absent when SimConfig::serve is disabled.
/// v5: sharded runs append a shard section (partition fingerprint + the
/// engine's logical counters) after the serve section; absent when
/// SimConfig::shards < 2. Thread count never affects the payload.
/// v6: grey-failure/reconciliation runs append a recon section (dataplane
/// divergence set, reconciler health/backoff/streaks/stats, grey RNG
/// state) after the shard section; absent when both SimConfig::faults.grey
/// and SimConfig::recon are disabled. The shard section gains the recon
/// fan-out counters, and the timeline accepts the three appended
/// occurrence kinds (kGreyApply, kRuleLoss, kReconcile).
inline constexpr std::uint32_t kSnapshotVersion = 6;

/// Thrown when a snapshot file fails frame validation (bad magic, version
/// mismatch, truncation, or checksum failure).
class SnapshotCorruption : public std::runtime_error {
 public:
  explicit SnapshotCorruption(const std::string& what)
      : std::runtime_error("snapshot corruption: " + what) {}
};

/// Atomically writes `payload` to `path` (tmp file + rename) framed with
/// magic, version, length, and CRC32. Returns total bytes on disk.
std::uint64_t WriteSnapshotFile(const std::filesystem::path& path,
                                std::string_view payload);

/// Reads and validates a snapshot file, returning the raw payload.
/// Throws SnapshotCorruption on any frame violation and
/// std::runtime_error when the file cannot be opened.
[[nodiscard]] std::string ReadSnapshotFile(const std::filesystem::path& path);

}  // namespace nu::ckpt
