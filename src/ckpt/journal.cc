#include "ckpt/journal.h"

#include <bit>
#include <sstream>

#include "common/binio.h"
#include "common/check.h"

namespace nu::ckpt {
namespace {

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

std::string EncodePayload(const WalRecord& record) {
  BinWriter w;
  w.U8(static_cast<std::uint8_t>(record.op));
  w.U64(record.subject);
  w.F64(record.value);
  return w.TakeBuffer();
}

WalRecord DecodePayload(std::string_view payload) {
  BinReader r(payload);
  WalRecord record;
  const std::uint8_t op = r.U8();
  if (op < static_cast<std::uint8_t>(WalOp::kArrival) ||
      op > static_cast<std::uint8_t>(WalOp::kFault)) {
    throw JournalCorruption("unknown op " + std::to_string(op));
  }
  record.op = static_cast<WalOp>(op);
  record.subject = r.U64();
  record.value = r.F64();
  r.ExpectEnd();
  return record;
}

}  // namespace

const char* WalOpName(WalOp op) {
  switch (op) {
    case WalOp::kArrival:
      return "arrival";
    case WalOp::kExecute:
      return "execute";
    case WalOp::kMigration:
      return "migration";
    case WalOp::kComplete:
      return "complete";
    case WalOp::kShed:
      return "shed";
    case WalOp::kQuarantine:
      return "quarantine";
    case WalOp::kRequeue:
      return "requeue";
    case WalOp::kFault:
      return "fault";
  }
  return "?";
}

bool WalRecord::BitwiseEquals(const WalRecord& other) const {
  return op == other.op && subject == other.subject &&
         std::bit_cast<std::uint64_t>(value) ==
             std::bit_cast<std::uint64_t>(other.value);
}

std::string WalRecord::DebugString() const {
  std::ostringstream out;
  out << WalOpName(op) << "(subject=" << subject << ", value=" << value << ")";
  return out.str();
}

std::string EncodeWalFrame(const WalRecord& record) {
  const std::string payload = EncodePayload(record);
  BinWriter frame;
  frame.U32(static_cast<std::uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  frame.Bytes(payload.data(), payload.size());
  return frame.TakeBuffer();
}

JournalContents ReadJournal(const std::filesystem::path& path) {
  JournalContents contents;
  std::ifstream in(path, std::ios::binary);
  if (!in) return contents;  // missing journal == no committed records
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());

  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < kFrameHeaderBytes) break;  // torn mid-header
    BinReader header(std::string_view(bytes).substr(pos, kFrameHeaderBytes));
    const std::uint32_t length = header.U32();
    const std::uint32_t crc = header.U32();
    if (length > kMaxWalPayload) {
      // The writer never produces frames this large; a complete header
      // claiming one is corruption, not a crash artifact.
      throw JournalCorruption("frame length " + std::to_string(length) +
                              " exceeds bound at offset " +
                              std::to_string(pos));
    }
    if (remaining < kFrameHeaderBytes + length) break;  // torn mid-payload
    const std::string_view payload =
        std::string_view(bytes).substr(pos + kFrameHeaderBytes, length);
    if (Crc32(payload) != crc) {
      throw JournalCorruption("checksum mismatch at offset " +
                              std::to_string(pos));
    }
    try {
      contents.records.push_back(DecodePayload(payload));
    } catch (const CorruptInput& e) {
      throw JournalCorruption("undecodable payload at offset " +
                              std::to_string(pos) + ": " + e.what());
    }
    pos += kFrameHeaderBytes + length;
  }
  contents.valid_bytes = pos;
  contents.torn_bytes = bytes.size() - pos;
  return contents;
}

void JournalWriter::Open(const std::filesystem::path& path,
                         std::uint64_t keep_bytes) {
  NU_EXPECTS(!is_open());
  path_ = path;
  std::error_code ec;
  const auto on_disk = std::filesystem::file_size(path, ec);
  if (!ec && on_disk > keep_bytes) {
    std::filesystem::resize_file(path, keep_bytes);
  }
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("cannot open journal for append: " +
                             path.string());
  }
}

void JournalWriter::Close() {
  if (out_.is_open()) out_.close();
}

void JournalWriter::Append(const WalRecord& record) {
  NU_EXPECTS(is_open());
  const std::string frame = EncodeWalFrame(record);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) throw std::runtime_error("journal append failed");
}

void JournalWriter::AppendTorn(const WalRecord& record) {
  NU_EXPECTS(is_open());
  const std::string frame = EncodeWalFrame(record);
  // Cut inside the payload: the header lands intact, the payload does not,
  // which is the hardest tear for the reader to classify.
  const std::size_t cut = kFrameHeaderBytes + (frame.size() - kFrameHeaderBytes) / 2;
  out_.write(frame.data(), static_cast<std::streamsize>(cut));
  out_.flush();
  if (!out_) throw std::runtime_error("journal torn-append failed");
}

}  // namespace nu::ckpt
