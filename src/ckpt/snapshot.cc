#include "ckpt/snapshot.h"

#include <fstream>

#include "common/binio.h"

namespace nu::ckpt {
namespace {

// "NUSNAP01" little-endian.
constexpr std::uint64_t kMagic = 0x313050414E53554EULL;

}  // namespace

std::uint64_t WriteSnapshotFile(const std::filesystem::path& path,
                                std::string_view payload) {
  BinWriter frame;
  frame.U64(kMagic);
  frame.U32(kSnapshotVersion);
  frame.U64(payload.size());
  frame.U32(Crc32(payload));
  frame.Bytes(payload.data(), payload.size());

  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open snapshot tmp file: " +
                               tmp.string());
    }
    out.write(frame.buffer().data(),
              static_cast<std::streamsize>(frame.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("snapshot write failed: " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path);
  return frame.size();
}

std::string ReadSnapshotFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open snapshot file: " + path.string());
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  try {
    BinReader reader(bytes);
    if (reader.U64() != kMagic) throw SnapshotCorruption("bad magic");
    const std::uint32_t version = reader.U32();
    if (version != kSnapshotVersion) {
      throw SnapshotCorruption("version mismatch: file has v" +
                               std::to_string(version) + ", reader expects v" +
                               std::to_string(kSnapshotVersion));
    }
    const std::uint64_t payload_size = reader.U64();
    const std::uint32_t crc = reader.U32();
    if (payload_size != reader.remaining()) {
      throw SnapshotCorruption("payload size mismatch");
    }
    std::string payload =
        bytes.substr(reader.position(), static_cast<std::size_t>(payload_size));
    if (Crc32(payload) != crc) throw SnapshotCorruption("checksum mismatch");
    return payload;
  } catch (const CorruptInput& e) {
    throw SnapshotCorruption(std::string("truncated frame (") + e.what() + ")");
  }
}

}  // namespace nu::ckpt
