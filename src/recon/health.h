// Per-switch health scoring for the reconciliation subsystem.
//
// Every reconcile pass scores every switch it has ever suspected: an
// incident (the pass found at least one divergent rule on the switch)
// pushes an EWMA toward 1, a clean observation decays it toward 0. The
// score drives an escalating response ladder (docs/model.md §16):
//
//   kHealthy     score <  suspect_threshold     normal operation
//   kSuspect     score >= suspect_threshold     reprobed every pass
//   kDegraded    score >= degrade_threshold     deprioritized in planning
//                                               (paths through it filtered
//                                               from candidate selection)
//   kQuarantined score >= quarantine_threshold  drained like a switch-down
//                                               fault; LATCHED — lying
//                                               hardware does not earn its
//                                               way back by lying less
//
// This mirrors guard/'s poison-event quarantine one level down: guard
// quarantines an EVENT that keeps missing deadlines, the health tracker
// quarantines a SWITCH that keeps lying about installs.
//
// The tracker is deterministic plain data (std::map, no draws); `epoch()`
// bumps whenever any switch crosses the kDegraded boundary in either
// direction so path-provider caches keyed on it invalidate exactly when
// the usable-switch set changes.
#pragma once

#include <cstdint>
#include <map>

#include "common/binio.h"
#include "common/types.h"

namespace nu::recon {

enum class HealthLevel : std::uint8_t {
  kHealthy,
  kSuspect,
  kDegraded,
  kQuarantined,
};

[[nodiscard]] const char* ToString(HealthLevel level);

struct HealthConfig {
  /// EWMA smoothing: score = alpha * incident + (1 - alpha) * score.
  double ewma_alpha = 0.35;
  double suspect_threshold = 0.2;
  double degrade_threshold = 0.55;
  /// Set above 1.0 to disable quarantine entirely (the score can never
  /// reach it); the auditor's drift bound then catches perma-liars.
  double quarantine_threshold = 0.85;
};

class SwitchHealthTracker {
 public:
  SwitchHealthTracker() = default;
  explicit SwitchHealthTracker(HealthConfig config) : config_(config) {}

  /// Folds one reconcile observation for `node` into its score and
  /// returns the resulting level. Quarantine latches: once reached, the
  /// level never drops regardless of later observations.
  HealthLevel Observe(NodeId node, bool incident);

  /// kHealthy for switches never observed.
  [[nodiscard]] HealthLevel LevelOf(NodeId node) const;
  [[nodiscard]] double ScoreOf(NodeId node) const;

  /// True when paths through `node` may be used for planning (level below
  /// kDegraded). Hosts are never tracked, so they are always usable.
  [[nodiscard]] bool IsUsable(NodeId node) const {
    return LevelOf(node) < HealthLevel::kDegraded;
  }

  /// Bumps whenever any switch crosses the usable/unusable boundary.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] std::size_t degraded_count() const { return degraded_; }
  [[nodiscard]] std::size_t quarantined_count() const { return quarantined_; }
  /// Switches that ever reached kDegraded (monotonic; reported).
  [[nodiscard]] std::size_t ever_degraded() const { return ever_degraded_; }
  [[nodiscard]] bool any_unusable() const { return degraded_ + quarantined_ > 0; }

  /// Visits tracked switches in ascending id order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [node, state] : states_) {
      fn(NodeId{node}, state.score, state.level);
    }
  }

  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

  friend bool operator==(const SwitchHealthTracker& a,
                         const SwitchHealthTracker& b);

 private:
  struct State {
    double score = 0.0;
    HealthLevel level = HealthLevel::kHealthy;
  };

  [[nodiscard]] HealthLevel LevelFor(double score) const;

  HealthConfig config_;
  std::map<NodeId::rep_type, State> states_;
  std::uint64_t epoch_ = 0;
  std::size_t degraded_ = 0;
  std::size_t quarantined_ = 0;
  std::size_t ever_degraded_ = 0;
};

}  // namespace nu::recon
