#include "recon/reconciler.h"

#include <algorithm>

#include "common/check.h"
#include "topo/graph.h"

namespace nu::recon {

Reconciler::Reconciler(ReconcilerConfig config)
    : config_(config), health_(config.health) {}

std::vector<DriftObservation> Reconciler::CollectDrift(
    const net::DataplaneState& dp) {
  std::vector<DriftObservation> out;
  for (const NodeId node : dp.DriftingNodes()) {
    out.push_back(CollectNodeDrift(dp, node));
  }
  return out;
}

DriftObservation Reconciler::CollectNodeDrift(const net::DataplaneState& dp,
                                              NodeId node) {
  return DriftObservation{node, dp.DivergentFlowsOn(node)};
}

void Reconciler::Prune(const net::NetworkView& network,
                       net::DataplaneState& dp) {
  // Collect stale entries first: mutating while iterating the divergence
  // maps would invalidate the walk.
  std::vector<std::pair<NodeId, FlowId>> stale;
  dp.ForEach([&](NodeId node, FlowId flow, const net::DivergentRule&) {
    if (!network.HasFlow(flow)) {
      stale.emplace_back(node, flow);
      return;
    }
    if (!network.NodeUp(node)) {
      // The switch is down (visible fault): its flows were already
      // removed or rerouted, and a down switch holds no rules to drift.
      stale.emplace_back(node, flow);
      return;
    }
    const topo::Path& path = network.PathOf(flow);
    if (std::find(path.nodes.begin(), path.nodes.end(), node) ==
        path.nodes.end()) {
      stale.emplace_back(node, flow);  // rerouted off this switch
    }
  });
  for (const auto& [node, flow] : stale) dp.Resolve(node, flow);
}

PassResult Reconciler::Pass(const std::vector<DriftObservation>& drift,
                            net::DataplaneState& dp,
                            const fault::GreyFailureModel& grey, Seconds now,
                            Rng& rng) {
  PassResult result;
  ++stats_.passes;

  // Repair sweep, ascending switch order. Each switch's repairs happen
  // under its own backoff budget; draws are in (switch, flow) order.
  for (const DriftObservation& obs : drift) {
    const NodeId node = obs.node;
    if (obs.flows.empty()) continue;
    ++result.drifting_switches;
    RepairState& repair = repair_[node.value()];
    const bool backoff_active = now < repair.next_attempt;
    bool any_failure = false;
    for (const FlowId flow : obs.flows) {
      const net::DivergentRule* entry = dp.Find(node, flow);
      if (entry == nullptr) continue;
      if (!entry->detected) {
        dp.MarkDetected(node, flow);
        ++stats_.drift_detected;
      }
      if (entry->abandoned || entry->pending_apply) continue;
      if (backoff_active) continue;
      // Re-issue the rule through the same unreliable pipeline.
      const std::uint32_t attempts = dp.RecordRepairAttempt(node, flow);
      ++stats_.repair_attempts;
      const fault::GreyOutcome out = fault::SampleGrey(grey, node, now, rng);
      switch (out.kind) {
        case fault::GreyOutcome::Kind::kApplied:
          ++stats_.repairs_succeeded;
          ++stats_.rules_verified;
          stats_.repair_latency.Add(now - entry->since);
          dp.Resolve(node, flow);
          break;
        case fault::GreyOutcome::Kind::kAckLie:
          ++stats_.repair_failures;
          any_failure = true;
          if (attempts >= config_.retry.max_attempts) {
            dp.MarkAbandoned(node, flow);
            ++stats_.rules_abandoned;
          }
          break;
        case fault::GreyOutcome::Kind::kStraggler:
          // In flight: the apply lands later; do not re-issue meanwhile.
          dp.SetPendingApply(node, flow, true);
          result.deferred.push_back(DeferredGrey{
              DeferredGrey::Kind::kApply, node, flow, now + out.delay});
          break;
        case fault::GreyOutcome::Kind::kRuleLoss:
          // Applied now (repair succeeded) but evicted again later.
          ++stats_.repairs_succeeded;
          ++stats_.rules_verified;
          stats_.repair_latency.Add(now - entry->since);
          dp.Resolve(node, flow);
          result.deferred.push_back(DeferredGrey{DeferredGrey::Kind::kLoss,
                                                 node, flow, now + out.delay});
          break;
      }
    }
    if (any_failure) {
      ++repair.consecutive_failures;
      repair.next_attempt =
          now + config_.retry.BackoffDelay(repair.consecutive_failures, rng);
    } else if (!backoff_active) {
      repair.consecutive_failures = 0;
      repair.next_attempt = 0.0;
    }
  }

  // Health scoring over the union of switches seen drifting this pass and
  // switches already tracked — clean observations decay old suspicion.
  // Iterate a merged ascending id list so the order (and therefore level
  // transitions and the epoch counter) is canonical.
  std::vector<NodeId::rep_type> drifting;
  drifting.reserve(drift.size());
  for (const DriftObservation& obs : drift) {
    if (!obs.flows.empty()) drifting.push_back(obs.node.value());
  }
  std::vector<NodeId::rep_type> scored = drifting;
  health_.ForEach([&](NodeId node, double, HealthLevel) {
    scored.push_back(node.value());
  });
  std::sort(scored.begin(), scored.end());
  scored.erase(std::unique(scored.begin(), scored.end()), scored.end());
  for (const NodeId::rep_type rep : scored) {
    const NodeId node{rep};
    const bool incident =
        std::binary_search(drifting.begin(), drifting.end(), rep);
    const HealthLevel before = health_.LevelOf(node);
    const HealthLevel after = health_.Observe(node, incident);
    if (after == HealthLevel::kQuarantined &&
        before != HealthLevel::kQuarantined) {
      result.quarantine.push_back(node);
      ++stats_.switches_quarantined;
    }
    // Drift streaks for the auditor: consecutive passes at drift.
    if (incident && after != HealthLevel::kQuarantined) {
      ++streaks_[rep];
    } else {
      streaks_.erase(rep);
    }
  }
  stats_.switches_degraded = health_.ever_degraded();
  return result;
}

std::vector<DriftStreak> Reconciler::DriftStreaks() const {
  std::vector<DriftStreak> out;
  out.reserve(streaks_.size());
  for (const auto& [node, passes] : streaks_) {
    out.push_back(DriftStreak{NodeId{node}, passes});
  }
  return out;
}

namespace {

void SaveSamples(BinWriter& w, const Samples& samples) {
  w.Size(samples.count());
  for (const double v : samples.values()) w.F64(v);
}

Samples LoadSamples(BinReader& r) {
  const std::size_t count = r.Size();
  std::vector<double> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) values.push_back(r.F64());
  return Samples(std::move(values));
}

}  // namespace

void Reconciler::SaveState(BinWriter& w) const {
  health_.SaveState(w);
  w.Size(repair_.size());
  for (const auto& [node, state] : repair_) {
    w.U32(node);
    w.U64(state.consecutive_failures);
    w.F64(state.next_attempt);
  }
  w.Size(streaks_.size());
  for (const auto& [node, passes] : streaks_) {
    w.U32(node);
    w.U64(passes);
  }
  w.U64(stats_.passes);
  w.U64(stats_.rules_issued);
  w.U64(stats_.rules_verified);
  w.U64(stats_.ack_lies);
  w.U64(stats_.stragglers);
  w.U64(stats_.rules_lost);
  w.U64(stats_.drift_detected);
  w.U64(stats_.repair_attempts);
  w.U64(stats_.repairs_succeeded);
  w.U64(stats_.repair_failures);
  w.U64(stats_.rules_abandoned);
  w.U64(stats_.switches_degraded);
  w.U64(stats_.switches_quarantined);
  SaveSamples(w, stats_.repair_latency);
}

void Reconciler::LoadState(BinReader& r) {
  health_.LoadState(r);
  repair_.clear();
  const std::size_t repairs = r.Size();
  for (std::size_t i = 0; i < repairs; ++i) {
    const NodeId::rep_type node = r.U32();
    RepairState state;
    state.consecutive_failures = static_cast<std::size_t>(r.U64());
    state.next_attempt = r.F64();
    if (!repair_.try_emplace(node, state).second) {
      throw CorruptInput("duplicate repair entry");
    }
  }
  streaks_.clear();
  const std::size_t streaks = r.Size();
  for (std::size_t i = 0; i < streaks; ++i) {
    const NodeId::rep_type node = r.U32();
    const std::size_t passes = static_cast<std::size_t>(r.U64());
    if (!streaks_.try_emplace(node, passes).second) {
      throw CorruptInput("duplicate streak entry");
    }
  }
  stats_ = ReconStats{};
  stats_.passes = r.U64();
  stats_.rules_issued = r.U64();
  stats_.rules_verified = r.U64();
  stats_.ack_lies = r.U64();
  stats_.stragglers = r.U64();
  stats_.rules_lost = r.U64();
  stats_.drift_detected = r.U64();
  stats_.repair_attempts = r.U64();
  stats_.repairs_succeeded = r.U64();
  stats_.repair_failures = r.U64();
  stats_.rules_abandoned = r.U64();
  stats_.switches_degraded = r.U64();
  stats_.switches_quarantined = r.U64();
  stats_.repair_latency = LoadSamples(r);
}

bool operator==(const Reconciler& a, const Reconciler& b) {
  auto repair_eq = [](const auto& x, const auto& y) {
    return x.first == y.first &&
           x.second.consecutive_failures == y.second.consecutive_failures &&
           x.second.next_attempt == y.second.next_attempt;
  };
  return a.health_ == b.health_ &&
         std::equal(a.repair_.begin(), a.repair_.end(), b.repair_.begin(),
                    b.repair_.end(), repair_eq) &&
         a.streaks_ == b.streaks_;
}

}  // namespace nu::recon
