// Anti-entropy reconciliation: the periodic read-back verifier that heals
// grey dataplane failures (docs/model.md §16).
//
// Every `period` seconds of virtual time the simulator runs one reconcile
// PASS: prune stale divergence (flows that departed or rerouted away),
// read back each drifting switch's rules (the DriftObservation list —
// computed serially, or fanned out per shard through the deterministic
// mailbox in sharded runs), classify each divergent rule by cause, and
// repair it by RE-ISSUING the rule through the same grey install pipeline
// that broke it, under a per-switch retry/backoff budget
// (common/retry.h). A rule whose repair budget is exhausted is ABANDONED:
// it stays visible as residual drift but stops gating run completion —
// the auditor's drift invariant and the chaos drift-convergence oracle
// are what turn unexcused residual into a failure.
//
// Each pass also feeds the per-switch health EWMA (recon/health.h); a
// switch that keeps lying escalates Healthy -> Suspect -> Degraded
// (deprioritized in migration planning) -> Quarantined (drained like a
// switch-down fault, its residual drift excused).
//
// The reconciler is deterministic: observations arrive in canonical
// ascending-switch order, repairs draw from the dedicated grey RNG stream
// in that order, and the whole object (health, backoff, streaks, stats)
// serializes into the snapshot's v6 recon section so crash/resume replays
// reconciliation bit-identically.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/binio.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "net/dataplane.h"
#include "net/network_view.h"
#include "recon/health.h"

namespace nu::recon {

struct ReconcilerConfig {
  /// Master switch; grey failures without a reconciler drift forever (the
  /// residual shows up in the report, nothing repairs it).
  bool enabled = false;
  /// Virtual seconds between read-back passes.
  Seconds period = 0.25;
  /// Per-switch repair retry/backoff budget. max_attempts bounds how often
  /// one rule is re-issued before abandonment.
  RetryPolicy retry;
  HealthConfig health;
  /// Auditor drift bound: a switch continuously at drift for more than
  /// this many reconcile passes (and not quarantined) is an audit
  /// violation. 0 disables the invariant.
  std::size_t max_passes_at_drift = 16;
};

/// Counters for the report CSV; owned by the Reconciler but also fed by
/// the simulator's injection sites (issue/lie/straggle/loss happen at
/// install time, outside a pass).
struct ReconStats {
  std::uint64_t passes = 0;
  std::uint64_t rules_issued = 0;
  std::uint64_t rules_verified = 0;
  std::uint64_t ack_lies = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t rules_lost = 0;
  std::uint64_t drift_detected = 0;
  std::uint64_t repair_attempts = 0;
  std::uint64_t repairs_succeeded = 0;
  std::uint64_t repair_failures = 0;
  std::uint64_t rules_abandoned = 0;
  std::uint64_t switches_degraded = 0;
  std::uint64_t switches_quarantined = 0;
  std::uint64_t residual_divergence = 0;
  /// Detection-to-repair virtual seconds (entry.since to resolution).
  Samples repair_latency;
};

/// One switch's read-back result: its divergent flows in ascending order.
/// Pure data so shard workers can produce it and post it via the mailbox.
struct DriftObservation {
  NodeId node;
  std::vector<FlowId> flows;
};

/// A grey occurrence the pass scheduled: a straggler repair's late apply,
/// or a post-repair rule loss. The simulator turns these into timeline
/// occurrences.
struct DeferredGrey {
  enum class Kind : std::uint8_t { kApply, kLoss };
  Kind kind = Kind::kApply;
  NodeId node;
  FlowId flow;
  Seconds time = 0.0;
};

struct PassResult {
  std::vector<DeferredGrey> deferred;
  /// Switches newly quarantined by this pass, ascending; the simulator
  /// drains each like a switch-down fault.
  std::vector<NodeId> quarantine;
  std::size_t drifting_switches = 0;
};

/// A switch's consecutive-passes-at-drift streak, for the auditor.
struct DriftStreak {
  NodeId node;
  std::size_t passes = 0;
};

class Reconciler {
 public:
  explicit Reconciler(ReconcilerConfig config = {});

  [[nodiscard]] const ReconcilerConfig& config() const { return config_; }

  /// Serial read-back: every drifting switch's observation, ascending.
  [[nodiscard]] static std::vector<DriftObservation> CollectDrift(
      const net::DataplaneState& dp);
  /// One switch's read-back (the per-shard task body).
  [[nodiscard]] static DriftObservation CollectNodeDrift(
      const net::DataplaneState& dp, NodeId node);

  /// Drops divergence that no longer maps to intent: the flow departed,
  /// rerouted off the switch, or the switch went down. Run before
  /// collecting observations.
  static void Prune(const net::NetworkView& network, net::DataplaneState& dp);

  /// One reconcile pass over `drift` (must be ascending by switch id, as
  /// CollectDrift produces). Mutates the dataplane (detection, repair,
  /// abandonment), the health tracker, and the stats; draws from `rng` in
  /// canonical order.
  PassResult Pass(const std::vector<DriftObservation>& drift,
                  net::DataplaneState& dp, const fault::GreyFailureModel& grey,
                  Seconds now, Rng& rng);

  [[nodiscard]] const SwitchHealthTracker& health() const { return health_; }
  [[nodiscard]] ReconStats& stats() { return stats_; }
  [[nodiscard]] const ReconStats& stats() const { return stats_; }

  /// Current consecutive-drift streaks (ascending by switch id);
  /// quarantined switches are excluded (their drift is excused).
  [[nodiscard]] std::vector<DriftStreak> DriftStreaks() const;

  void SaveState(BinWriter& w) const;
  void LoadState(BinReader& r);

  friend bool operator==(const Reconciler& a, const Reconciler& b);

 private:
  struct RepairState {
    std::size_t consecutive_failures = 0;
    Seconds next_attempt = 0.0;
  };

  ReconcilerConfig config_;
  SwitchHealthTracker health_;
  ReconStats stats_;
  std::map<NodeId::rep_type, RepairState> repair_;
  std::map<NodeId::rep_type, std::size_t> streaks_;
};

}  // namespace nu::recon
