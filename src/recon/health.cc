#include "recon/health.h"

#include "common/check.h"

namespace nu::recon {

const char* ToString(HealthLevel level) {
  switch (level) {
    case HealthLevel::kHealthy:
      return "healthy";
    case HealthLevel::kSuspect:
      return "suspect";
    case HealthLevel::kDegraded:
      return "degraded";
    case HealthLevel::kQuarantined:
      return "quarantined";
  }
  return "?";
}

HealthLevel SwitchHealthTracker::LevelFor(double score) const {
  if (score >= config_.quarantine_threshold) return HealthLevel::kQuarantined;
  if (score >= config_.degrade_threshold) return HealthLevel::kDegraded;
  if (score >= config_.suspect_threshold) return HealthLevel::kSuspect;
  return HealthLevel::kHealthy;
}

HealthLevel SwitchHealthTracker::Observe(NodeId node, bool incident) {
  State& state = states_[node.value()];
  state.score = config_.ewma_alpha * (incident ? 1.0 : 0.0) +
                (1.0 - config_.ewma_alpha) * state.score;
  if (state.level == HealthLevel::kQuarantined) return state.level;  // latched
  const HealthLevel next = LevelFor(state.score);
  if (next == state.level) return state.level;
  const bool was_usable = state.level < HealthLevel::kDegraded;
  const bool now_usable = next < HealthLevel::kDegraded;
  if (state.level == HealthLevel::kDegraded) --degraded_;
  if (next == HealthLevel::kDegraded) {
    ++degraded_;
    ++ever_degraded_;
  }
  if (next == HealthLevel::kQuarantined) ++quarantined_;
  state.level = next;
  if (was_usable != now_usable) ++epoch_;
  return state.level;
}

HealthLevel SwitchHealthTracker::LevelOf(NodeId node) const {
  const auto it = states_.find(node.value());
  return it == states_.end() ? HealthLevel::kHealthy : it->second.level;
}

double SwitchHealthTracker::ScoreOf(NodeId node) const {
  const auto it = states_.find(node.value());
  return it == states_.end() ? 0.0 : it->second.score;
}

void SwitchHealthTracker::SaveState(BinWriter& w) const {
  w.Size(states_.size());
  for (const auto& [node, state] : states_) {
    w.U32(node);
    w.F64(state.score);
    w.U8(static_cast<std::uint8_t>(state.level));
  }
  w.U64(epoch_);
  // U64, not Size: these are counters, not length prefixes, and Size()
  // reads reject values larger than the remaining input.
  w.U64(degraded_);
  w.U64(quarantined_);
  w.U64(ever_degraded_);
}

void SwitchHealthTracker::LoadState(BinReader& r) {
  states_.clear();
  const std::size_t count = r.Size();
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId::rep_type node = r.U32();
    State state;
    state.score = r.F64();
    const std::uint8_t level = r.U8();
    if (level > static_cast<std::uint8_t>(HealthLevel::kQuarantined)) {
      throw CorruptInput("bad health level");
    }
    state.level = static_cast<HealthLevel>(level);
    const auto [it, inserted] = states_.try_emplace(node, state);
    if (!inserted) throw CorruptInput("duplicate health entry");
  }
  epoch_ = r.U64();
  degraded_ = static_cast<std::size_t>(r.U64());
  quarantined_ = static_cast<std::size_t>(r.U64());
  ever_degraded_ = static_cast<std::size_t>(r.U64());
}

bool operator==(const SwitchHealthTracker& a, const SwitchHealthTracker& b) {
  if (a.epoch_ != b.epoch_ || a.degraded_ != b.degraded_ ||
      a.quarantined_ != b.quarantined_ ||
      a.ever_degraded_ != b.ever_degraded_) {
    return false;
  }
  if (a.states_.size() != b.states_.size()) return false;
  auto ia = a.states_.begin();
  auto ib = b.states_.begin();
  for (; ia != a.states_.end(); ++ia, ++ib) {
    if (ia->first != ib->first || ia->second.score != ib->second.score ||
        ia->second.level != ib->second.level) {
      return false;
    }
  }
  return true;
}

}  // namespace nu::recon
